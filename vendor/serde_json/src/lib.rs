//! Offline vendored subset of `serde_json`, built on the sibling `serde`
//! shim's JSON-value data model.
//!
//! Provides the workspace's full call surface: `to_string`,
//! `to_string_pretty` (2-space indent, matching upstream), `to_vec`,
//! `from_str`, `from_slice`, `to_value`/`from_value`, the [`json!`]
//! macro (object/array/literal forms with `Serialize` expression values)
//! and the [`Value`] type with `get`/`as_*`/indexing.
//!
//! Floats print with Rust's shortest-round-trip `Display`, with `.0`
//! appended to integral values — the same text upstream's `ryu` produces
//! for every value that appears in this workspace's outputs.

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Error, Serialize};

/// Serialization result alias (matches `serde_json::Result`).
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a JSON-like literal. Values in object/array
/// position may be arbitrary `Serialize` expressions.
/// Values are arbitrary `Serialize` expressions; nested object literals
/// must themselves be wrapped in `json!({...})` (unlike upstream's full
/// tt-muncher, which this shim deliberately avoids).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_f64(out, *f)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Array(arr) => {
            if arr.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, elem) in arr.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(out, elem, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, f: f64) -> Result<()> {
    if !f.is_finite() {
        // Upstream refuses non-finite floats; Value::from maps them to
        // null. Take the error path so bugs surface.
        return Err(Error(format!("cannot serialize non-finite float {f}")));
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of JSON input".into())),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                let lo = self.hex4()?; // hex4 skips the 'u' itself
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid surrogate pair".into()));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error(format!("invalid escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (pos is on the `u`).
    fn hex4(&mut self) -> Result<u32> {
        self.pos += 1; // past 'u'
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated unicode escape".into()));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid unicode escape".into()))?;
        let cp =
            u32::from_str_radix(digits, 16).map_err(|_| Error("invalid unicode escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": null, "c": "x\ny", "d": true}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert!(v["b"].is_null());
        assert_eq!(v["c"].as_str(), Some("x\ny"));
        assert_eq!(v["d"].as_bool(), Some(true));
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":[1,-2,3.5],"b":null,"c":"x\ny","d":true}"#);
    }

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = json!({"k": [1, 2], "m": json!({"x": 1.0})});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1,\n    2\n  ],\n  \"m\": {\n    \"x\": 1.0\n  }\n}"
        );
    }

    #[test]
    fn floats_keep_point_zero() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&-0.0f64).unwrap(), "-0.0");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
