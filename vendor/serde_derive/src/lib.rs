//! Offline vendored `#[derive(Serialize, Deserialize)]` for the sibling
//! `serde` shim. Implemented directly on `proc_macro::TokenStream` (the
//! container has no network access, so `syn`/`quote` are unavailable).
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields → JSON objects in declaration order
//! * newtype structs → transparent (the inner value)
//! * tuple structs (≥ 2 fields) → JSON arrays
//! * unit structs → `null`
//! * enums → externally tagged (`"Variant"`, `{"Variant": payload}`)
//!
//! Generics and `#[serde(...)]` attributes are **not** supported; the one
//! attribute user in the tree (`Topology`) hand-writes its impls instead.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.serialize_impl()
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.deserialize_impl()
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline shim");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(body)),
            }
        }
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Advances past `#[...]` attributes, doc comments and a visibility
/// qualifier (`pub`, `pub(crate)`, …).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a token list on top-level commas, treating `<`/`>` as brackets
/// so `BTreeMap<K, V>` stays one chunk. Groups are atomic tokens already.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks never empty").push(tt);
    }
    if chunks.last().map(Vec::is_empty).unwrap_or(false) {
        chunks.pop(); // trailing comma
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                    "serde_derive: explicit discriminants are not supported (variant `{name}`)"
                ),
                other => panic!("serde_derive: unexpected token in variant `{name}`: {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

// --- codegen ---------------------------------------------------------------

impl Item {
    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
            Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Struct(Fields::Tuple(n)) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
            Shape::Struct(Fields::Named(fields)) => object_expr(fields.iter().map(|f| {
                (
                    f.clone(),
                    format!("::serde::Serialize::to_value(&self.{f})"),
                )
            })),
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            Fields::Unit => format!(
                                "{name}::{vname} => ::serde::Value::Str(\
                                 ::std::string::String::from(\"{vname}\")),"
                            ),
                            Fields::Tuple(1) => format!(
                                "{name}::{vname}(__f0) => {},",
                                variant_payload(vname, "::serde::Serialize::to_value(__f0)")
                            ),
                            Fields::Tuple(n) => {
                                let binders: Vec<String> =
                                    (0..*n).map(|i| format!("__f{i}")).collect();
                                let elems: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "{name}::{vname}({}) => {},",
                                    binders.join(", "),
                                    variant_payload(
                                        vname,
                                        &format!(
                                            "::serde::Value::Array(::std::vec![{}])",
                                            elems.join(", ")
                                        )
                                    )
                                )
                            }
                            Fields::Named(fields) => {
                                let payload = object_expr(fields.iter().map(|f| {
                                    (f.clone(), format!("::serde::Serialize::to_value({f})"))
                                }));
                                format!(
                                    "{name}::{vname} {{ {} }} => {},",
                                    fields.join(", "),
                                    variant_payload(vname, &payload)
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join("\n"))
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::Struct(Fields::Unit) => {
                format!("::std::result::Result::Ok({name})")
            }
            Shape::Struct(Fields::Tuple(1)) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Shape::Struct(Fields::Tuple(n)) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = ::serde::__private::expect_tuple(__v, \"{name}\", {n})?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Shape::Struct(Fields::Named(fields)) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__private::field(__entries, \"{f}\")?"))
                    .collect();
                format!(
                    "let __entries = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            Fields::Unit => format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                            ),
                            Fields::Tuple(1) => format!(
                                "\"{vname}\" => {{\n\
                                     let __p = {};\n\
                                     ::std::result::Result::Ok({name}::{vname}(\
                                         ::serde::Deserialize::from_value(__p)?))\n\
                                 }}",
                                payload_expr(name, vname)
                            ),
                            Fields::Tuple(n) => {
                                let elems: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__arr[{i}])?")
                                    })
                                    .collect();
                                format!(
                                    "\"{vname}\" => {{\n\
                                         let __p = {};\n\
                                         let __arr = ::serde::__private::expect_tuple(\
                                             __p, \"{name}::{vname}\", {n})?;\n\
                                         ::std::result::Result::Ok({name}::{vname}({}))\n\
                                     }}",
                                    payload_expr(name, vname),
                                    elems.join(", ")
                                )
                            }
                            Fields::Named(fields) => {
                                let inits: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "{f}: ::serde::__private::field(__entries, \"{f}\")?"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "\"{vname}\" => {{\n\
                                         let __p = {};\n\
                                         let __entries = ::serde::__private::expect_object(\
                                             __p, \"{name}::{vname}\")?;\n\
                                         ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                     }}",
                                    payload_expr(name, vname),
                                    inits.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!(
                    "let (__variant, __payload) = \
                         ::serde::__private::enum_variant(__v, \"{name}\")?;\n\
                     match __variant {{\n{}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                     }}",
                    arms.join("\n")
                )
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
             }}"
        )
    }
}

fn object_expr(entries: impl Iterator<Item = (String, String)>) -> String {
    let parts: Vec<String> = entries
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", parts.join(", "))
}

fn variant_payload(vname: &str, payload: &str) -> String {
    format!(
        "::serde::Value::Object(::std::vec![\
         (::std::string::String::from(\"{vname}\"), {payload})])"
    )
}

fn payload_expr(name: &str, vname: &str) -> String {
    format!(
        "__payload.ok_or_else(|| ::serde::Error(::std::format!(\
         \"variant `{name}::{vname}` expects a payload\")))?"
    )
}
