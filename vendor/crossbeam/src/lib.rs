//! Offline vendored subset of `crossbeam`: scoped threads implemented on
//! top of `std::thread::scope` (available since Rust 1.63).
//!
//! Only the `crossbeam::thread::scope` entry point this workspace uses is
//! provided. Semantics match crossbeam's: the closure gets a scope handle
//! whose `spawn` passes the scope again (so children can spawn siblings),
//! and the call returns `Err` with the panic payload if any thread
//! panicked instead of unwinding through the caller.
//!
//! The [`pool`] module adds a persistent parked worker pool with the same
//! borrow-the-stack scope semantics but without the per-scope thread
//! spawn/join cost — for callers that open thousands of tiny scopes.

pub mod pool;

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to the `scope` closure and to every spawned
    /// thread (crossbeam's `&Scope<'env>`).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        crate::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
