//! A persistent, parked worker pool with scoped jobs.
//!
//! `std::thread::scope` (and the [`thread`](crate::thread) shim over it)
//! spawns and joins OS threads on every call — microseconds per scope,
//! which dwarfs the work itself when the caller opens thousands of tiny
//! scopes (the sharded simulator's epochs are often a handful of events).
//! [`WorkerPool`] keeps a fixed set of threads parked on a condvar for the
//! life of the process; a [`scope`](WorkerPool::scope) submits closures
//! that may borrow the caller's stack, and waking a parked worker is all a
//! small scope costs.
//!
//! Safety follows the same argument as scoped threads: a job may borrow
//! the environment only because every exit from `scope` — normal return
//! or unwind — blocks until all jobs submitted in that scope finished.
//! The lifetime erasure that hands a borrowing closure to a long-lived
//! worker is the one `unsafe` in this workspace, and it is confined to
//! this module; the first-party crates all stay `forbid(unsafe_code)`.
//!
//! Waiting threads *help*: [`Scope::wait`] runs queued jobs on the calling
//! thread instead of parking while work is available, so on a single-core
//! host a pool-based fan-out degrades to almost-inline execution rather
//! than a context-switch ping-pong, and nested users (parallel trials
//! each opening their own scopes on one shared pool) cannot starve each
//! other — a waiting coordinator makes progress on whatever is queued.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A type-erased, lifetime-erased job. Only constructed inside
/// [`Scope::spawn`], which guarantees the closure outlives its borrows.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue every pool thread parks on.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

/// Completion accounting for one scope. Shared by the coordinator and the
/// wrappers around its jobs; multiple scopes coexist on one pool, each
/// with its own state.
#[derive(Default)]
struct ScopeState {
    counters: Mutex<Counters>,
    done: Condvar,
}

#[derive(Default)]
struct Counters {
    /// Jobs submitted in this scope and not yet finished.
    pending: usize,
    /// Whether any job in this scope panicked (re-raised at the barrier).
    panicked: bool,
}

/// A fixed set of parked threads executing scoped jobs.
///
/// Threads are detached and live until process exit; dropping the pool
/// leaks them parked (the intended use is one process-global pool).
pub struct WorkerPool {
    queue: Arc<Queue>,
    threads: usize,
}

impl WorkerPool {
    /// Spawns `threads` parked workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        for i in 0..threads {
            let q = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("pool-worker-{i}"))
                .spawn(move || worker_loop(&q))
                .expect("failed to spawn pool worker");
        }
        WorkerPool { queue, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Opens a scope whose jobs may borrow from the enclosing stack frame.
    ///
    /// All jobs spawned inside finish before this returns — including when
    /// `f` unwinds. A panic inside any job is re-raised on the calling
    /// thread (at the next [`Scope::wait`], or here at scope exit).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let scope = Scope {
            queue: Arc::clone(&self.queue),
            state: Arc::new(ScopeState::default()),
            _env: PhantomData,
        };
        // Block every exit path — return or unwind — until the scope's
        // jobs are done: they may borrow `f`'s environment. The guard's
        // drop must not panic (it can run during unwinding), so job
        // panics are re-raised separately below.
        struct WaitGuard<'a, 'env>(&'a Scope<'env>);
        impl Drop for WaitGuard<'_, '_> {
            fn drop(&mut self) {
                self.0.wait_quiet();
            }
        }
        let guard = WaitGuard(&scope);
        let result = f(&scope);
        drop(guard);
        scope.check_panic();
        result
    }
}

/// Handle for submitting jobs into a [`WorkerPool`] scope.
pub struct Scope<'env> {
    queue: Arc<Queue>,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like crossbeam's scope.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Submits a job; it runs on a pool worker (or on a thread blocked in
    /// [`wait`](Scope::wait), which helps) sometime before the scope ends.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        // Count before queueing so no wait can observe pending == 0 while
        // the job sits in the queue.
        self.state.counters.lock().unwrap().pending += 1;
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: every exit from `WorkerPool::scope` — normal return or
        // unwind — waits until this scope's `pending` count is zero (the
        // WaitGuard above), so the job cannot run, nor this box be
        // dropped, after the `'env` borrows it captures expire. The
        // transmute only erases that lifetime; layout is identical.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        let state = Arc::clone(&self.state);
        let wrapped: Job = Box::new(move || {
            let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
            let mut c = state.counters.lock().unwrap();
            c.pending -= 1;
            if panicked {
                c.panicked = true;
            }
            drop(c);
            state.done.notify_all();
        });
        self.queue.jobs.lock().unwrap().push_back(wrapped);
        self.queue.ready.notify_one();
    }

    /// Blocks until every job spawned so far in this scope has finished —
    /// a reusable barrier. Re-raises the first job panic observed.
    ///
    /// While jobs are queued (from *any* scope on the pool), the calling
    /// thread executes them instead of parking.
    pub fn wait(&self) {
        self.wait_quiet();
        self.check_panic();
    }

    fn wait_quiet(&self) {
        loop {
            // Help: run a queued job rather than sleeping.
            let job = self.queue.jobs.lock().unwrap().pop_front();
            if let Some(job) = job {
                job();
                continue;
            }
            let c = self.state.counters.lock().unwrap();
            if c.pending == 0 {
                return;
            }
            // Parked until some job of this scope completes; re-check the
            // queue afterwards in case new work arrived meanwhile.
            drop(self.state.done.wait(c).unwrap());
        }
    }

    fn check_panic(&self) {
        let mut c = self.state.counters.lock().unwrap();
        if c.panicked {
            c.panicked = false;
            drop(c);
            panic!("a worker-pool job panicked");
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = queue.ready.wait(jobs).unwrap();
            }
        };
        // The wrapper catches unwinds, so a panicking job cannot take the
        // worker down.
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_borrow_the_stack_and_all_finish() {
        let pool = WorkerPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(3) {
                s.spawn(|| {
                    total.fetch_add(chunk.iter().sum(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), 36);
    }

    #[test]
    fn wait_is_a_reusable_barrier_across_rounds() {
        // Borrowed state must be declared before the scope (as with scoped
        // threads); each round reuses it across a wait() barrier.
        let pool = WorkerPool::new(2);
        let rounds: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        pool.scope(|s| {
            for counter in &rounds {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
                s.wait();
                assert_eq!(counter.load(Ordering::Relaxed), 4);
            }
        });
        assert!(rounds.iter().all(|c| c.load(Ordering::Relaxed) == 4));
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let grand_total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let pool = Arc::clone(&pool);
                let grand_total = Arc::clone(&grand_total);
                std::thread::spawn(move || {
                    let local = AtomicU64::new(0);
                    pool.scope(|s| {
                        for _ in 0..16 {
                            s.spawn(|| {
                                local.fetch_add(k + 1, Ordering::Relaxed);
                            });
                        }
                    });
                    grand_total.fetch_add(local.into_inner(), Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(grand_total.load(Ordering::Relaxed), 16 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn single_thread_pool_makes_progress_via_helping() {
        // One worker, eight jobs, and a barrier per round: the waiting
        // coordinator must pick up queued jobs itself.
        let pool = WorkerPool::new(1);
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            s.wait();
            assert_eq!(hits.load(Ordering::Relaxed), 8);
        });
    }

    #[test]
    fn job_panic_is_reraised_at_the_barrier() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("job blew up"));
                s.wait();
            });
        }));
        assert!(r.is_err(), "the job panic must surface on the coordinator");
        // The pool survives and keeps executing later scopes.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.into_inner(), 1);
    }
}
