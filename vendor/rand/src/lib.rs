//! Offline vendored subset of the `rand` crate (API and bit-stream
//! compatible with rand 0.8.5 for the surface this workspace uses).
//!
//! The container this workspace builds in has no network access, so the
//! real crates.io `rand` cannot be fetched. Reproducibility of every
//! recorded experiment depends on the exact random streams, therefore this
//! shim reimplements the relevant algorithms *bit-for-bit*:
//!
//! * `SmallRng` is Xoshiro256PlusPlus (the 64-bit `rand 0.8` choice),
//!   including its SplitMix64-based `seed_from_u64` and the
//!   "upper 32 bits" `next_u32`.
//! * `Rng::gen` uses the `Standard` distribution rules (u32/u64 direct,
//!   f64 = 53 high bits × 2⁻⁵³, bool = top bit of `next_u32`).
//! * `Rng::gen_range` uses Lemire's widening-multiply rejection with the
//!   same zone computation, type widths and draw order as
//!   `rand::distributions::uniform` (ints), and the `[1, 2)`-mantissa
//!   trick for floats, including the inclusive-range `new_inclusive`
//!   scale derivation.
//!
//! The golden-run tests (`tests/golden.rs`) and the committed figure CSVs
//! pin the resulting streams, so any divergence from the upstream
//! implementation fails loudly.

// The negated float comparisons in `uniform` mirror upstream `rand`
// verbatim — the negation is load-bearing for NaN handling there.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod rngs;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed from a `u64`, by filling the seed with a PCG32 stream — the
    /// `rand_core 0.6` provided default, byte for byte.
    ///
    /// `Xoshiro256PlusPlus` overrides this with SplitMix64 (as upstream
    /// does), but `SmallRng`'s `SeedableRng` impl only forwards
    /// `from_seed`, so `SmallRng::seed_from_u64` — the seeding path this
    /// whole workspace uses — goes through THIS default, not SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        // PCG32 with rand_core's fixed increment.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the state first, in case the input has low Hamming
            // weight (same comment order as upstream).
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Sampling distribution (subset of `rand::distributions::Distribution`).
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The `Standard` distribution: the "natural" uniform sampling of a type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u8> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // 64-bit platforms only (matches rand's #[cfg(target_pointer_width = "64")]).
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8.5 compares the most significant bit of next_u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Multiply-based [0, 1): 53 high bits × 2⁻⁵³.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing RNG extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // rand 0.8.5 Bernoulli: compare 64-bit draw against p · 2⁶⁴.
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Distribution, Rng, RngCore, SeedableRng};
}
