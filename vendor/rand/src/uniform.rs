//! Uniform range sampling, bit-compatible with
//! `rand 0.8.5::distributions::uniform`.
//!
//! Integers use Lemire's widening-multiply rejection with the upstream
//! zone computation (modulus for ≤16-bit types, shifted-range mask
//! otherwise) and the upstream per-type draw widths (u32 draws for
//! ≤32-bit types, u64 for 64-bit/usize). Floats use the `[1, 2)`
//! mantissa-fill trick; half-open ranges sample on the fly, inclusive
//! ranges precompute the upstream `new_inclusive` scale.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Marker trait: types `gen_range` can sample.
pub trait SampleUniform: Sized {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
    #[inline]
    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_single_inclusive(low, high, rng)
    }
    #[inline]
    fn is_empty(&self) -> bool {
        !(self.start() <= self.end())
    }
}

/// Widening multiply returning (high, low) halves — `rand`'s `WideningMultiply`.
trait WideMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideMul for u32 {
    #[inline]
    fn wmul(self, other: u32) -> (u32, u32) {
        let wide = u64::from(self) * u64::from(other);
        ((wide >> 32) as u32, wide as u32)
    }
}

impl WideMul for u64 {
    #[inline]
    fn wmul(self, other: u64) -> (u64, u64) {
        let wide = u128::from(self) * u128::from(other);
        ((wide >> 64) as u64, wide as u64)
    }
}

impl WideMul for usize {
    #[inline]
    fn wmul(self, other: usize) -> (usize, usize) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $use_mod_zone:expr) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Range 0 means the whole type domain: no rejection needed.
                if range == 0 {
                    return crate::Standard.sample(rng);
                }
                let zone = if $use_mod_zone {
                    // For ≤16-bit types upstream uses an exact modulus.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = crate::Standard.sample(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

use crate::Distribution;

uniform_int_impl!(u8, u8, u32, true);
uniform_int_impl!(u16, u16, u32, true);
uniform_int_impl!(u32, u32, u32, false);
uniform_int_impl!(u64, u64, u64, false);
uniform_int_impl!(usize, usize, usize, false);

macro_rules! uniform_int_impl_signed {
    ($ty:ty, $unsigned:ty) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }
            #[inline]
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                // Same algorithm on the unsigned bit patterns (two's
                // complement makes wrapping_sub produce the right range).
                let ulow = low as $unsigned;
                let range = (high as $unsigned).wrapping_sub(ulow).wrapping_add(1);
                if range == 0 {
                    let v: $unsigned = <$unsigned as SampleUniform>::sample_single_inclusive(
                        0,
                        <$unsigned>::MAX,
                        rng,
                    );
                    return v as $ty;
                }
                let v = <$unsigned as SampleUniform>::sample_single_inclusive(0, range - 1, rng);
                ulow.wrapping_add(v) as $ty
            }
        }
    };
}

uniform_int_impl_signed!(i32, u32);
uniform_int_impl_signed!(i64, u64);

const F64_BITS_TO_DISCARD: u32 = 12;

#[inline]
fn f64_from_mantissa(bits: u64) -> f64 {
    // Value in [1, 2): exponent 0 (biased 1023) with `bits` as mantissa.
    f64::from_bits(bits | 0x3FF0_0000_0000_0000)
}

#[inline]
fn decrease_masked(x: f64) -> f64 {
    // One-ulp decrement of a positive finite float (upstream's
    // `decrease_masked` for the scalar case).
    f64::from_bits(x.to_bits() - 1)
}

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        debug_assert!(
            low.is_finite() && high.is_finite() && low < high,
            "Uniform::sample_single: invalid range [{low}, {high})"
        );
        let mut scale = high - low;
        assert!(scale.is_finite(), "Uniform range overflow: {low}..{high}");
        loop {
            let value1_2 = f64_from_mantissa(rng.next_u64() >> F64_BITS_TO_DISCARD);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            // Rounding made res == high (half-open bound): shrink the
            // scale by one ulp and retry, exactly as upstream.
            scale = decrease_masked(scale);
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        // Upstream routes inclusive float ranges through
        // `UniformFloat::new_inclusive` + `sample`.
        assert!(
            low <= high,
            "Uniform::new_inclusive called with `low > high`"
        );
        let max_rand = f64_from_mantissa(u64::MAX >> F64_BITS_TO_DISCARD) - 1.0;
        let mut scale = (high - low) / max_rand;
        assert!(scale.is_finite(), "Uniform range overflow: {low}..={high}");
        while !(scale * max_rand + low <= high) {
            scale = decrease_masked(scale);
        }
        let value1_2 = f64_from_mantissa(rng.next_u64() >> F64_BITS_TO_DISCARD);
        let value0_1 = value1_2 - 1.0;
        value0_1 * scale + low
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = rng.gen_range(0u32..17);
            assert!(a < 17);
            let b = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&b));
            let c = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&c));
            let d = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&d));
            let e = rng.gen_range(5u64..=5);
            assert_eq!(e, 5);
        }
    }

    #[test]
    fn full_u64_range_uses_plain_draw() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
