//! RNG implementations: `SmallRng` = Xoshiro256PlusPlus, exactly as
//! vendored inside rand 0.8.5 for 64-bit targets.

use crate::{RngCore, SeedableRng};

/// Xoshiro256++ by Blackman & Vigna — rand 0.8.5's 64-bit `SmallRng`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    /// Create from a 32-byte seed (little-endian state words). An
    /// all-zero seed is remapped through `seed_from_u64(0)`, as upstream
    /// does, because the all-zero state is a fixed point.
    fn from_seed(seed: [u8; 32]) -> Self {
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        Xoshiro256PlusPlus { s }
    }

    /// SplitMix64 expansion of a `u64` seed into the four state words
    /// (rand 0.8.5 overrides the `rand_core` default for this generator).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for word in s.iter_mut() {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // The lowest bits of xoshiro256++ have linear dependencies, so the
        // upper half of next_u64 is used (matches upstream).
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A small-state, fast, non-cryptographic RNG (rand 0.8.5 API).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    // Deliberately NO `seed_from_u64` override: rand 0.8.5's `SmallRng`
    // only forwards `from_seed`, so `SmallRng::seed_from_u64` uses the
    // rand_core PCG32 default — not Xoshiro's SplitMix64. Reproducing
    // that quirk is required for the recorded golden runs.
    #[inline]
    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ reference implementation
    /// seeded with s = [1, 2, 3, 4].
    #[test]
    fn xoshiro_reference_stream() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        // First outputs of xoshiro256++ with state {1,2,3,4}:
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let a = Xoshiro256PlusPlus::from_seed([0u8; 32]);
        let b = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(a, b);
        assert_ne!(a.clone().next_u64(), 0);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
