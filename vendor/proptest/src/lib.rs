//! Offline vendored subset of `proptest`.
//!
//! Supports the surface this workspace's tests use: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), range strategies over
//! integers and floats, `any::<bool>()`, `prop::collection::vec`, tuple
//! strategies, `Just`, `Strategy::prop_map`, the (optionally weighted)
//! `prop_oneof!` union, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream: generation is fully deterministic (seeded
//! per test), there is no shrinking (the failing inputs are printed
//! as generated), and `.proptest-regressions` files are ignored.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — generate a replacement input.
    Reject(String),
    /// An assertion failed — the property is false.
    Fail(String),
}

impl TestCaseError {
    pub fn reject<S: Into<String>>(reason: S) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
    pub fn fail<S: Into<String>>(reason: S) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
}

/// Runner configuration (subset of upstream's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value: Debug;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Always yields a clone of the given value (upstream's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (**self).generate(rng)
    }
}

/// Weighted union of same-valued strategies — built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V: Debug> OneOf<V> {
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> OneOf<V> {
        let total: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let total: u64 = self.arms.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the weight total");
    }
}

/// Chooses among strategies, optionally weighted (`weight => strategy`).
/// All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$(
            (
                $weight as u32,
                ::std::boxed::Box::new($strat)
                    as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
            )
        ),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy + Debug,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy + Debug,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy;
    fn arbitrary() -> Self::Strategy;
}

#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = Range<$ty>;
            fn arbitrary() -> Range<$ty> {
                <$ty>::MIN..<$ty>::MAX
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Vec strategy: length drawn from `len`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror: `prop::collection::vec`, `prop::num`, …
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub use rand::{Rng, SeedableRng};
}

/// Derives the deterministic per-test RNG seed. Exposed for the macro.
#[doc(hidden)]
pub fn __test_seed(test_name: &str) -> u64 {
    // FNV-1a over the test name, so each test gets its own stream and
    // adding a test never perturbs the others.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn __new_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// The heart of the shim: generate inputs, run the body, panic with the
/// inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__new_rng($crate::__test_seed(stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {passed} passing case(s): {msg}\n  inputs: {inputs}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vecs_respect_length(v in prop::collection::vec(0u8..4, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..10, 0u32..10), flip in any::<bool>()) {
            let (a, b) = pair;
            prop_assume!(a != b || flip);
            prop_assert_ne!((a, b, flip), (b.wrapping_add(1), a, flip), "never equal");
        }

        #[test]
        fn oneof_respects_arms_and_maps(
            v in prop::collection::vec(
                prop_oneof![
                    3 => (0u32..5).prop_map(|x| x * 2),
                    1 => Just(99u32),
                ],
                1..50,
            )
        ) {
            prop_assert!(v.iter().all(|&x| x == 99u32 || (x % 2u32 == 0u32 && x < 10u32)));
        }
    }
}
