//! Offline vendored subset of `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`, `BatchSize`) with a simple
//! but honest measurement loop: calibrate the per-iteration cost, run
//! enough iterations per sample to fill a time slice, report the median
//! sample. No HTML reports, no statistics beyond median/min/max.
//!
//! Filters passed as CLI args (`cargo bench -- <substr>`) are honoured;
//! `--quick`/`CRITERION_FAST=1` shrinks the measurement for smoke runs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost — accepted and ignored
/// (each batch runs its setup outside the timed section regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    filters: Vec<String>,
    sample_size: usize,
    /// Target wall-clock per sample.
    slice: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("CRITERION_FAST")
            .map(|v| v == "1")
            .unwrap_or(false)
            || std::env::args().any(|a| a == "--quick");
        Criterion {
            filters: Vec::new(),
            sample_size: if fast { 3 } else { 10 },
            slice: if fast {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(50)
            },
        }
    }
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with("--") && !a.is_empty())
            .collect();
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            let mut b = Bencher {
                samples: Vec::new(),
                sample_size: self.sample_size,
                slice: self.slice,
            };
            f(&mut b);
            b.report(name);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(&full, f);
        self.criterion.sample_size = saved;
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark measurement state.
pub struct Bencher {
    /// Nanoseconds per iteration for each sample.
    samples: Vec<f64>,
    sample_size: usize,
    slice: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fill one slice?
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.slice.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std_black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.slice.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_size {
            // Setup runs outside the timed region.
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{name:<50} median {:>12} [min {}, max {}]",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched_iters_work() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
