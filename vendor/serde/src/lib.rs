//! Offline vendored subset of `serde`.
//!
//! The container this workspace builds in has no network access, so the
//! real serde cannot be fetched. This repo only ever serializes to and
//! from JSON (via the sibling `serde_json` shim), so instead of serde's
//! visitor architecture the data model *is* a JSON value tree:
//!
//! * [`Serialize`] converts a value into a [`Value`].
//! * [`Deserialize`] reconstructs a value from a [`Value`].
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   proc-macro) emits those impls with the same JSON *shape* real serde
//!   would produce: structs as objects, newtype structs transparently,
//!   enums externally tagged, `Option` as null/value.
//!
//! The subset is exactly what the workspace uses; anything else fails to
//! compile loudly rather than silently misbehaving.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// Re-export module mirroring `serde::de` for error construction.
pub mod de {
    pub use crate::Error;
}

/// A JSON value: the universal data model of this serde subset.
///
/// Objects preserve insertion order (like real `serde_json` streaming
/// struct fields in declaration order) so output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::Int(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts `self` into the JSON data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the JSON data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent from the
    /// object. Only `Option` (and types that opt in) tolerate absence.
    fn from_missing_field(field: &'static str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{field}`")))
    }
}

// --- primitive impls -------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error(format!("expected unsigned integer, found {}", v.kind()))
                })?;
                <$ty>::try_from(n)
                    .map_err(|_| Error(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error(format!("expected integer, found {}", v.kind()))
                })?;
                <$ty>::try_from(n)
                    .map_err(|_| Error(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error(format!("expected string, found {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error("expected single-character string".into())),
        }
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error(format!("expected array, found {}", v.kind())))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &'static str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| {
                    Error(format!("expected tuple array, found {}", v.kind()))
                })?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error(format!(
                        "expected array of length {expected}, found {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Map keys must render as JSON strings; this mirrors `serde_json`'s
/// behaviour of stringifying integer keys.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        _ => Err(Error(format!(
            "map key must be a string or integer, found {}",
            key.kind()
        ))),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Try as a string key first, then as an integer key (serde_json
    // round-trips integer map keys through strings).
    let as_str = Value::Str(key.to_owned());
    if let Ok(k) = K::from_value(&as_str) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    Err(Error(format!("cannot deserialize map key from `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("BTreeMap key must serialize to a string or integer");
                (key, v.to_value())
            })
            .collect();
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error(format!("expected object, found {}", v.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (serde_json with a HashMap is
        // nondeterministic; determinism is strictly better here).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("HashMap key must serialize to a string or integer");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// --- derive support --------------------------------------------------------

/// Support plumbing for `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetches and deserializes a struct field from an object.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &'static str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("field `{name}`: {}", e.0))),
            None => T::from_missing_field(name),
        }
    }

    /// Unwraps an object, naming the type in the error.
    pub fn expect_object<'v>(
        v: &'v Value,
        ty: &'static str,
    ) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Object(entries) => Ok(entries),
            _ => Err(Error(format!("expected {ty} object, found {}", v.kind()))),
        }
    }

    /// Unwraps an array of exactly `n` elements (tuple structs/variants).
    pub fn expect_tuple<'v>(
        v: &'v Value,
        ty: &'static str,
        n: usize,
    ) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(arr) if arr.len() == n => Ok(arr),
            Value::Array(arr) => Err(Error(format!(
                "expected {ty} array of length {n}, found {}",
                arr.len()
            ))),
            _ => Err(Error(format!("expected {ty} array, found {}", v.kind()))),
        }
    }

    /// Splits an externally tagged enum value into (variant, payload).
    /// Unit variants arrive as strings with no payload.
    pub fn enum_variant<'v>(
        v: &'v Value,
        ty: &'static str,
    ) -> Result<(&'v str, Option<&'v Value>), Error> {
        match v {
            Value::Str(name) => Ok((name, None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            _ => Err(Error(format!(
                "expected {ty} variant (string or single-key object), found {}",
                v.kind()
            ))),
        }
    }

    pub fn unknown_variant(ty: &'static str, variant: &str) -> Error {
        Error(format!("unknown {ty} variant `{variant}`"))
    }
}
