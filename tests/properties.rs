//! Property-based tests (proptest) over the core data structures and the
//! end-to-end simulation invariants.

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_bgp::decision::select_best;
use bgpsim_bgp::queue::{InputQueue, QueueDiscipline, WorkItem};
use bgpsim_bgp::rib::{EngineRibIn, NextHop, RouteEntry};
use bgpsim_bgp::{AsPath, Prefix, UpdateMsg};
use bgpsim_des::{Scheduler, SimTime};
use bgpsim_topology::degree::{is_graphical, DegreeSpec, SkewedSpec};
use bgpsim_topology::generators::from_degree_sequence;
use bgpsim_topology::placement::{place, DensityModel};
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::{AsId, RouterId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

proptest! {
    /// Events always come out in time order, FIFO within a timestamp.
    #[test]
    fn scheduler_orders_any_schedule(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, idx)) = s.next() {
            let t = t.as_nanos();
            prop_assert_eq!(t, times[idx], "event delivered at its scheduled time");
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO within a timestamp violated");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Cancelled events never fire; everything else does, exactly once.
    #[test]
    fn scheduler_cancellation(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| s.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut cancelled = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                s.cancel(*id);
                cancelled.push(i);
            }
        }
        let mut fired = Vec::new();
        while let Some((_, idx)) = s.next() {
            fired.push(idx);
        }
        for idx in &cancelled {
            prop_assert!(!fired.contains(idx), "cancelled event {idx} fired");
        }
        prop_assert_eq!(fired.len() + cancelled.len(), times.len());
    }
}

// ---------------------------------------------------------------------
// Scheduler ↔ calendar-queue equivalence
// ---------------------------------------------------------------------

proptest! {
    /// Driving the heap scheduler and the calendar queue with identical
    /// schedules and cancellations yields identical delivery sequences.
    #[test]
    fn calendar_queue_matches_heap_scheduler(
        times in prop::collection::vec(0u64..500_000_000, 1..150),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..150),
    ) {
        use bgpsim_des::CalendarQueue;
        let mut heap: Scheduler<usize> = Scheduler::new();
        let mut cal: CalendarQueue<usize> = CalendarQueue::new();
        let mut heap_ids = Vec::new();
        let mut cal_ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            heap_ids.push(heap.schedule(SimTime::from_nanos(t), i));
            cal_ids.push(cal.schedule(SimTime::from_nanos(t), i));
        }
        for (i, (&h, &c)) in heap_ids.iter().zip(&cal_ids).enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert_eq!(heap.cancel(h), cal.cancel(c));
            }
        }
        prop_assert_eq!(heap.len(), cal.len());
        loop {
            let a = heap.next();
            let b = cal.next();
            prop_assert_eq!(a, b, "delivery sequences diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// AS paths and the decision process
// ---------------------------------------------------------------------

proptest! {
    /// Prepending grows the path by one and puts the AS in front.
    #[test]
    fn as_path_prepend_laws(hops in prop::collection::vec(0u32..500, 0..12), head in 0u32..500) {
        let path = AsPath::from_hops(hops.iter().map(|&h| AsId::new(h)));
        let grown = path.prepend(AsId::new(head));
        prop_assert_eq!(grown.len(), path.len() + 1);
        prop_assert_eq!(grown.hops()[0], AsId::new(head));
        prop_assert!(grown.contains(AsId::new(head)));
        prop_assert_eq!(&grown.hops()[1..], path.hops());
    }

    /// The selected route has the minimum path length among candidates,
    /// and ties break towards the smallest peer id.
    #[test]
    fn decision_picks_minimum(candidates in prop::collection::vec((0u32..64, 1usize..6), 1..10)) {
        let mut rib = EngineRibIn::new();
        let p = Prefix::new(0);
        let mut seen: Vec<(u32, usize)> = Vec::new();
        for &(peer, len) in &candidates {
            if seen.iter().any(|&(q, _)| q == peer) {
                continue; // one route per peer
            }
            seen.push((peer, len));
            let hops: Vec<AsId> = (0..len as u32).map(|h| AsId::new(1000 + h)).collect();
            rib.insert(p, RouterId::new(peer), RouteEntry { path: AsPath::from_hops(hops), ibgp: false, rank: 0 });
        }
        let best = select_best(p, &rib).expect("candidates exist");
        let min_len = seen.iter().map(|&(_, l)| l).min().unwrap();
        prop_assert_eq!(best.path.len(), min_len);
        let min_peer = seen.iter().filter(|&&(_, l)| l == min_len).map(|&(q, _)| q).min().unwrap();
        prop_assert_eq!(best.next_hop, NextHop::Peer(RouterId::new(min_peer)));
    }
}

// ---------------------------------------------------------------------
// Input-queue disciplines
// ---------------------------------------------------------------------

fn arb_item(peer: u32, prefix: u32, tag: u32) -> WorkItem {
    WorkItem::Update {
        from: RouterId::new(peer),
        msg: UpdateMsg::advertise(Prefix::new(prefix), AsPath::from_hops([AsId::new(tag)])),
    }
}

proptest! {
    /// Conservation: every pushed item is either returned in a batch or
    /// counted as deleted stale — for every discipline.
    #[test]
    fn queue_conserves_items(
        items in prop::collection::vec((0u32..6, 0u32..8, 0u32..100), 0..200),
        which in 0usize..3,
    ) {
        let discipline = match which {
            0 => QueueDiscipline::Fifo,
            1 => QueueDiscipline::Batched,
            _ => QueueDiscipline::TcpBatch { buffer: 7 },
        };
        let mut q = InputQueue::new(discipline);
        for &(peer, prefix, tag) in &items {
            q.push(arb_item(peer, prefix, tag));
        }
        let mut processed = 0usize;
        loop {
            let batch = q.pop_batch();
            if batch.is_empty() {
                break;
            }
            processed += batch.len();
        }
        prop_assert_eq!(processed as u64 + q.deleted_stale(), items.len() as u64);
        prop_assert!(q.is_empty());
    }

    /// Batched batches are single-destination and keep at most one item
    /// per source peer (the newest).
    #[test]
    fn batched_batches_are_per_destination_and_deduped(
        items in prop::collection::vec((0u32..6, 0u32..8, 0u32..100), 1..200),
    ) {
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        for &(peer, prefix, tag) in &items {
            q.push(arb_item(peer, prefix, tag));
        }
        loop {
            let batch = q.pop_batch();
            if batch.is_empty() {
                break;
            }
            let prefix = batch[0].prefix();
            prop_assert!(batch.iter().all(|i| i.prefix() == prefix));
            let mut peers: Vec<RouterId> = batch.iter().map(WorkItem::peer).collect();
            peers.sort();
            let before = peers.len();
            peers.dedup();
            prop_assert_eq!(before, peers.len(), "duplicate peer within a batch");
        }
    }
}

// ---------------------------------------------------------------------
// Topology generation
// ---------------------------------------------------------------------

proptest! {
    /// Erdős–Gallai agrees with an attempted construction: if the check
    /// passes, the configuration-model generator realizes the sequence
    /// exactly, simply and connectedly (possibly after internal retries).
    #[test]
    fn graphical_sequences_are_realized(
        degrees in prop::collection::vec(1u32..6, 4..40),
        seed in 0u64..1000,
    ) {
        let mut degrees = degrees;
        if degrees.iter().map(|&d| u64::from(d)).sum::<u64>() % 2 == 1 {
            degrees[0] += 1;
        }
        prop_assume!(is_graphical(&degrees));
        let positions = place(degrees.len(), DensityModel::Uniform,
                              &mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed);
        match from_degree_sequence(&degrees, &positions, &mut rng) {
            Ok(topo) => {
                prop_assert!(topo.is_connected());
                for (i, &d) in degrees.iter().enumerate() {
                    prop_assert_eq!(topo.degree(RouterId::new(i as u32)), d as usize);
                }
            }
            Err(e) => {
                // Low-degree sequences can be graphical but not
                // *connectably* graphical (e.g. all degree 1 forces a
                // perfect matching). Only accept failure in that regime.
                let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
                prop_assert!(
                    sum / 2 < degrees.len() as u64,
                    "generator failed a sequence with enough edges for a \
                     connected graph: {e}"
                );
            }
        }
    }

    /// Degree sampling respects class structure for any skewed preset.
    #[test]
    fn skewed_sampling_respects_classes(n in 10usize..200, seed in 0u64..1000, which in 0usize..4) {
        let spec = match which {
            0 => SkewedSpec::seventy_thirty(),
            1 => SkewedSpec::fifty_fifty(),
            2 => SkewedSpec::eighty_five_fifteen(),
            _ => SkewedSpec::fifty_fifty_dense(),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let degrees = DegreeSpec::Skewed(spec.clone()).sample(n, &mut rng);
        prop_assert_eq!(degrees.len(), n);
        let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(sum % 2, 0);
        let high_min = spec.min_high_degree();
        let high = degrees.iter().filter(|&&d| d >= high_min).count();
        let expected = (spec.high_fraction * n as f64).round() as usize;
        // The even-sum fix can promote at most one low node past the bound
        // only if low_max + 1 >= high_min; with these presets it cannot.
        prop_assert_eq!(high, expected);
    }

    /// Centre failures select exactly round(f·n) routers, deterministically.
    #[test]
    fn center_failures_are_exact_and_deterministic(
        // n ≥ 20: below that, two+ degree-8 hubs are rarely realizable
        // alongside a 70% degree-1..3 class (Erdős–Gallai fails).
        n in 20usize..80,
        frac in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = bgpsim_topology::generators::skewed_topology(
            n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
        let a = FailureSpec::CenterFraction(frac)
            .resolve(&topo, &mut SmallRng::seed_from_u64(1));
        let b = FailureSpec::CenterFraction(frac)
            .resolve(&topo, &mut SmallRng::seed_from_u64(2));
        prop_assert_eq!(&a, &b, "centre selection must ignore the RNG");
        prop_assert_eq!(a.len(), (frac * n as f64).round() as usize);
    }
}

// ---------------------------------------------------------------------
// Serialization round trips
// ---------------------------------------------------------------------

proptest! {
    /// Every scheme constructor serializes and deserializes losslessly
    /// (experiment definitions are persisted as JSON by the CLI).
    #[test]
    fn schemes_round_trip_through_json(which in 0usize..8, mrai in 0.1f64..5.0) {
        let scheme = match which {
            0 => Scheme::constant_mrai(mrai),
            1 => Scheme::degree_dependent(mrai, mrai * 2.0, 8),
            2 => Scheme::dynamic_default(),
            3 => Scheme::batching(mrai),
            4 => Scheme::batching_plus_dynamic(),
            5 => Scheme::tcp_batch(mrai, 16),
            6 => Scheme::oracle(&[(0.05, mrai), (1.0, mrai * 2.0)]),
            _ => Scheme::constant_mrai(mrai).with_policy().with_expedited_improvements(),
        };
        let json = serde_json::to_string(&scheme).expect("serializes");
        let back: Scheme = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(scheme, back);
    }

    /// Experiments round trip too, including topology and failure specs.
    #[test]
    fn experiments_round_trip_through_json(n in 10usize..200, frac in 0.0f64..0.5) {
        let exp = bgpsim::Experiment {
            topology: bgpsim::TopologySpec::hierarchical(n),
            scheme: Scheme::batching(0.5),
            failure: FailureSpec::CenterFraction(frac),
            trials: 3,
            base_seed: 99,
        };
        let json = serde_json::to_string(&exp).expect("serializes");
        let back: bgpsim::Experiment = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(exp, back);
    }
}

// ---------------------------------------------------------------------
// Hierarchical topologies and policies
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// On any engineered hierarchy with ground-truth tiers, valley-free
    /// reachability is total: after convergence under Gao-Rexford policies
    /// every router holds a route to every prefix.
    #[test]
    fn hierarchies_have_total_valley_free_reachability(
        n in 20usize..60,
        seed in 0u64..1000,
    ) {
        use bgpsim_topology::generators::{hierarchical, HierarchicalParams};
        let params = HierarchicalParams::three_tier(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = hierarchical(&params, &mut rng).expect("generates");
        let total = topo.num_routers();
        let scheme = Scheme::constant_mrai(0.5).with_policy();
        let mut cfg = SimConfig::from_scheme(&scheme, seed);
        cfg.policy_tiers = Some(params.tier_vector());
        let mut net = Network::new(topo, cfg);
        net.run_initial_convergence();
        net.assert_routing_consistent();
        for r in net.topology().router_ids() {
            prop_assert_eq!(net.node(r).unwrap().loc_rib().len(), total);
        }
    }
}

// ---------------------------------------------------------------------
// Route-flap damping state machine
// ---------------------------------------------------------------------

proptest! {
    /// The damping penalty only ever decays between flaps, suppression
    /// implies the penalty exceeded the threshold at flap time, and a
    /// non-capped release implies the penalty is at or below reuse.
    #[test]
    fn damping_state_machine_invariants(
        gaps in prop::collection::vec(1u64..120, 1..30),
    ) {
        use bgpsim_bgp::damping::{DampingConfig, DampingState};
        use bgpsim_des::{SimDuration, SimTime};
        let cfg = DampingConfig::paper_scale();
        let mut state = DampingState::new();
        let mut t = SimTime::ZERO;
        for &gap in &gaps {
            let before = state.penalty_at(t, &cfg);
            t += SimDuration::from_secs(gap);
            let decayed = state.penalty_at(t, &cfg);
            prop_assert!(
                decayed <= before + 1e-9,
                "penalty grew without a flap: {before} -> {decayed}"
            );
            let newly = state.record_flap(t, &cfg);
            let after = state.penalty_at(t, &cfg);
            prop_assert!((after - (decayed + cfg.penalty_per_flap)).abs() < 1e-6);
            if newly {
                prop_assert!(after > cfg.suppress_threshold);
                prop_assert!(state.is_suppressed());
            }
        }
        if state.is_suppressed() {
            // Wait out the reuse delay: release must succeed.
            let delay = state.reuse_delay(t, &cfg);
            let at = t + delay + SimDuration::from_millis(1);
            let capped = delay >= cfg.max_suppress;
            let released = state.try_release(at, state.gen(), &cfg, capped);
            prop_assert_eq!(released, Some(true), "release failed after its delay");
            prop_assert!(!state.is_suppressed());
        }
    }
}

// ---------------------------------------------------------------------
// Scenario scripting
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any random fail/revive/link-fail script leaves the network in a
    /// state exactly consistent with surviving reachability.
    #[test]
    fn random_scenarios_stay_consistent(
        steps in prop::collection::vec(0usize..3, 1..6),
        seed in 0u64..1000,
        frac in 0.02f64..0.2,
    ) {
        use bgpsim::scenario::{Scenario, ScenarioStep};
        let script: Vec<ScenarioStep> = steps
            .iter()
            .map(|&k| match k {
                0 => ScenarioStep::FailRouters(FailureSpec::CenterFraction(frac)),
                1 => ScenarioStep::ReviveAll,
                _ => ScenarioStep::FailCentralLinks(frac),
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = bgpsim_topology::generators::skewed_topology(
            24, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&Scheme::constant_mrai(0.5), seed),
        );
        let stats = Scenario::new(script.clone()).run(&mut net);
        prop_assert_eq!(stats.len(), script.len());
        net.assert_routing_consistent();
    }
}

// ---------------------------------------------------------------------
// End-to-end: the big invariant
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For random small networks, random failure sizes and any scheme, the
    /// simulation quiesces in a state exactly consistent with surviving
    /// reachability (existence AND shortest-path optimality of every route).
    #[test]
    fn simulation_always_converges_to_ground_truth(
        n in 20usize..36,
        frac in 0.0f64..0.35,
        seed in 0u64..10_000,
        which in 0usize..4,
    ) {
        let scheme = match which {
            0 => Scheme::constant_mrai(0.5),
            1 => Scheme::constant_mrai(2.25),
            2 => Scheme::dynamic_default(),
            _ => Scheme::batching(0.5),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = bgpsim_topology::generators::skewed_topology(
            n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
        let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, seed));
        net.run_failure_experiment(&FailureSpec::CenterFraction(frac));
        net.assert_routing_consistent();
    }
}
