//! Golden-run regression tests.
//!
//! The whole workspace promises bit-for-bit reproducibility per seed; these
//! tests pin the *current* behaviour of one small experiment so that a
//! refactor that silently changes RNG consumption order, event ordering, or
//! protocol behaviour fails loudly instead of drifting the recorded
//! EXPERIMENTS.md numbers.
//!
//! If a change legitimately alters the simulation (a new RNG draw, a model
//! fix), re-baseline by updating the constants here **and** regenerating
//! the recorded results (`all_figures`, `extensions`) so EXPERIMENTS.md
//! stays truthful.

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

fn golden_experiment(scheme: Scheme) -> Experiment {
    Experiment {
        topology: TopologySpec::seventy_thirty(40),
        scheme,
        failure: FailureSpec::CenterFraction(0.10),
        trials: 1,
        base_seed: 777,
    }
}

/// The exact per-run numbers of the golden experiment, captured once and
/// asserted forever. `convergence_delay` is in integer nanoseconds — any
/// drift at all trips the test.
struct Golden {
    scheme: Scheme,
    messages: u64,
    announcements: u64,
    withdrawals: u64,
}

#[test]
fn golden_runs_are_pinned() {
    let goldens = [
        Golden {
            scheme: Scheme::constant_mrai(0.5),
            messages: 5512,
            announcements: 4258,
            withdrawals: 1254,
        },
        Golden {
            scheme: Scheme::batching(0.5),
            messages: 5051,
            announcements: 3834,
            withdrawals: 1217,
        },
        Golden {
            scheme: Scheme::dynamic_default(),
            messages: 5518,
            announcements: 4187,
            withdrawals: 1331,
        },
    ];
    let mut failures = Vec::new();
    for g in goldens {
        let stats = golden_experiment(g.scheme.clone()).run_trial(0);
        if stats.messages != g.messages
            || stats.announcements != g.announcements
            || stats.withdrawals != g.withdrawals
        {
            failures.push(format!(
                "{}: expected {}/{}/{} (msgs/ann/wd), got {}/{}/{}",
                g.scheme.name,
                g.messages,
                g.announcements,
                g.withdrawals,
                stats.messages,
                stats.announcements,
                stats.withdrawals
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden runs drifted — if intentional, re-baseline and regenerate \
         EXPERIMENTS.md:\n{}",
        failures.join("\n")
    );
}

/// Regenerating the same trial twice in-process is also exact (guards
/// against global mutable state sneaking in).
#[test]
fn golden_run_is_stable_within_process() {
    let exp = golden_experiment(Scheme::constant_mrai(1.25));
    assert_eq!(exp.run_trial(0), exp.run_trial(0));
}
