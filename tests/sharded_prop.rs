//! Property test: the sharded event loop is bit-identical to serial.
//!
//! The sharded engine (`BGPSIM_SHARDS` / `SimConfig::shards`) partitions
//! routers — and, since the shard-owned-FEL refactor (DESIGN.md §13),
//! their pending events — across shards and runs them in synchronous
//! epochs of width `link_delay` (the conservative-PDES lookahead). Its
//! contract is exact determinism: for any topology, seed, failure
//! fraction, shard count and scheme family, the run must be
//! indistinguishable from the serial engine — identical `RunStats` field
//! for field, identical final Loc-RIBs on every surviving router, AND a
//! byte-identical trace JSONL stream. Equality of the Loc-RIBs (not just
//! the aggregate counters) is what rules out compensating errors such as
//! two routers swapping best paths; equality of the trace bytes pins the
//! interior event order, not just the final state.
//!
//! A deterministic regression case pins the epoch-boundary edge:
//! with a zero origination window every message lands exactly on an
//! epoch boundary (`t0 + link_delay == epoch_end`), which the half-open
//! epoch window must defer to the next epoch in serial order.

use bgpsim::metrics::RunStats;
use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_des::SimDuration;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::Topology;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn schemes() -> [Scheme; 3] {
    [
        Scheme::constant_mrai(0.5),
        Scheme::batching(0.5),
        Scheme::dynamic_default(),
    ]
}

fn topo(seed: u64, nodes: usize) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
}

/// Runs the full failure experiment under `shards` with a memory trace
/// sink attached, and returns the stats, the final network for state
/// comparison, and the trace serialized to JSONL. The walk emits trace
/// events in serial order, so the JSONL must match serial byte for byte.
fn run(
    scheme: &Scheme,
    seed: u64,
    nodes: usize,
    fraction: f64,
    shards: usize,
) -> (RunStats, Network, String) {
    let mut cfg = SimConfig::from_scheme(scheme, seed);
    cfg.shards = Some(shards);
    // One commit stream per shard: every sharded run here also exercises
    // the destination-partitioned parallel commit, not just Phase A.
    cfg.commit_streams = Some(shards);
    let mut net = Network::new(topo(seed, nodes), cfg);
    net.set_trace_sink(bgpsim::TraceSink::memory(1 << 20));
    let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(fraction));
    let mem = net
        .trace_sink()
        .memory_events()
        .expect("memory sink attached");
    assert_eq!(mem.dropped(), 0, "trace capacity exceeded");
    let jsonl = bgpsim::trace::to_jsonl(mem.events());
    (stats, net, jsonl)
}

/// Asserts the externally observable final state of two runs is identical:
/// clock, per-router aliveness, Loc-RIB contents and per-node counters.
fn assert_state_identical(a: &Network, b: &Network, what: &str) {
    assert_eq!(a.now(), b.now(), "{what}: clock diverged");
    for r in a.topology().router_ids() {
        match (a.node(r), b.node(r)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.loc_rib(), y.loc_rib(), "{what}: Loc-RIB of {r} diverged");
                assert_eq!(x.stats(), y.stats(), "{what}: node stats of {r} diverged");
            }
            _ => panic!("{what}: aliveness of {r} diverged"),
        }
    }
}

proptest! {
    // Each case runs 3 schemes × (1 serial + 3 sharded) full simulations;
    // keep the count low and the networks small.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn sharded_runs_are_bit_identical_across_schemes(
        nodes in 15usize..30,
        seed in 0u64..10_000,
        fraction_idx in 0usize..3,
    ) {
        let fraction = [0.05, 0.10, 0.20][fraction_idx];
        for scheme in schemes() {
            // shards=0 clamps to 1, i.e. the plain serial engine.
            let (serial_stats, serial_net, serial_jsonl) =
                run(&scheme, seed, nodes, fraction, 0);
            // 1 exercises the shards-set-but-serial fallback; 37 exceeds
            // every generated node count, so the engine must clamp to one
            // router per shard and stay identical.
            for shards in [1usize, 2, 3, 37] {
                let (stats, net, jsonl) = run(&scheme, seed, nodes, fraction, shards);
                prop_assert_eq!(
                    stats,
                    serial_stats,
                    "RunStats diverged: scheme={} shards={}",
                    scheme.name,
                    shards
                );
                assert_state_identical(
                    &net,
                    &serial_net,
                    &format!("scheme={} shards={}", scheme.name, shards),
                );
                prop_assert!(
                    jsonl == serial_jsonl,
                    "trace JSONL diverged from serial: scheme={} shards={}",
                    scheme.name,
                    shards
                );
            }
        }
    }
}

#[test]
fn shard_count_exceeding_node_count_matches_serial() {
    // Degenerate partition: far more shards (and commit streams) than
    // routers. The engine clamps to one router per shard; most workers
    // idle every epoch and most commit streams stay empty, but every
    // observable must still match serial exactly.
    let scheme = Scheme::batching(0.5);
    let (serial_stats, serial_net, serial_jsonl) = run(&scheme, 2024, 18, 0.10, 1);
    let (stats, net, jsonl) = run(&scheme, 2024, 18, 0.10, 64);
    assert_eq!(stats, serial_stats, "RunStats diverged at 64 shards");
    assert_state_identical(&net, &serial_net, "64 shards on 18 routers");
    assert_eq!(jsonl, serial_jsonl, "trace JSONL diverged at 64 shards");
}

#[test]
fn single_destination_topology_contends_one_commit_stream() {
    // Degenerate destination partition: every router sits in one AS, so
    // the whole run concerns a single prefix and every prefix-keyed
    // commit op lands in the same stream (dest % streams is constant).
    // The other streams only ever see node-keyed ops; identity must hold
    // on this maximally contended path, and with a full mesh the epochs
    // are busy enough that the parallel commit actually engages.
    use bgpsim_topology::{AsId, Point, Router, RouterId};
    let n = 24usize;
    let build = |shards: usize| {
        let routers = (0..n)
            .map(|i| Router {
                as_id: AsId::new(0),
                pos: Point::new(i as f64, (i % 5) as f64),
            })
            .collect();
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((RouterId::new(a as u32), RouterId::new(b as u32)));
            }
        }
        let mut cfg = SimConfig::new(1234);
        cfg.shards = Some(shards);
        cfg.commit_streams = Some(shards);
        Network::new(Topology::new(routers, edges).unwrap(), cfg)
    };
    let mut serial = build(1);
    let serial_delay = serial.run_initial_convergence();
    for shards in [2usize, 4] {
        let mut net = build(shards);
        let delay = net.run_initial_convergence();
        assert_eq!(
            delay, serial_delay,
            "{shards} shards: convergence delay diverged"
        );
        assert_state_identical(&net, &serial, &format!("{shards} shards"));
        assert!(
            net.shard_phase_timings().parallel_commit_epochs > 0,
            "{shards} shards: single-destination run never took the parallel commit path"
        );
    }
}

#[test]
fn epoch_boundary_messages_keep_serial_order() {
    // Zero origination window: every router originates at t=0, so every
    // Deliver lands exactly at k × link_delay — always on an epoch
    // boundary. The sharded engine must queue those into the following
    // epoch and deliver them in serial (time, event-id) order.
    let build = |shards: usize| {
        let mut cfg = SimConfig::new(4242);
        cfg.origination_window = SimDuration::ZERO;
        cfg.shards = Some(shards);
        cfg.commit_streams = Some(shards);
        Network::new(topo(4242, 20), cfg)
    };
    let mut serial = build(1);
    let serial_delay = serial.run_initial_convergence();
    for shards in [2usize, 5] {
        let mut net = build(shards);
        let delay = net.run_initial_convergence();
        assert_eq!(
            delay, serial_delay,
            "{shards} shards: convergence delay diverged"
        );
        assert_state_identical(&net, &serial, &format!("{shards} shards"));
    }
}
