//! Cross-crate integration tests: topology generation → network wiring →
//! BGP convergence → failure → re-convergence, verified against
//! ground-truth reachability.

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_bgp::mrai::MraiScope;
use bgpsim_bgp::Prefix;
use bgpsim_des::{RngStreams, SimDuration};
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::{RouterId, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn topo(seed: u64, n: usize) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    skewed_topology(n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
}

#[test]
fn paper_default_network_converges_and_recovers() {
    let mut net = Network::new(topo(1, 60), SimConfig::new(10));
    let initial = net.run_initial_convergence();
    assert!(initial > SimDuration::ZERO);
    net.assert_routing_consistent();

    let failed = net.inject_failure(&FailureSpec::CenterFraction(0.10));
    assert_eq!(failed.len(), 6);
    let stats = net.run_to_quiescence();
    net.assert_routing_consistent();
    assert!(stats.convergence_delay > SimDuration::ZERO);
    assert!(stats.withdrawals > 0, "dead prefixes must be withdrawn");
    // Six ASes died with their prefixes; survivors must drop those routes.
    for r in net.topology().router_ids().filter(|&r| net.is_alive(r)) {
        let node = net.node(r).unwrap();
        for &f in &failed {
            let dead_prefix = Prefix::new(net.topology().router(f).as_id.index() as u32);
            assert!(
                node.loc_rib().get(dead_prefix).is_none(),
                "router {r} kept a route to dead prefix {dead_prefix}"
            );
        }
    }
}

#[test]
fn every_scheme_reaches_a_consistent_state() {
    for (i, scheme) in [
        Scheme::constant_mrai(0.5),
        Scheme::constant_mrai(2.25),
        Scheme::degree_dependent(0.5, 2.25, 8),
        Scheme::dynamic_default(),
        Scheme::batching(0.5),
        Scheme::batching_plus_dynamic(),
        Scheme::tcp_batch(0.5, 16),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = SimConfig::from_scheme(&scheme, 100 + i as u64);
        let mut net = Network::new(topo(2, 50), cfg);
        net.run_failure_experiment(&FailureSpec::CenterFraction(0.15));
        net.assert_routing_consistent();
    }
}

#[test]
fn per_destination_mrai_converges_consistently() {
    let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 11);
    cfg.mrai_scope = MraiScope::PerDestination;
    let mut net = Network::new(topo(3, 40), cfg);
    let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
    assert!(stats.messages > 0);
    net.assert_routing_consistent();
}

#[test]
fn wrate_still_converges() {
    let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 12);
    cfg.wrate = true;
    let mut net = Network::new(topo(4, 40), cfg);
    net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
    net.assert_routing_consistent();
}

#[test]
fn jitter_off_still_converges() {
    let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(1.25), 13);
    cfg.jitter = false;
    let mut net = Network::new(topo(5, 40), cfg);
    net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
    net.assert_routing_consistent();
}

#[test]
fn detection_delay_shifts_convergence() {
    let run = |detection_ms: u64| {
        let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(2.25), 14);
        cfg.detection_delay = SimDuration::from_millis(detection_ms);
        let mut net = Network::new(topo(6, 40), cfg);
        net.run_failure_experiment(&FailureSpec::CenterFraction(0.10))
    };
    let fast = run(0);
    let slow = run(5_000);
    assert!(
        slow.convergence_delay >= fast.convergence_delay + SimDuration::from_secs(4),
        "a 5 s detection delay must push convergence out by about that much \
         (fast {}, slow {})",
        fast.convergence_delay,
        slow.convergence_delay
    );
}

#[test]
fn scattered_failures_also_recover() {
    let mut net = Network::new(
        topo(7, 50),
        SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 15),
    );
    net.run_initial_convergence();
    net.inject_failure(&FailureSpec::RandomFraction(0.10));
    net.run_to_quiescence();
    net.assert_routing_consistent();
}

#[test]
fn corner_failures_also_recover() {
    let mut net = Network::new(
        topo(8, 50),
        SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 16),
    );
    net.run_initial_convergence();
    net.inject_failure(&FailureSpec::CornerFraction(0.10));
    net.run_to_quiescence();
    net.assert_routing_consistent();
}

#[test]
fn multi_as_failure_recovers_consistently() {
    let mut rng = SmallRng::seed_from_u64(20);
    let topo = generate_multi_as(&MultiAsConfig::realistic(25), &mut rng).unwrap();
    let mut net = Network::new(
        topo,
        SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 21),
    );
    let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.05));
    assert!(stats.failed_routers > 0);
    net.assert_routing_consistent();
}

#[test]
fn network_partition_is_handled() {
    // A barbell: two triangles joined by one bridge node. Failing the
    // bridge partitions the network; both halves must still converge,
    // each losing the other half's prefixes.
    use bgpsim_topology::{AsId, Point, Router};
    let mk = |i: u32, x: f64| Router {
        as_id: AsId::new(i),
        pos: Point::new(x, 500.0),
    };
    let routers = vec![
        mk(0, 0.0),
        mk(1, 10.0),
        mk(2, 20.0),
        mk(3, 500.0), // bridge at grid centre
        mk(4, 980.0),
        mk(5, 990.0),
        mk(6, 1000.0),
    ];
    let rid = RouterId::new;
    let edges = vec![
        (rid(0), rid(1)),
        (rid(1), rid(2)),
        (rid(0), rid(2)),
        (rid(2), rid(3)),
        (rid(3), rid(4)),
        (rid(4), rid(5)),
        (rid(5), rid(6)),
        (rid(4), rid(6)),
    ];
    let topo = Topology::new(routers, edges).unwrap();
    let mut net = Network::new(
        topo,
        SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 30),
    );
    net.run_initial_convergence();
    net.inject_failure(&FailureSpec::Explicit(vec![rid(3)]));
    net.run_to_quiescence();
    net.assert_routing_consistent();
    // Left half keeps its own prefixes, loses the right half's.
    let left = net.node(rid(0)).unwrap();
    assert!(left.loc_rib().get(Prefix::new(1)).is_some());
    assert!(left.loc_rib().get(Prefix::new(5)).is_none());
    let right = net.node(rid(6)).unwrap();
    assert!(right.loc_rib().get(Prefix::new(4)).is_some());
    assert!(right.loc_rib().get(Prefix::new(0)).is_none());
}

#[test]
fn repeated_failures_in_sequence() {
    // Fail twice: the network must re-converge consistently both times.
    let mut net = Network::new(
        topo(9, 40),
        SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 31),
    );
    net.run_initial_convergence();
    net.inject_failure(&FailureSpec::CenterFraction(0.05));
    net.run_to_quiescence();
    net.assert_routing_consistent();
    net.inject_failure(&FailureSpec::CornerFraction(0.05));
    net.run_to_quiescence();
    net.assert_routing_consistent();
}

#[test]
fn valley_free_semantics_on_hand_built_topology() {
    // A(1) — P1(2) — P2(2) — P3(2) — B(1): equal-degree P's are peers,
    // A and B are customers of their P. A's prefix crosses ONE peer edge
    // (P1→P2) but must not transit the second (P2→P3): a peer-learned
    // route is not exported to another peer.
    use bgpsim_topology::{AsId, Point, Router};
    let mk = |i: u32, x: f64| Router {
        as_id: AsId::new(i),
        pos: Point::new(x, 100.0),
    };
    let routers = vec![
        mk(0, 0.0),
        mk(1, 10.0),
        mk(2, 20.0),
        mk(3, 30.0),
        mk(4, 40.0),
    ];
    let rid = RouterId::new;
    let topo = Topology::new(
        routers,
        vec![
            (rid(0), rid(1)), // A — P1
            (rid(1), rid(2)), // P1 — P2
            (rid(2), rid(3)), // P2 — P3
            (rid(3), rid(4)), // P3 — B
        ],
    )
    .unwrap();
    // Degrees: A 1, P1 2, P2 2, P3 2, B 1.
    let scheme = Scheme::constant_mrai(0.5).with_policy();
    let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 60));
    net.run_initial_convergence();
    net.assert_routing_consistent();

    let prefix_a = Prefix::new(0);
    // P1 (A's provider) has the customer route and exports it to peer P2.
    assert!(net.node(rid(1)).unwrap().loc_rib().get(prefix_a).is_some());
    assert!(net.node(rid(2)).unwrap().loc_rib().get(prefix_a).is_some());
    // P2's route is peer-learned: it must NOT reach peer P3 (a valley).
    assert!(
        net.node(rid(3)).unwrap().loc_rib().get(prefix_a).is_none(),
        "peer-learned route leaked to another peer"
    );
    assert!(net.node(rid(4)).unwrap().loc_rib().get(prefix_a).is_none());
    // But B's prefix reaches P3 and P2 (one peer hop from P3)...
    let prefix_b = Prefix::new(4);
    assert!(net.node(rid(2)).unwrap().loc_rib().get(prefix_b).is_some());
    // ...and not P1 (second peer hop).
    assert!(net.node(rid(1)).unwrap().loc_rib().get(prefix_b).is_none());
    // Everyone still reaches the directly adjacent prefixes.
    assert!(net
        .node(rid(0))
        .unwrap()
        .loc_rib()
        .get(Prefix::new(1))
        .is_some());
}

#[test]
fn policy_network_recovers_from_failure() {
    let scheme = Scheme::batching(0.5).with_policy();
    let mut net = Network::new(topo(22, 50), SimConfig::from_scheme(&scheme, 61));
    net.run_failure_experiment(&FailureSpec::CenterFraction(0.15));
    net.assert_routing_consistent();
}

#[test]
fn damping_converges_to_consistent_state() {
    use bgpsim_bgp::damping::DampingConfig;
    let scheme = Scheme::constant_mrai(1.25).with_damping(DampingConfig::paper_scale());
    let mut net = Network::new(topo(23, 40), SimConfig::from_scheme(&scheme, 62));
    let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.15));
    // By quiescence every reuse timer has fired, so no route is still
    // suppressed and the ground truth must hold exactly.
    net.assert_routing_consistent();
    assert!(stats.messages > 0);
    for r in net.topology().router_ids().filter(|&r| net.is_alive(r)) {
        assert_eq!(net.node(r).unwrap().suppressed_count(), 0);
    }
}

#[test]
fn damping_slows_large_failure_convergence() {
    use bgpsim_bgp::damping::DampingConfig;
    let run = |damped: bool| {
        let scheme = if damped {
            Scheme::constant_mrai(2.25).with_damping(DampingConfig::paper_scale())
        } else {
            Scheme::constant_mrai(2.25)
        };
        let mut net = Network::new(topo(24, 50), SimConfig::from_scheme(&scheme, 63));
        net.run_failure_experiment(&FailureSpec::CenterFraction(0.15))
    };
    let plain = run(false);
    let damped = run(true);
    // Mao et al.: suppressing path-hunting alternates delays convergence.
    assert!(
        damped.convergence_delay > plain.convergence_delay,
        "damping should exacerbate convergence (plain {}, damped {})",
        plain.convergence_delay,
        damped.convergence_delay
    );
}

#[test]
fn seeded_runs_reproduce_exactly_across_networks() {
    let run = || {
        let mut net = Network::new(
            topo(10, 45),
            SimConfig::from_scheme(&Scheme::dynamic_default(), 77),
        );
        net.run_failure_experiment(&FailureSpec::CenterFraction(0.1))
    };
    assert_eq!(run(), run());
}

#[test]
fn rng_streams_do_not_collide_across_components() {
    // Spot check that node RNG streams differ (the simulation depends on
    // per-node independence for the jitter to desynchronize timers).
    use rand::Rng;
    let streams = RngStreams::new(5);
    let a: u64 = streams.stream("node", 0).gen();
    let b: u64 = streams.stream("node", 1).gen();
    let c: u64 = streams.stream("originate", 0).gen();
    assert_ne!(a, b);
    assert_ne!(a, c);
}
