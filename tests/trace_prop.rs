//! Property tests for the tracing layer (`bgpsim::trace`).
//!
//! Two contracts, checked together over random topologies, seeds,
//! failure fractions and schemes:
//!
//! 1. **Tracing is invisible.** Attaching a `TraceSink::Memory` must not
//!    perturb the simulation: `RunStats` is field-identical to the same
//!    run with `TraceSink::Off`. The sink only observes; it never feeds
//!    back into event timing or ordering.
//! 2. **Traces are deterministic across shard counts.** The JSONL
//!    serialization of the event stream from a sharded run
//!    (`SimConfig::shards`) — with the destination-partitioned parallel
//!    commit enabled (`SimConfig::commit_streams`) — is byte-identical
//!    to the serial run's. This is stronger than equal `RunStats`: every
//!    event, every field, every sequence number must match, which pins
//!    both the Phase B walk order and the plan-index trace merge in
//!    `shard.rs`.

use bgpsim::metrics::RunStats;
use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim::trace::{to_jsonl, TraceEvent, TraceSink};
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::Topology;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn schemes() -> [Scheme; 3] {
    [
        Scheme::constant_mrai(0.5),
        Scheme::batching(0.5),
        Scheme::dynamic_default(),
    ]
}

fn topo(seed: u64, nodes: usize) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
}

/// Converges, injects the failure, then runs the traced re-convergence
/// phase under `shards` workers. `traced == false` leaves the sink Off.
fn run(
    scheme: &Scheme,
    seed: u64,
    nodes: usize,
    fraction: f64,
    shards: usize,
    traced: bool,
) -> (RunStats, Vec<TraceEvent>) {
    let mut cfg = SimConfig::from_scheme(scheme, seed);
    cfg.shards = Some(shards);
    // One commit stream per shard: sharded runs must stay byte-identical
    // with the parallel commit on, not just with the serial replay.
    cfg.commit_streams = Some(shards);
    let mut net = Network::new(topo(seed, nodes), cfg);
    net.run_initial_convergence();
    net.inject_failure(&FailureSpec::CenterFraction(fraction));
    if traced {
        net.set_trace_sink(TraceSink::memory(1 << 22));
    }
    let stats = net.run_to_quiescence();
    (stats, net.take_trace_events())
}

proptest! {
    // Each case runs 4 full simulations (serial off/on + 2 sharded);
    // keep the count low and the networks small.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn tracing_is_invisible_and_shard_deterministic(
        nodes in 15usize..30,
        seed in 0u64..10_000,
        fraction_idx in 0usize..3,
        scheme_idx in 0usize..3,
    ) {
        let fraction = [0.05, 0.10, 0.20][fraction_idx];
        let scheme = &schemes()[scheme_idx];

        // Contract 1: Off vs Memory — field-identical RunStats.
        let (stats_off, no_events) = run(scheme, seed, nodes, fraction, 1, false);
        let (stats_mem, events) = run(scheme, seed, nodes, fraction, 1, true);
        prop_assert_eq!(no_events.len(), 0, "Off sink must record nothing");
        prop_assert_eq!(
            stats_mem,
            stats_off,
            "memory tracing perturbed the run: scheme={}",
            scheme.name
        );
        prop_assert!(
            !events.is_empty(),
            "a traced re-convergence must record events"
        );
        let serial_jsonl = to_jsonl(&events);

        // Contract 2: serial vs sharded — byte-identical JSONL streams,
        // with the parallel destination-partitioned commit engaged.
        for shards in [2usize, 4] {
            let (stats, events) = run(scheme, seed, nodes, fraction, shards, true);
            prop_assert_eq!(
                stats,
                stats_off,
                "RunStats diverged: scheme={} shards={}",
                scheme.name,
                shards
            );
            let jsonl = to_jsonl(&events);
            prop_assert!(
                jsonl == serial_jsonl,
                "trace streams diverged: scheme={} shards={} ({} vs {} bytes)",
                scheme.name,
                shards,
                jsonl.len(),
                serial_jsonl.len()
            );
        }
    }
}
