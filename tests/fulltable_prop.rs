//! Byte-identity of the sharded engine on full-table burst workloads.
//!
//! The full-table workload changes the two dimensions the sharded
//! engine's destination partitioning cares about: the prefix space is
//! orders of magnitude larger than the router space (commit streams bin
//! by prefix slot), and a burst withdrawal floods thousands of
//! `WithdrawOrigin` events into one instant — the event-storm shape the
//! paper studies. The contract is unchanged: for any shard count the run
//! must match serial field-for-field in `RunStats`, state-for-state in
//! the final Loc-RIBs, and byte-for-byte in the trace JSONL.

use bgpsim::metrics::RunStats;
use bgpsim::network::{FullTableSpec, Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::Topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn topo(seed: u64, nodes: usize) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
}

/// Initial convergence on a power-law full table, then a central-region
/// burst withdrawal to quiescence, traced. Returns the post-burst stats,
/// the final network and the trace bytes.
fn run_burst(
    scheme: &Scheme,
    seed: u64,
    nodes: usize,
    table: u32,
    shards: usize,
) -> (RunStats, Network, String) {
    let scheme = scheme
        .clone()
        .with_full_table(FullTableSpec::internet_like(table));
    let mut cfg = SimConfig::from_scheme(&scheme, seed);
    cfg.shards = Some(shards);
    cfg.commit_streams = Some(shards);
    let mut net = Network::new(topo(seed, nodes), cfg);
    net.set_trace_sink(bgpsim::TraceSink::memory(1 << 22));
    net.run_initial_convergence();
    let withdrawn = net.inject_burst_withdrawal(&FailureSpec::CenterFraction(0.2));
    assert!(!withdrawn.is_empty(), "burst must withdraw something");
    let stats = net.run_to_quiescence();
    let mem = net
        .trace_sink()
        .memory_events()
        .expect("memory sink attached");
    assert_eq!(mem.dropped(), 0, "trace capacity exceeded");
    let jsonl = bgpsim::trace::to_jsonl(mem.events());
    (stats, net, jsonl)
}

fn assert_state_identical(a: &Network, b: &Network, what: &str) {
    assert_eq!(a.now(), b.now(), "{what}: clock diverged");
    for r in a.topology().router_ids() {
        match (a.node(r), b.node(r)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.loc_rib(), y.loc_rib(), "{what}: Loc-RIB of {r} diverged");
                assert_eq!(x.stats(), y.stats(), "{what}: node stats of {r} diverged");
            }
            _ => panic!("{what}: aliveness of {r} diverged"),
        }
    }
}

#[test]
fn burst_withdrawal_on_full_table_is_bit_identical_across_shards() {
    for (seed, nodes, table) in [(7u64, 20usize, 250u32), (11, 24, 400)] {
        for scheme in [Scheme::constant_mrai(0.5), Scheme::batching(0.5)] {
            let (serial_stats, serial_net, serial_jsonl) =
                run_burst(&scheme, seed, nodes, table, 1);
            // 37 exceeds the node count: the engine clamps to one router
            // per shard and must stay identical.
            for shards in [2usize, 37] {
                let (stats, net, jsonl) = run_burst(&scheme, seed, nodes, table, shards);
                assert_eq!(
                    stats, serial_stats,
                    "RunStats diverged: scheme={} shards={shards} table={table}",
                    scheme.name
                );
                assert_state_identical(
                    &net,
                    &serial_net,
                    &format!("scheme={} shards={shards} table={table}", scheme.name),
                );
                assert!(
                    jsonl == serial_jsonl,
                    "trace JSONL diverged from serial: scheme={} shards={shards} table={table}",
                    scheme.name
                );
            }
        }
    }
}

#[test]
fn withdrawn_prefixes_stay_withdrawn_in_every_engine() {
    // The burst bookkeeping (`Network::withdrawn_prefixes`) lives outside
    // the event loop; both engines must agree on it and on the resulting
    // absence of routes.
    let scheme = Scheme::constant_mrai(0.5);
    let (_, serial, _) = run_burst(&scheme, 3, 18, 120, 1);
    let (_, sharded, _) = run_burst(&scheme, 3, 18, 120, 2);
    let a: Vec<_> = serial.withdrawn_prefixes().collect();
    let b: Vec<_> = sharded.withdrawn_prefixes().collect();
    assert_eq!(a, b, "withdrawn sets diverged");
    assert!(!a.is_empty());
    for r in serial.topology().router_ids() {
        for &p in &a {
            assert!(
                serial.node(r).unwrap().loc_rib().get(p).is_none(),
                "router {r} kept withdrawn {p:?}"
            );
        }
    }
}
