//! Shape tests: the paper's qualitative findings must reproduce at reduced
//! scale. These are the cheap, always-on versions of the claims the full
//! benchmark harness (crates/bench) verifies at 120 nodes — see
//! EXPERIMENTS.md for the full-fidelity numbers.

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

const NODES: usize = 60;
const TRIALS: u32 = 3;
const SEED: u64 = 60_2006;

fn delay(scheme: Scheme, fraction: f64) -> f64 {
    Experiment {
        topology: TopologySpec::seventy_thirty(NODES),
        scheme,
        failure: FailureSpec::CenterFraction(fraction),
        trials: TRIALS,
        base_seed: SEED,
    }
    .run()
    .mean_delay_secs()
}

fn messages(scheme: Scheme, fraction: f64) -> f64 {
    Experiment {
        topology: TopologySpec::seventy_thirty(NODES),
        scheme,
        failure: FailureSpec::CenterFraction(fraction),
        trials: TRIALS,
        base_seed: SEED,
    }
    .run()
    .mean_messages()
}

/// Fig 1: with a small MRAI, the delay explodes as failures grow; with a
/// larger MRAI the growth is much flatter, and the curves cross.
#[test]
fn small_mrai_explodes_for_large_failures() {
    let small_mrai_small_failure = delay(Scheme::constant_mrai(0.5), 0.025);
    let small_mrai_large_failure = delay(Scheme::constant_mrai(0.5), 0.20);
    let large_mrai_large_failure = delay(Scheme::constant_mrai(2.25), 0.20);
    assert!(
        small_mrai_large_failure > 4.0 * small_mrai_small_failure,
        "MRAI 0.5: delay must grow sharply with failure size \
         ({small_mrai_small_failure:.1} → {small_mrai_large_failure:.1})"
    );
    assert!(
        small_mrai_large_failure > 2.0 * large_mrai_large_failure,
        "at 20% failure, MRAI 2.25 ({large_mrai_large_failure:.1}) must beat \
         MRAI 0.5 ({small_mrai_large_failure:.1})"
    );
}

/// Fig 2: the message count mirrors the delay blow-up.
#[test]
fn message_counts_mirror_delay_blowup() {
    let m_small = messages(Scheme::constant_mrai(0.5), 0.20);
    let m_large = messages(Scheme::constant_mrai(2.25), 0.20);
    assert!(
        m_small > 2.0 * m_large,
        "MRAI 0.5 must generate far more messages at 20% failure \
         ({m_small:.0} vs {m_large:.0})"
    );
}

/// Fig 3: the delay-vs-MRAI curve is V-shaped for a 5% failure — both
/// extremes are worse than the mid-range.
#[test]
fn v_shaped_delay_vs_mrai() {
    let low = delay(Scheme::constant_mrai(0.25), 0.05);
    let mid = [0.75, 1.0, 1.25]
        .iter()
        .map(|&m| delay(Scheme::constant_mrai(m), 0.05))
        .fold(f64::INFINITY, f64::min);
    let high = delay(Scheme::constant_mrai(6.0), 0.05);
    assert!(
        low > mid,
        "left arm of the V: {low:.1} must exceed mid {mid:.1}"
    );
    assert!(
        high > mid,
        "right arm of the V: {high:.1} must exceed mid {mid:.1}"
    );
}

/// §4.1: the optimal MRAI grows with the failure size — the best MRAI for
/// a 1% failure is smaller than for a 10% failure.
#[test]
fn optimal_mrai_grows_with_failure_size() {
    let sweep = [0.25, 0.5, 1.0, 1.5, 2.25, 3.0];
    let argmin = |fraction: f64| {
        sweep
            .iter()
            .map(|&m| (m, delay(Scheme::constant_mrai(m), fraction)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
    };
    let best_small = argmin(0.01);
    let best_large = argmin(0.15);
    assert!(
        best_small < best_large,
        "optimal MRAI must grow with failure size (1%: {best_small}, 15%: {best_large})"
    );
}

/// Fig 6: degree-dependent MRAI — high MRAI at high-degree nodes is the
/// right assignment; the reverse behaves like the bad constant.
#[test]
fn degree_dependent_mrai_needs_high_at_hubs() {
    let good = delay(Scheme::degree_dependent(0.5, 2.25, 8), 0.20);
    let reversed = delay(Scheme::degree_dependent(2.25, 0.5, 8), 0.20);
    let const_half = delay(Scheme::constant_mrai(0.5), 0.20);
    let const_high = delay(Scheme::constant_mrai(2.25), 0.20);
    assert!(
        good < 0.6 * const_half,
        "high-at-hubs ({good:.1}) must rescue most of the MRAI-0.5 blowup \
         ({const_half:.1})"
    );
    assert!(
        good < 1.3 * const_high,
        "high-at-hubs ({good:.1}) must track the high constant ({const_high:.1})"
    );
    assert!(
        reversed > 1.2 * good,
        "reversed assignment ({reversed:.1}) must be worse than \
         high-at-hubs ({good:.1})"
    );
}

/// Fig 7: dynamic MRAI tracks the best constant at both ends of the sweep.
#[test]
fn dynamic_mrai_adapts_to_failure_size() {
    // Small failures: close to (or better than) MRAI 0.5.
    let dyn_small = delay(Scheme::dynamic_default(), 0.025);
    let const_half_small = delay(Scheme::constant_mrai(0.5), 0.025);
    assert!(
        dyn_small < 2.0 * const_half_small + 5.0,
        "dynamic ({dyn_small:.1}) must stay near MRAI 0.5 ({const_half_small:.1}) \
         for small failures"
    );
    // Large failures: far better than the small constant.
    let dyn_large = delay(Scheme::dynamic_default(), 0.20);
    let const_half_large = delay(Scheme::constant_mrai(0.5), 0.20);
    assert!(
        dyn_large < 0.6 * const_half_large,
        "dynamic ({dyn_large:.1}) must beat MRAI 0.5 ({const_half_large:.1}) \
         for large failures"
    );
}

/// Fig 10: batching slashes the large-failure delay at small MRAI (the
/// paper reports a factor of 3 or more).
#[test]
fn batching_cuts_large_failure_delay_by_3x() {
    let fifo = delay(Scheme::constant_mrai(0.5), 0.20);
    let batched = delay(Scheme::batching(0.5), 0.20);
    assert!(
        fifo > 3.0 * batched,
        "batching must win by ≥3× at 20% failure (fifo {fifo:.1}, batched {batched:.1})"
    );
}

/// Fig 10: batching must not hurt small failures.
#[test]
fn batching_is_free_for_small_failures() {
    let fifo = delay(Scheme::constant_mrai(0.5), 0.01);
    let batched = delay(Scheme::batching(0.5), 0.01);
    assert!(
        batched <= fifo * 1.5 + 5.0,
        "batching must not penalize small failures (fifo {fifo:.1}, batched {batched:.1})"
    );
}

/// Fig 11: the batching scheme's message count drops to roughly the
/// high-constant level.
#[test]
fn batching_suppresses_message_storms() {
    let fifo = messages(Scheme::constant_mrai(0.5), 0.20);
    let batched = messages(Scheme::batching(0.5), 0.20);
    assert!(
        batched < 0.5 * fifo,
        "batching must suppress the message storm (fifo {fifo:.0}, batched {batched:.0})"
    );
}

/// Fig 12: batching only matters below the optimal MRAI — at a large MRAI
/// nothing queues, so batched and FIFO coincide (within noise).
#[test]
fn batching_is_noop_at_large_mrai() {
    let fifo = delay(Scheme::constant_mrai(3.0), 0.05);
    let batched = delay(Scheme::batching(3.0), 0.05);
    let ratio = batched / fifo;
    assert!(
        (0.6..1.4).contains(&ratio),
        "at MRAI 3.0 batching should change little (fifo {fifo:.1}, batched {batched:.1})"
    );
}

/// §5 future work: the failure-size oracle tracks the best constant at
/// both ends of the failure sweep (it *is* the best constant, switched at
/// injection time).
#[test]
fn oracle_tracks_best_constant() {
    let oracle = Scheme::oracle(&[(0.025, 0.5), (0.075, 1.25), (1.0, 2.25)]);
    // Small failures: competitive with MRAI 0.5.
    let o_small = delay(oracle.clone(), 0.01);
    let best_small = delay(Scheme::constant_mrai(0.5), 0.01);
    assert!(
        o_small < 1.5 * best_small + 5.0,
        "oracle ({o_small:.1}) must track MRAI 0.5 ({best_small:.1}) for small failures"
    );
    // Large failures: competitive with MRAI 2.25 and far from MRAI 0.5.
    let o_large = delay(oracle, 0.20);
    let best_large = delay(Scheme::constant_mrai(2.25), 0.20);
    let worst_large = delay(Scheme::constant_mrai(0.5), 0.20);
    assert!(
        o_large < 1.5 * best_large + 5.0,
        "oracle ({o_large:.1}) must track MRAI 2.25 ({best_large:.1}) for large failures"
    );
    assert!(
        o_large < 0.7 * worst_large,
        "oracle ({o_large:.1}) must avoid the MRAI-0.5 blowup ({worst_large:.1})"
    );
}

/// Related work [12]: expedited improvements trade messages for delay —
/// the paper notes "the number of update messages went up considerably".
#[test]
fn expedite_trades_messages_for_delay() {
    let base = Scheme::constant_mrai(2.25);
    let expedited = base.clone().with_expedited_improvements();
    let d_base = delay(base.clone(), 0.10);
    let d_fast = delay(expedited.clone(), 0.10);
    let m_base = messages(base, 0.10);
    let m_fast = messages(expedited, 0.10);
    assert!(
        d_fast < d_base * 1.05,
        "expedite must not slow convergence (base {d_base:.1}, expedited {d_fast:.1})"
    );
    assert!(
        m_fast > m_base,
        "expedite must cost extra messages (base {m_base:.0}, expedited {m_fast:.0})"
    );
}

/// §4.4: today's TCP-buffer batching helps less than per-destination
/// batching for large failures.
#[test]
fn tcp_batching_is_weaker_than_destination_batching() {
    let tcp = delay(Scheme::tcp_batch(0.5, 32), 0.20);
    let batched = delay(Scheme::batching(0.5), 0.20);
    assert!(
        batched <= tcp * 1.1,
        "per-destination batching ({batched:.1}) must be at least as good as \
         TCP-buffer batching ({tcp:.1})"
    );
}
