//! Property test: warm-started trials are bit-identical to cold runs.
//!
//! The warm-start sweep engine (`bgpsim::warm`) forks converged networks
//! from a shared snapshot instead of re-running initial convergence per
//! figure point. Its contract is exact determinism: for any topology
//! size, seed and failure fraction, and for each of the paper's three
//! scheme families (constant MRAI, batching, dynamic MRAI), the forked
//! run's `RunStats` must equal the cold run's field for field — both on
//! the cache-miss path (snapshot built, then forked) and on the
//! cache-hit path (pure fork of an existing snapshot).

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim::warm::SnapshotCache;
use bgpsim_topology::region::FailureSpec;
use proptest::prelude::*;

fn schemes() -> [Scheme; 3] {
    [
        Scheme::constant_mrai(0.5),
        Scheme::batching(0.5),
        Scheme::dynamic_default(),
    ]
}

proptest! {
    // Each case runs 3 schemes × (1 cold + 2 warm) full simulations;
    // keep the count low and the networks small.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn warm_forks_are_bit_identical_across_schemes(
        nodes in 15usize..30,
        base_seed in 0u64..10_000,
        fraction_idx in 0usize..3,
    ) {
        let fraction = [0.05, 0.10, 0.20][fraction_idx];
        for scheme in schemes() {
            let exp = Experiment {
                topology: TopologySpec::seventy_thirty(nodes),
                scheme,
                failure: FailureSpec::CenterFraction(fraction),
                trials: 1,
                base_seed,
            };
            let cold = exp.run_trial(0);
            let cache = SnapshotCache::new();
            // Miss path: builds the snapshot, then forks it.
            let warm_built = exp.run_trial_warm(0, &cache);
            // Hit path: pure fork of the cached snapshot.
            let warm_forked = exp.run_trial_warm(0, &cache);
            prop_assert_eq!(cold, warm_built, "build-path diverged: {}", exp.scheme.name);
            prop_assert_eq!(cold, warm_forked, "fork-path diverged: {}", exp.scheme.name);
            let stats = cache.stats();
            prop_assert_eq!(stats.builds, 1);
            prop_assert_eq!(stats.forks, 2);
        }
    }
}
