//! Cross-representation equivalence goldens: the compact delta-encoded
//! RIBs must be observably identical to the dense representation they
//! replaced (DESIGN.md §12).
//!
//! The two engines are selected at compile time (`--features dense-rib`
//! rebuilds everything on the pre-compact dense Adj-RIB-In/Out), so a
//! single binary cannot run both. Equivalence is therefore pinned in
//! three layers:
//!
//! 1. Data-structure proptests in `crates/bgp/src/rib.rs` drive the dense
//!    and compact structures through identical operation histories and
//!    compare every observable (including serialization bytes).
//! 2. Every `cfg(test)` build of the engine carries a dense shadow
//!    Adj-RIB-Out per peer session, asserted against the delta encoding
//!    at each flush.
//! 3. This file pins the *end-to-end* observables of a full failure
//!    experiment — every `RunStats` field and an order-sensitive digest
//!    of every router's final Loc-RIB — as constants. CI runs it twice,
//!    with and without `--features dense-rib`; both engines must
//!    reproduce the same constants from the same topology, scheme and
//!    seed, which is exactly the "field-identical RunStats and final
//!    Loc-RIBs" claim.
//!
//! If a change legitimately alters the simulation, re-baseline under the
//! *default* build first, then confirm `--features dense-rib` agrees.

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// FNV-1a, folded over every byte fed in. Stable across platforms and
/// Rust versions, unlike `DefaultHasher`.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Digest of every surviving router's Loc-RIB, in router order, prefix
/// order, covering all `Selected` fields. Any difference in any route
/// anywhere changes the digest.
fn loc_rib_digest(net: &Network) -> u64 {
    use bgpsim_bgp::rib::NextHop;
    let mut h = Fnv::new();
    for r in net.topology().router_ids() {
        let Some(node) = net.node(r) else {
            h.write_u64(u64::MAX); // dead-router marker keeps alignment
            continue;
        };
        h.write_u64(r.index() as u64);
        for (prefix, sel) in node.loc_rib().iter() {
            h.write_u64(prefix.index() as u64);
            for hop in sel.path.hops() {
                h.write_u64(hop.index() as u64);
            }
            match sel.next_hop {
                NextHop::Local => h.write_u64(u64::MAX - 1),
                NextHop::Peer(p) => h.write_u64(p.index() as u64),
            }
            h.write(&[u8::from(sel.via_ibgp), sel.rank]);
        }
    }
    h.0
}

fn run(scheme: &Scheme) -> (bgpsim::RunStats, u64) {
    let mut rng = SmallRng::seed_from_u64(4242);
    let topo = skewed_topology(40, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
    let mut net = Network::new(topo, SimConfig::from_scheme(scheme, 777));
    let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
    net.assert_routing_consistent();
    (stats, loc_rib_digest(&net))
}

#[test]
fn dense_and_compact_engines_agree_on_stats_and_loc_ribs() {
    // (scheme, messages, announcements, withdrawals, digest) — captured
    // once under the default (compact) build; the dense-rib build must
    // reproduce them exactly.
    let goldens = [
        (
            Scheme::constant_mrai(0.5),
            6698u64,
            4965u64,
            1733u64,
            0x78f8_3894_f2e4_8f3c_u64,
        ),
        (
            Scheme::batching(0.5),
            6601,
            4820,
            1781,
            0x78f8_3894_f2e4_8f3c,
        ),
    ];
    let mut failures = Vec::new();
    for (scheme, messages, announcements, withdrawals, digest) in goldens {
        let (stats, d) = run(&scheme);
        if (stats.messages, stats.announcements, stats.withdrawals, d)
            != (messages, announcements, withdrawals, digest)
        {
            failures.push(format!(
                "{}: expected msgs/ann/wd/digest {messages}/{announcements}/{withdrawals}/{digest:#x}, \
                 got {}/{}/{}/{:#x}",
                scheme.name, stats.messages, stats.announcements, stats.withdrawals, d
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "engines disagree with the pinned observables — if the change to \
         the simulation is intentional, re-baseline under the default \
         build and re-check --features dense-rib:\n{}",
        failures.join("\n")
    );
}

/// The digest itself must be run-to-run stable (guards the digest, not
/// the engine).
#[test]
fn loc_rib_digest_is_deterministic() {
    let (_, a) = run(&Scheme::constant_mrai(0.5));
    let (_, b) = run(&Scheme::constant_mrai(0.5));
    assert_eq!(a, b);
}
