//! Degree distributions.
//!
//! The paper's experiments sweep a family of *skewed* distributions in which
//! a fraction of nodes has low degree (uniform on a small range) and the
//! rest a high degree chosen so the average lands on a target (§4.1):
//!
//! | name       | low fraction | low degrees | high degrees | avg  |
//! |------------|--------------|-------------|--------------|------|
//! | 70-30      | 70%          | 1–3         | 8            | 3.8  |
//! | 50-50      | 50%          | 1–3         | 5 or 6       | 3.8  |
//! | 85-15      | 85%          | 1–3         | 14           | 3.8  |
//! | 50-50 dense| 50%          | 1–3         | 13 or 14     | 7.6  |
//!
//! For the "realistic" topologies (§4.1, Fig 13) the paper derives a degree
//! distribution from Internet AS connectivity data, truncated at degree 40
//! with average ≈ 3.4 and ~70% of ASes connected to fewer than 4 others;
//! [`internet_like`] reproduces that shape with a truncated power law.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A skewed two-class degree distribution (the paper's workhorse).
///
/// `high_fraction` of nodes draw a degree from the weighted `high` choices;
/// the rest draw uniformly from `low_min..=low_max`. The class counts are
/// deterministic (`round(high_fraction · n)` high nodes) so every sampled
/// sequence hits the intended mix exactly; which nodes are high is random.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SkewedSpec {
    /// Smallest low-class degree.
    pub low_min: u32,
    /// Largest low-class degree.
    pub low_max: u32,
    /// High-class degree choices with sampling weights (need not sum to 1).
    pub high: Vec<(u32, f64)>,
    /// Fraction of nodes in the high class, in `[0, 1]`.
    pub high_fraction: f64,
}

impl SkewedSpec {
    /// The paper's default "70-30" distribution: 70% degree 1–3, 30%
    /// degree 8 (average 3.8).
    pub fn seventy_thirty() -> SkewedSpec {
        SkewedSpec {
            low_min: 1,
            low_max: 3,
            high: vec![(8, 1.0)],
            high_fraction: 0.3,
        }
    }

    /// "50-50": 50% degree 1–3, 50% degree 5 or 6, weighted so the average
    /// is 3.8 (high-class mean 5.6).
    pub fn fifty_fifty() -> SkewedSpec {
        SkewedSpec {
            low_min: 1,
            low_max: 3,
            high: vec![(5, 0.4), (6, 0.6)],
            high_fraction: 0.5,
        }
    }

    /// "85-15": 85% degree 1–3, 15% degree 14 (average 3.8).
    pub fn eighty_five_fifteen() -> SkewedSpec {
        SkewedSpec {
            low_min: 1,
            low_max: 3,
            high: vec![(14, 1.0)],
            high_fraction: 0.15,
        }
    }

    /// The dense "50-50" of Fig 5: high degrees 13 or 14 (high-class mean
    /// 13.2), average degree 7.6.
    pub fn fifty_fifty_dense() -> SkewedSpec {
        SkewedSpec {
            low_min: 1,
            low_max: 3,
            high: vec![(13, 0.8), (14, 0.2)],
            high_fraction: 0.5,
        }
    }

    /// Expected mean degree of the distribution.
    pub fn mean(&self) -> f64 {
        let low_mean = f64::from(self.low_min + self.low_max) / 2.0;
        let wsum: f64 = self.high.iter().map(|&(_, w)| w).sum();
        let high_mean: f64 = self
            .high
            .iter()
            .map(|&(d, w)| f64::from(d) * w)
            .sum::<f64>()
            / wsum;
        (1.0 - self.high_fraction) * low_mean + self.high_fraction * high_mean
    }

    /// The smallest degree any high-class node can get (used by the
    /// degree-dependent MRAI experiments to classify nodes).
    pub fn min_high_degree(&self) -> u32 {
        self.high.iter().map(|&(d, _)| d).min().unwrap_or(0)
    }

    /// Samples a degree sequence of length `n`.
    ///
    /// Exactly `round(high_fraction · n)` entries are high-class; positions
    /// are shuffled. The sum is made even (a requirement for a degree
    /// sequence to be realizable) by bumping one low-class entry.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed: `low_min > low_max`, `low_min == 0`,
    /// empty `high` list, or `high_fraction` outside `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u32> {
        assert!(self.low_min <= self.low_max, "low range out of order");
        assert!(self.low_min >= 1, "degree-0 nodes cannot be connected");
        assert!(!self.high.is_empty(), "high choices empty");
        assert!(
            (0.0..=1.0).contains(&self.high_fraction),
            "high_fraction {} outside [0, 1]",
            self.high_fraction
        );
        let num_high = (self.high_fraction * n as f64).round() as usize;
        let wsum: f64 = self.high.iter().map(|&(_, w)| w).sum();
        let mut degrees: Vec<u32> = Vec::with_capacity(n);
        for _ in 0..num_high {
            let mut pick = rng.gen_range(0.0..wsum);
            let mut chosen = self.high[self.high.len() - 1].0;
            for &(d, w) in &self.high {
                if pick < w {
                    chosen = d;
                    break;
                }
                pick -= w;
            }
            degrees.push(chosen);
        }
        for _ in num_high..n {
            degrees.push(rng.gen_range(self.low_min..=self.low_max));
        }
        shuffle(&mut degrees, rng);
        make_sum_even(&mut degrees);
        degrees
    }
}

/// CAIDA-like AS-level degree distribution for Internet-scale topologies
/// (the ROADMAP's 10k–70k-AS target): a tiered stub/transit mix with a
/// power-law transit tail and overall average degree ≈ 4.2, the shape of
/// the measured AS graph.
///
/// * **Stubs** (82% of ASes) have degree 1–3 — edge networks, single- or
///   multi-homed to a few providers. This is the low class, so the
///   degree-dependent MRAI experiments classify exactly the transit tier
///   as "high" ([`SkewedSpec::min_high_degree`] = 4).
/// * **Transit** ASes (18%) draw from a truncated power law over
///   `4..=max`, where `max` grows with `n` (≈ 4·√n, capped at `n/4` — a
///   hub scale the configuration-model construction still realizes
///   reliably) and the exponent is solved by bisection so the overall
///   mean lands on 4.2.
///
/// Below roughly 300 ASes the truncation is too tight for the transit
/// tier to reach its share of the 4.2 target; the exponent saturates and
/// the mean falls short. The preset asserts only `n >= 64` so small
/// smoke tests still run, but it is meant for thousands of ASes.
///
/// ```
/// use bgpsim_topology::degree::caida_like;
///
/// let spec = caida_like(10_000);
/// assert!((spec.mean() - 4.2).abs() < 0.05);
/// assert_eq!(spec.min_high_degree(), 4);
/// ```
///
/// # Panics
///
/// Panics if `n < 64` — too few ASes to tier.
pub fn caida_like(n: usize) -> SkewedSpec {
    assert!(n >= 64, "caida_like needs a population to tier (n >= 64)");
    const STUB_FRACTION: f64 = 0.82;
    const TARGET_MEAN: f64 = 4.2;
    let stub_mean = 2.0; // uniform 1..=3
    let transit_fraction = 1.0 - STUB_FRACTION;
    let transit_mean = (TARGET_MEAN - STUB_FRACTION * stub_mean) / transit_fraction;
    let max_degree = ((4.0 * (n as f64).sqrt()).round() as u32)
        .min(n as u32 / 4)
        .max(8);
    // Mean of the truncated power law over 4..=max_degree decreases
    // monotonically in the exponent; bisect to hit the transit target.
    let mean_for = |gamma: f64| {
        let (mut num, mut den) = (0.0, 0.0);
        for d in 4..=max_degree {
            let w = f64::from(d).powf(-gamma);
            num += f64::from(d) * w;
            den += w;
        }
        num / den
    };
    let (mut lo, mut hi) = (0.0_f64, 8.0_f64);
    for _ in 0..100 {
        let mid = (lo + hi) / 2.0;
        if mean_for(mid) > transit_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let gamma = (lo + hi) / 2.0;
    SkewedSpec {
        low_min: 1,
        low_max: 3,
        high: (4..=max_degree)
            .map(|d| (d, f64::from(d).powf(-gamma)))
            .collect(),
        high_fraction: transit_fraction,
    }
}

/// A degree distribution specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DegreeSpec {
    /// Two-class skewed distribution ([`SkewedSpec`]).
    Skewed(SkewedSpec),
    /// Truncated power law: `P(d) ∝ d^-gamma` for `1 ≤ d ≤ max_degree`.
    PowerLaw {
        /// Exponent (> 1).
        gamma: f64,
        /// Largest degree allowed.
        max_degree: u32,
    },
    /// Uniform on `min..=max`.
    Uniform {
        /// Smallest degree.
        min: u32,
        /// Largest degree.
        max: u32,
    },
    /// An explicit sequence (cycled/truncated to the requested length).
    Explicit(Vec<u32>),
}

impl DegreeSpec {
    /// Expected mean degree.
    ///
    /// # Panics
    ///
    /// Panics on malformed specs (e.g. empty explicit sequence).
    pub fn mean(&self) -> f64 {
        match self {
            DegreeSpec::Skewed(s) => s.mean(),
            DegreeSpec::PowerLaw { gamma, max_degree } => {
                let (mut num, mut den) = (0.0, 0.0);
                for d in 1..=*max_degree {
                    let p = f64::from(d).powf(-gamma);
                    num += f64::from(d) * p;
                    den += p;
                }
                num / den
            }
            DegreeSpec::Uniform { min, max } => f64::from(min + max) / 2.0,
            DegreeSpec::Explicit(seq) => {
                assert!(!seq.is_empty(), "explicit degree sequence is empty");
                seq.iter().map(|&d| f64::from(d)).sum::<f64>() / seq.len() as f64
            }
        }
    }

    /// Samples a degree sequence of length `n` (sum forced even).
    ///
    /// # Panics
    ///
    /// Panics on malformed specs; see [`SkewedSpec::sample`] for the skewed
    /// case. `PowerLaw` requires `max_degree ≥ 1`; `Uniform` requires
    /// `1 ≤ min ≤ max`; `Explicit` requires a non-empty sequence.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u32> {
        let mut degrees: Vec<u32> = match self {
            DegreeSpec::Skewed(s) => return s.sample(n, rng),
            DegreeSpec::PowerLaw { gamma, max_degree } => {
                assert!(*max_degree >= 1, "max_degree must be at least 1");
                // Inverse-CDF sampling over the discrete truncated power law.
                let weights: Vec<f64> = (1..=*max_degree)
                    .map(|d| f64::from(d).powf(-gamma))
                    .collect();
                let total: f64 = weights.iter().sum();
                (0..n)
                    .map(|_| {
                        let mut pick = rng.gen_range(0.0..total);
                        for (i, w) in weights.iter().enumerate() {
                            if pick < *w {
                                return i as u32 + 1;
                            }
                            pick -= w;
                        }
                        *max_degree
                    })
                    .collect()
            }
            DegreeSpec::Uniform { min, max } => {
                assert!(*min >= 1 && min <= max, "uniform degree bounds invalid");
                (0..n).map(|_| rng.gen_range(*min..=*max)).collect()
            }
            DegreeSpec::Explicit(seq) => {
                assert!(!seq.is_empty(), "explicit degree sequence is empty");
                (0..n).map(|i| seq[i % seq.len()]).collect()
            }
        };
        make_sum_even(&mut degrees);
        degrees
    }
}

/// The Internet-derived degree distribution used for the paper's "realistic"
/// topologies (§4.1): a power law truncated at `max_degree` (the paper uses
/// 40 for 120-AS networks) with exponent solved so the mean degree is
/// `target_mean` (paper: ≈ 3.4, which also puts ~70% of ASes below degree 4).
///
/// ```
/// use bgpsim_topology::degree::internet_like;
///
/// let spec = internet_like(40, 3.4);
/// assert!((spec.mean() - 3.4).abs() < 0.01);
/// ```
///
/// # Panics
///
/// Panics if `target_mean` is not achievable for the given truncation
/// (it must lie strictly between 1 and `(1 + max_degree) / 2`).
pub fn internet_like(max_degree: u32, target_mean: f64) -> DegreeSpec {
    assert!(max_degree >= 2, "max_degree must allow some spread");
    assert!(
        target_mean > 1.0 && target_mean < f64::from(1 + max_degree) / 2.0,
        "target mean {target_mean} out of achievable range"
    );
    // Mean degree decreases monotonically in gamma; bisect.
    let mean_for = |gamma: f64| DegreeSpec::PowerLaw { gamma, max_degree }.mean();
    let (mut lo, mut hi) = (0.0_f64, 8.0_f64);
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if mean_for(mid) > target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    DegreeSpec::PowerLaw {
        gamma: (lo + hi) / 2.0,
        max_degree,
    }
}

/// Whether `degrees` is *graphical* — realizable as a simple undirected
/// graph — per the Erdős–Gallai theorem.
///
/// Power-law samples over few nodes are frequently non-graphical (e.g. two
/// degree-40 hubs among 60 nodes of mostly degree 1); generators use this
/// to resample cheaply instead of failing a doomed construction.
///
/// ```
/// use bgpsim_topology::degree::is_graphical;
///
/// assert!(is_graphical(&[2, 2, 2]));           // triangle
/// assert!(is_graphical(&[4, 1, 1, 1, 1]));     // star
/// assert!(!is_graphical(&[3, 1, 1]));          // odd sum
/// assert!(!is_graphical(&[3, 3, 1, 1]));       // Erdős–Gallai violation
/// assert!(!is_graphical(&[5, 1, 1, 1, 1]));    // degree exceeds n-1
/// ```
pub fn is_graphical(degrees: &[u32]) -> bool {
    let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
    if sum % 2 == 1 {
        return false;
    }
    let mut sorted: Vec<u64> = degrees.iter().map(|&d| u64::from(d)).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let n = sorted.len() as u64;
    if sorted.first().is_some_and(|&d| d >= n) {
        return false;
    }
    let mut lhs = 0u64;
    for k in 1..=sorted.len() {
        lhs += sorted[k - 1];
        let rhs: u64 =
            k as u64 * (k as u64 - 1) + sorted[k..].iter().map(|&d| d.min(k as u64)).sum::<u64>();
        if lhs > rhs {
            return false;
        }
    }
    true
}

/// Fisher–Yates shuffle (kept local to avoid a `rand` feature dependency).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Degree sequences must have an even sum to be realizable; bump the first
/// smallest entry if needed.
fn make_sum_even(degrees: &mut [u32]) {
    if degrees.iter().map(|&d| u64::from(d)).sum::<u64>() % 2 == 1 {
        if let Some(min_idx) = (0..degrees.len()).min_by_key(|&i| degrees[i]) {
            degrees[min_idx] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of(degrees: &[u32]) -> f64 {
        degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / degrees.len() as f64
    }

    #[test]
    fn preset_means_match_paper() {
        assert!((SkewedSpec::seventy_thirty().mean() - 3.8).abs() < 1e-9);
        assert!((SkewedSpec::fifty_fifty().mean() - 3.8).abs() < 1e-9);
        assert!((SkewedSpec::eighty_five_fifteen().mean() - 3.8).abs() < 1e-9);
        assert!((SkewedSpec::fifty_fifty_dense().mean() - 7.6).abs() < 1e-9);
    }

    #[test]
    fn caida_like_hits_internet_shape() {
        for n in [1_000, 10_000, 70_000] {
            let spec = caida_like(n);
            assert!(
                (spec.mean() - 4.2).abs() < 0.05,
                "n={n}: mean {} off the 4.2 target",
                spec.mean()
            );
            assert_eq!(spec.min_high_degree(), 4, "transit tier starts at 4");
        }
        // The hub scale grows with the AS count.
        let small = caida_like(1_000).high.last().unwrap().0;
        let large = caida_like(70_000).high.last().unwrap().0;
        assert!(small < large, "hub cap must scale: {small} !< {large}");
    }

    #[test]
    fn caida_like_sample_is_stub_heavy() {
        let mut rng = SmallRng::seed_from_u64(13);
        let degrees = caida_like(10_000).sample(10_000, &mut rng);
        let stubs = degrees.iter().filter(|&&d| d <= 3).count() as f64 / 10_000.0;
        assert!(
            (0.79..=0.85).contains(&stubs),
            "stub fraction {stubs} should be ~0.82"
        );
        let m = mean_of(&degrees);
        assert!((m - 4.2).abs() < 0.4, "sampled mean {m} off target");
        assert_eq!(
            degrees.iter().map(|&d| u64::from(d)).sum::<u64>() % 2,
            0,
            "degree sum must be even"
        );
    }

    #[test]
    #[should_panic(expected = "population to tier")]
    fn caida_like_rejects_tiny_populations() {
        let _ = caida_like(10);
    }

    #[test]
    fn skewed_sample_has_exact_class_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = SkewedSpec::seventy_thirty();
        let degrees = spec.sample(120, &mut rng);
        assert_eq!(degrees.len(), 120);
        // 36 high-degree (8) nodes; the even-sum fix can bump one low node.
        let high = degrees.iter().filter(|&&d| d == 8).count();
        assert_eq!(high, 36);
        let low_ok = degrees.iter().filter(|&&d| (1..=4).contains(&d)).count();
        assert_eq!(low_ok + high, 120);
        assert!((mean_of(&degrees) - 3.8).abs() < 0.3);
    }

    #[test]
    fn skewed_sample_sum_is_even() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [3, 10, 59, 120, 241] {
            let degrees = SkewedSpec::eighty_five_fifteen().sample(n, &mut rng);
            let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
            assert_eq!(sum % 2, 0, "odd degree sum for n={n}");
        }
    }

    #[test]
    fn min_high_degree_reported() {
        assert_eq!(SkewedSpec::fifty_fifty().min_high_degree(), 5);
        assert_eq!(SkewedSpec::seventy_thirty().min_high_degree(), 8);
    }

    #[test]
    fn power_law_sample_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = DegreeSpec::PowerLaw {
            gamma: 2.2,
            max_degree: 40,
        };
        let degrees = spec.sample(5000, &mut rng);
        assert!(degrees.iter().all(|&d| (1..=40).contains(&d)));
        // Heavy head: most mass at low degree.
        let low = degrees.iter().filter(|&&d| d < 4).count();
        assert!(low as f64 / 5000.0 > 0.6, "power law not head-heavy");
    }

    #[test]
    fn internet_like_hits_target_mean() {
        let spec = internet_like(40, 3.4);
        assert!((spec.mean() - 3.4).abs() < 0.01);
        let mut rng = SmallRng::seed_from_u64(11);
        let degrees = spec.sample(20_000, &mut rng);
        let m = mean_of(&degrees);
        assert!((m - 3.4).abs() < 0.15, "sampled mean {m} off target");
        let below4 = degrees.iter().filter(|&&d| d < 4).count() as f64 / 20_000.0;
        assert!(
            (0.6..0.85).contains(&below4),
            "fraction below degree 4 = {below4}, paper reports ~0.7"
        );
    }

    #[test]
    fn uniform_and_explicit_sample() {
        let mut rng = SmallRng::seed_from_u64(5);
        let u = DegreeSpec::Uniform { min: 2, max: 4 }.sample(100, &mut rng);
        assert!(u.iter().all(|&d| (2..=5).contains(&d))); // +1 possible from even-sum fix
        let e = DegreeSpec::Explicit(vec![2, 4]).sample(5, &mut rng);
        assert_eq!(e.iter().map(|&d| u64::from(d)).sum::<u64>() % 2, 0);
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn explicit_mean() {
        assert_eq!(DegreeSpec::Explicit(vec![2, 4]).mean(), 3.0);
        assert_eq!(DegreeSpec::Uniform { min: 1, max: 3 }.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of achievable range")]
    fn internet_like_rejects_silly_mean() {
        let _ = internet_like(4, 10.0);
    }

    #[test]
    #[should_panic(expected = "high_fraction")]
    fn skewed_rejects_bad_fraction() {
        let mut rng = SmallRng::seed_from_u64(5);
        let spec = SkewedSpec {
            high_fraction: 1.5,
            ..SkewedSpec::seventy_thirty()
        };
        let _ = spec.sample(10, &mut rng);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = SkewedSpec::seventy_thirty().sample(50, &mut SmallRng::seed_from_u64(9));
        let b = SkewedSpec::seventy_thirty().sample(50, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
