//! Full-table prefix-block placement.
//!
//! Real routing tables are not one prefix per AS: a handful of large
//! networks originate thousands of prefixes while the long tail announces
//! one or two, and the distribution of per-AS table share is heavy-tailed
//! (Zipf-like over the origination rank). This module turns a target table
//! size into a per-AS *block plan* — how many prefixes each AS originates
//! and which contiguous CIDR block they are carved from — without touching
//! any RNG stream: the plan is a pure function of `(as_count, table_size,
//! skew)`, so workloads stay bit-reproducible and the sharded engine sees
//! the identical origination schedule.
//!
//! Blocks are carved address-contiguously in AS order out of `10.0.0.0/8`.
//! Because the generators place ASes on the grid in id order, contiguous
//! AS ranges are spatially meaningful, and a contiguous *regional* failure
//! withdraws contiguous address space — which is what makes burst
//! withdrawals aggregatable and is how real allocation policy behaves
//! (providers announce covering aggregates for their region).

/// How per-AS prefix counts are skewed across the table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrefixPlan {
    /// Total prefixes across every AS (each AS gets at least one, so the
    /// realized total is `max(total, as_count)`).
    pub total: u32,
    /// Zipf exponent over the AS rank: 0.0 = uniform, ~1.0 = Internet-like
    /// (a few ASes own most of the table).
    pub skew: f64,
}

impl PrefixPlan {
    /// An Internet-like plan: `total` prefixes, Zipf exponent 1.0.
    pub fn internet_like(total: u32) -> PrefixPlan {
        PrefixPlan { total, skew: 1.0 }
    }

    /// A uniform plan: every AS originates `total / as_count` prefixes.
    pub fn uniform(total: u32) -> PrefixPlan {
        PrefixPlan { total, skew: 0.0 }
    }

    /// The per-AS prefix counts for `as_count` ASes: deterministic,
    /// power-law-skewed by rank, each AS ≥ 1, summing to
    /// `max(self.total, as_count)`.
    ///
    /// Rank `r` (0-based AS position) gets a share ∝ `(r + 1)^-skew`;
    /// rounding residue is handed out largest-share-first so the sum is
    /// exact. With `skew = 0` this degenerates to an even split, which is
    /// how the legacy `prefixes_per_as = k` workloads are reproduced
    /// (`total = k * as_count`).
    pub fn block_sizes(&self, as_count: usize) -> Vec<u32> {
        if as_count == 0 {
            return Vec::new();
        }
        let total = self.total.max(as_count as u32);
        let weights: Vec<f64> = (0..as_count)
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.skew))
            .collect();
        let wsum: f64 = weights.iter().sum();
        // Floor of the ideal share, min 1, then distribute the rounding
        // residue by largest fractional part (rank-ordered, so ties break
        // low-rank first — deterministic).
        let ideal: Vec<f64> = weights.iter().map(|w| w / wsum * total as f64).collect();
        let mut sizes: Vec<u32> = ideal.iter().map(|&x| (x.floor() as u32).max(1)).collect();
        let mut assigned: u32 = sizes.iter().sum();
        // Over-assignment can only come from the `.max(1)` floor of tail
        // ASes; shave the largest blocks back down (never below 1).
        while assigned > total {
            let i = (0..as_count)
                .max_by(|&a, &b| sizes[a].cmp(&sizes[b]))
                .expect("as_count > 0");
            if sizes[i] <= 1 {
                break;
            }
            sizes[i] -= 1;
            assigned -= 1;
        }
        if assigned < total {
            let mut order: Vec<usize> = (0..as_count).collect();
            order.sort_by(|&a, &b| {
                let fa = ideal[a] - ideal[a].floor();
                let fb = ideal[b] - ideal[b].floor();
                fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut i = 0;
            while assigned < total {
                sizes[order[i % as_count]] += 1;
                assigned += 1;
                i += 1;
            }
        }
        debug_assert_eq!(sizes.iter().sum::<u32>(), total);
        sizes
    }

    /// The contiguous CIDR block plan: for each AS (in id order) the base
    /// address of its block inside `10.0.0.0/8` and its prefix count. The
    /// per-prefix subnets are /32-spaced `base + j` addresses — the
    /// interning layer treats each as a distinct destination, and the
    /// address contiguity is what regional bursts exploit.
    pub fn blocks(&self, as_count: usize) -> Vec<PrefixBlock> {
        let sizes = self.block_sizes(as_count);
        let mut base: u32 = 0x0A00_0000; // 10.0.0.0
        sizes
            .into_iter()
            .map(|count| {
                let b = PrefixBlock { base, count };
                base = base.wrapping_add(count);
                b
            })
            .collect()
    }
}

/// One AS's contiguous address block: `count` /32-spaced destinations
/// starting at `base`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixBlock {
    /// First address of the block.
    pub base: u32,
    /// Number of destinations in the block.
    pub count: u32,
}

impl PrefixBlock {
    /// The `j`-th destination address of the block.
    pub fn addr(&self, j: u32) -> u32 {
        debug_assert!(j < self.count);
        self.base.wrapping_add(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan_splits_evenly() {
        let sizes = PrefixPlan::uniform(120).block_sizes(30);
        assert_eq!(sizes.len(), 30);
        assert_eq!(sizes.iter().sum::<u32>(), 120);
        assert!(sizes.iter().all(|&s| s == 4), "uniform split: {sizes:?}");
    }

    #[test]
    fn skewed_plan_is_heavy_tailed_and_exact() {
        let sizes = PrefixPlan::internet_like(10_000).block_sizes(100);
        assert_eq!(sizes.iter().sum::<u32>(), 10_000);
        assert!(sizes[0] > sizes[50], "rank 0 outweighs rank 50: {sizes:?}");
        assert!(sizes.iter().all(|&s| s >= 1), "every AS originates");
        // Zipf-1 head share: rank 0 holds ~1/H(100) ≈ 19% of the table.
        assert!(
            sizes[0] > 1_500,
            "head AS should own a large share, got {}",
            sizes[0]
        );
    }

    #[test]
    fn every_as_gets_at_least_one_even_when_total_is_small() {
        let sizes = PrefixPlan::internet_like(3).block_sizes(10);
        assert_eq!(sizes.iter().sum::<u32>(), 10, "floor lifts the total");
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn plan_is_deterministic() {
        let a = PrefixPlan::internet_like(54_321).block_sizes(977);
        let b = PrefixPlan::internet_like(54_321).block_sizes(977);
        assert_eq!(a, b);
    }

    #[test]
    fn blocks_are_contiguous_in_as_order() {
        let blocks = PrefixPlan::internet_like(1_000).blocks(40);
        assert_eq!(blocks.len(), 40);
        assert_eq!(blocks[0].base, 0x0A00_0000);
        for w in blocks.windows(2) {
            assert_eq!(
                w[1].base,
                w[0].base + w[0].count,
                "blocks must tile the space"
            );
        }
        let last = blocks.last().expect("non-empty");
        assert_eq!(last.base + last.count - blocks[0].base, 1_000);
        assert_eq!(blocks[3].addr(0), blocks[2].base + blocks[2].count);
    }
}
