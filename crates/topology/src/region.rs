//! Failure-region selection.
//!
//! The paper models large-scale failures as *contiguous areas* of the grid
//! — "usually the center of the grid to avoid edge effects" (§3.1) — in
//! which **all routers and links fail** (§3.2). [`FailureSpec`] also offers
//! the scattered and edge variants the authors studied in prior work, for
//! ablations.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Point, RouterId, Topology};
use crate::GRID_SIDE;

/// What fails, and where.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FailureSpec {
    /// The `fraction` of routers nearest the grid centre fail — the paper's
    /// contiguous central-area failure.
    CenterFraction(f64),
    /// The `fraction` of routers nearest the grid corner (0, 0) fail — the
    /// edge-of-grid variant.
    CornerFraction(f64),
    /// A uniformly random `fraction` of routers fail (scattered failure).
    RandomFraction(f64),
    /// An explicit router set fails.
    Explicit(Vec<RouterId>),
}

impl FailureSpec {
    /// Resolves the spec against a topology, returning the sorted list of
    /// failed routers.
    ///
    /// Fractions select `round(fraction · n)` routers; nearest-first with
    /// ties broken by router id, so a given topology and spec always yield
    /// the same region.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `[0, 1]` or an explicit id is out of
    /// range.
    pub fn resolve<R: Rng + ?Sized>(&self, topo: &Topology, rng: &mut R) -> Vec<RouterId> {
        match self {
            FailureSpec::CenterFraction(f) => {
                nearest_fraction(topo, Point::new(GRID_SIDE / 2.0, GRID_SIDE / 2.0), *f)
            }
            FailureSpec::CornerFraction(f) => nearest_fraction(topo, Point::new(0.0, 0.0), *f),
            FailureSpec::RandomFraction(f) => {
                let k = count_for_fraction(topo.num_routers(), *f);
                let mut ids: Vec<RouterId> = topo.router_ids().collect();
                // partial Fisher–Yates: the first k entries are the sample
                for i in 0..k {
                    let j = rng.gen_range(i..ids.len());
                    ids.swap(i, j);
                }
                let mut out: Vec<RouterId> = ids[..k].to_vec();
                out.sort();
                out
            }
            FailureSpec::Explicit(ids) => {
                let n = topo.num_routers();
                for id in ids {
                    assert!(id.index() < n, "failed router {id} out of range");
                }
                let mut out = ids.clone();
                out.sort();
                out.dedup();
                out
            }
        }
    }

    /// The nominal failed fraction (explicit sets report `NaN`-free 0).
    pub fn fraction(&self) -> f64 {
        match self {
            FailureSpec::CenterFraction(f)
            | FailureSpec::CornerFraction(f)
            | FailureSpec::RandomFraction(f) => *f,
            FailureSpec::Explicit(_) => 0.0,
        }
    }
}

/// The `round(fraction · |E|)` links whose midpoints are nearest the grid
/// centre — the link-only counterpart of [`FailureSpec::CenterFraction`].
/// The paper sets link-only large-scale failures aside as unlikely (§3.2);
/// this selector exists to quantify the difference.
pub fn central_link_fraction(topo: &Topology, fraction: f64) -> Vec<crate::graph::Edge> {
    let k = count_for_fraction(topo.num_edges(), fraction);
    let center = Point::new(GRID_SIDE / 2.0, GRID_SIDE / 2.0);
    let mut edges: Vec<crate::graph::Edge> = topo.edges().to_vec();
    edges.sort_by(|x, y| {
        let mid = |e: &crate::graph::Edge| {
            let (a, b) = (topo.router(e.a()).pos, topo.router(e.b()).pos);
            Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0).distance(center)
        };
        mid(x)
            .partial_cmp(&mid(y))
            .expect("finite distances")
            .then(x.cmp(y))
    });
    edges.truncate(k);
    edges.sort();
    edges
}

fn count_for_fraction(n: usize, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "failure fraction {fraction} outside [0, 1]"
    );
    (fraction * n as f64).round() as usize
}

fn nearest_fraction(topo: &Topology, origin: Point, fraction: f64) -> Vec<RouterId> {
    let k = count_for_fraction(topo.num_routers(), fraction);
    let mut ids: Vec<RouterId> = topo.router_ids().collect();
    ids.sort_by(|&a, &b| {
        let da = topo.router(a).pos.distance(origin);
        let db = topo.router(b).pos.distance(origin);
        da.partial_cmp(&db)
            .expect("distances are finite")
            .then(a.cmp(&b))
    });
    let mut out: Vec<RouterId> = ids[..k].to_vec();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::SkewedSpec;
    use crate::generators::skewed_topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn topo120(seed: u64) -> Topology {
        let mut rng = SmallRng::seed_from_u64(seed);
        skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
    }

    #[test]
    fn center_fraction_selects_exact_count_near_center() {
        let topo = topo120(1);
        let mut rng = SmallRng::seed_from_u64(0);
        let failed = FailureSpec::CenterFraction(0.10).resolve(&topo, &mut rng);
        assert_eq!(failed.len(), 12);
        let center = Point::new(500.0, 500.0);
        let max_failed_dist = failed
            .iter()
            .map(|&r| topo.router(r).pos.distance(center))
            .fold(0.0_f64, f64::max);
        let min_surviving_dist = topo
            .router_ids()
            .filter(|r| !failed.contains(r))
            .map(|r| topo.router(r).pos.distance(center))
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_failed_dist <= min_surviving_dist,
            "failure region is not the contiguous nearest set"
        );
    }

    #[test]
    fn corner_fraction_hugs_origin() {
        let topo = topo120(2);
        let mut rng = SmallRng::seed_from_u64(0);
        let failed = FailureSpec::CornerFraction(0.05).resolve(&topo, &mut rng);
        assert_eq!(failed.len(), 6);
        for r in &failed {
            let p = topo.router(*r).pos;
            assert!(
                p.x < 700.0 && p.y < 700.0,
                "corner failure strayed to {p:?}"
            );
        }
    }

    #[test]
    fn random_fraction_count_and_determinism() {
        let topo = topo120(3);
        let a = FailureSpec::RandomFraction(0.2).resolve(&topo, &mut SmallRng::seed_from_u64(5));
        let b = FailureSpec::RandomFraction(0.2).resolve(&topo, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a.len(), 24);
        assert_eq!(a, b);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "output not sorted/deduped"
        );
    }

    #[test]
    fn explicit_sorted_and_deduped() {
        let topo = topo120(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let spec =
            FailureSpec::Explicit(vec![RouterId::new(5), RouterId::new(2), RouterId::new(5)]);
        assert_eq!(
            spec.resolve(&topo, &mut rng),
            vec![RouterId::new(2), RouterId::new(5)]
        );
    }

    #[test]
    fn zero_and_full_fractions() {
        let topo = topo120(5);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(FailureSpec::CenterFraction(0.0)
            .resolve(&topo, &mut rng)
            .is_empty());
        assert_eq!(
            FailureSpec::CenterFraction(1.0)
                .resolve(&topo, &mut rng)
                .len(),
            120
        );
    }

    #[test]
    fn central_links_are_near_the_center() {
        let topo = topo120(9);
        let links = central_link_fraction(&topo, 0.10);
        assert_eq!(
            links.len(),
            (0.10 * topo.num_edges() as f64).round() as usize
        );
        let center = Point::new(500.0, 500.0);
        for e in &links {
            let (a, b) = (topo.router(e.a()).pos, topo.router(e.b()).pos);
            let mid = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
            assert!(
                mid.distance(center) < 600.0,
                "link far from centre selected"
            );
        }
        // Deterministic.
        assert_eq!(links, central_link_fraction(&topo, 0.10));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let topo = topo120(6);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = FailureSpec::CenterFraction(1.5).resolve(&topo, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        let topo = topo120(7);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = FailureSpec::Explicit(vec![RouterId::new(999)]).resolve(&topo, &mut rng);
    }
}
