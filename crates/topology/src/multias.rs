//! Multi-router-per-AS topologies (paper §3.1, last paragraph; used by the
//! "realistic" experiments of §4.1/§4.4 and Fig 13).
//!
//! The paper's recipe:
//!
//! * the number of routers per AS (1–100) follows a heavy-tailed
//!   distribution;
//! * the geographic extent of an AS is proportional to its size (perfect
//!   correlation assumed, per Lakhina et al. \[19\]);
//! * the highest inter-AS degrees are assigned to the largest ASes
//!   (Tangmunarunkit et al. \[20\]);
//! * inter-AS degrees come from an Internet-derived distribution truncated
//!   at degree 40 (average ≈ 3.4).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::degree::DegreeSpec;
use crate::graph::{AsId, Point, Router, RouterId, Topology, TopologyError};
use crate::placement::{place, DensityModel};
use crate::GRID_SIDE;

/// Configuration for multi-router-per-AS generation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiAsConfig {
    /// Number of ASes.
    pub num_ases: usize,
    /// Largest allowed AS size (paper: 100 routers).
    pub max_as_size: u32,
    /// Pareto shape for AS sizes; smaller ⇒ heavier tail. The paper only
    /// says "heavy tailed"; 1.2 gives a realistic mix of stubs and giants.
    pub size_alpha: f64,
    /// Inter-AS degree distribution (paper: Internet-derived, ≤ 40).
    pub inter_as_degrees: DegreeSpec,
    /// Extra intra-AS links per router beyond the spanning tree, as a
    /// fraction of the AS size (0.5 ⇒ size/2 extra links).
    pub intra_extra_frac: f64,
}

impl MultiAsConfig {
    /// The paper's realistic-topology configuration: 120 ASes, sizes 1–100,
    /// Internet-like inter-AS degrees truncated at 40 with mean ≈ 3.4.
    pub fn realistic(num_ases: usize) -> MultiAsConfig {
        MultiAsConfig {
            num_ases,
            max_as_size: 100,
            size_alpha: 1.2,
            inter_as_degrees: crate::degree::internet_like(40, 3.4),
            intra_extra_frac: 0.5,
        }
    }
}

/// Generates a multi-router-per-AS topology.
///
/// # Errors
///
/// Returns [`TopologyError::GenerationFailed`] if the AS-level graph could
/// not be realized (see [`crate::generators::from_degree_sequence`]).
///
/// # Example
///
/// ```
/// use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let topo = generate_multi_as(&MultiAsConfig::realistic(40), &mut rng)?;
/// assert_eq!(topo.num_ases(), 40);
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn generate_multi_as<R: Rng + ?Sized>(
    cfg: &MultiAsConfig,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    if cfg.num_ases == 0 {
        return Err(TopologyError::Empty);
    }
    let num_ases = cfg.num_ases;

    // 1. AS sizes: bounded Pareto on [1, max_as_size].
    let sizes: Vec<u32> = (0..num_ases)
        .map(|_| bounded_pareto(1.0, f64::from(cfg.max_as_size), cfg.size_alpha, rng))
        .collect();

    // 2–3. Inter-AS degree sequence (largest degree → largest AS) and the
    //    AS-level graph. Power-law samples over few ASes are often
    //    non-graphical (resample on the Erdős–Gallai check), and graphical-
    //    but-extreme sequences can still defeat the constructive repair —
    //    resample those too.
    let centers = place(num_ases, DensityModel::Uniform, rng);
    let mut by_size: Vec<usize> = (0..num_ases).collect();
    by_size.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
    let mut as_graph = None;
    for _ in 0..50 {
        let mut degrees = Vec::new();
        let mut found = false;
        for _ in 0..200 {
            degrees = cfg.inter_as_degrees.sample(num_ases, rng);
            // Cap AS-level degree at num_ases - 1 (simple graph) and floor
            // at 1 (every AS must be reachable).
            for d in &mut degrees {
                *d = (*d).min(num_ases as u32 - 1).max(1);
            }
            if degrees.iter().map(|&d| u64::from(d)).sum::<u64>() % 2 == 1 {
                // Restore even sum after capping.
                let i = (0..degrees.len())
                    .min_by_key(|&i| degrees[i])
                    .expect("non-empty");
                degrees[i] += 1;
            }
            if crate::degree::is_graphical(&degrees) {
                found = true;
                break;
            }
        }
        if !found {
            continue;
        }
        let mut sorted_degrees = degrees.clone();
        sorted_degrees.sort_unstable_by_key(|&d| std::cmp::Reverse(d));
        let mut as_degree = vec![0u32; num_ases];
        for (rank, &as_idx) in by_size.iter().enumerate() {
            as_degree[as_idx] = sorted_degrees[rank];
        }
        if let Ok(g) = crate::generators::from_degree_sequence(&as_degree, &centers, rng) {
            as_graph = Some(g);
            break;
        }
    }
    let Some(as_graph) = as_graph else {
        return Err(TopologyError::GenerationFailed(
            "no realizable inter-AS degree sequence found".into(),
        ));
    };

    // 4. Routers: per-AS region with side proportional to sqrt(size) so
    //    *area* scales with size; routers uniform inside, clamped to grid.
    let mut routers: Vec<Router> = Vec::new();
    let mut as_router_ids: Vec<Vec<RouterId>> = vec![Vec::new(); num_ases];
    let side_per_router = GRID_SIDE / 10.0; // extent scale: 100 routers ⇒ full grid
    for (as_idx, (&size, center)) in sizes.iter().zip(&centers).enumerate() {
        let side = side_per_router * f64::from(size).sqrt();
        for _ in 0..size {
            let x = (center.x + rng.gen_range(-side / 2.0..=side / 2.0)).clamp(0.0, GRID_SIDE);
            let y = (center.y + rng.gen_range(-side / 2.0..=side / 2.0)).clamp(0.0, GRID_SIDE);
            let id = RouterId::new(routers.len() as u32);
            routers.push(Router {
                as_id: AsId::new(as_idx as u32),
                pos: Point::new(x, y),
            });
            as_router_ids[as_idx].push(id);
        }
    }

    // 5. Intra-AS links: random spanning tree + extra random links.
    let mut edges: Vec<(RouterId, RouterId)> = Vec::new();
    let mut edge_set: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let norm = |a: RouterId, b: RouterId| {
        let (x, y) = (a.index() as u32, b.index() as u32);
        if x < y {
            (x, y)
        } else {
            (y, x)
        }
    };
    for members in &as_router_ids {
        // Random-permutation tree: attach each node to a random earlier one.
        for (i, &m) in members.iter().enumerate().skip(1) {
            let parent = members[rng.gen_range(0..i)];
            if edge_set.insert(norm(parent, m)) {
                edges.push((parent, m));
            }
        }
        let extra = (members.len() as f64 * cfg.intra_extra_frac).floor() as usize;
        for _ in 0..extra {
            if members.len() < 3 {
                break;
            }
            let a = members[rng.gen_range(0..members.len())];
            let b = members[rng.gen_range(0..members.len())];
            if a != b && edge_set.insert(norm(a, b)) {
                edges.push((a, b));
            }
        }
    }

    // 6. Inter-AS links: each AS-level edge becomes a link between random
    //    border routers of the two ASes.
    for e in as_graph.edges() {
        let (a_as, b_as) = (e.a().index(), e.b().index());
        let mut placed = false;
        for _ in 0..40 {
            let ra = as_router_ids[a_as][rng.gen_range(0..as_router_ids[a_as].len())];
            let rb = as_router_ids[b_as][rng.gen_range(0..as_router_ids[b_as].len())];
            if edge_set.insert(norm(ra, rb)) {
                edges.push((ra, rb));
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(TopologyError::GenerationFailed(
                "could not place inter-AS link without duplication".into(),
            ));
        }
    }

    let topo = Topology::new(routers, edges)?;
    debug_assert!(topo.is_connected());
    Ok(topo)
}

/// Bounded Pareto sample on `[lo, hi]`, rounded to u32.
fn bounded_pareto<R: Rng + ?Sized>(lo: f64, hi: f64, alpha: f64, rng: &mut R) -> u32 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    let x = (-(u * (1.0 - la / ha) - 1.0) / la).powf(-1.0 / alpha);
    x.round().clamp(lo, hi) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn realistic_topology_shape() {
        let mut rng = SmallRng::seed_from_u64(9);
        let topo = generate_multi_as(&MultiAsConfig::realistic(60), &mut rng).unwrap();
        assert_eq!(topo.num_ases(), 60);
        assert!(topo.num_routers() >= 60);
        assert!(topo.is_connected());
    }

    #[test]
    fn as_sizes_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let sizes: Vec<u32> = (0..2000)
            .map(|_| bounded_pareto(1.0, 100.0, 1.2, &mut rng))
            .collect();
        assert!(sizes.iter().all(|&s| (1..=100).contains(&s)));
        let ones = sizes.iter().filter(|&&s| s <= 2).count();
        let big = sizes.iter().filter(|&&s| s >= 50).count();
        assert!(ones > 1000, "tail not heavy at the bottom: {ones}");
        assert!(big > 5, "no large ASes: {big}");
    }

    #[test]
    fn largest_as_gets_largest_inter_as_degree() {
        let mut rng = SmallRng::seed_from_u64(11);
        let topo = generate_multi_as(&MultiAsConfig::realistic(50), &mut rng).unwrap();
        let mut sizes: Vec<(AsId, usize, usize)> = topo
            .as_ids()
            .map(|a| (a, topo.as_members(a).len(), topo.inter_as_degree(a)))
            .collect();
        sizes.sort_by_key(|&(_, size, _)| std::cmp::Reverse(size));
        let largest_deg = sizes[0].2;
        let smallest_deg = sizes.last().unwrap().2;
        assert!(
            largest_deg >= smallest_deg,
            "largest AS degree {largest_deg} < smallest AS degree {smallest_deg}"
        );
    }

    #[test]
    fn intra_as_connected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let topo = generate_multi_as(&MultiAsConfig::realistic(30), &mut rng).unwrap();
        // Whole graph connected implies each AS can reach out, but also
        // check ASes are internally connected through intra-AS links only.
        for as_id in topo.as_ids() {
            let members: std::collections::HashSet<_> =
                topo.as_members(as_id).iter().copied().collect();
            if members.len() <= 1 {
                continue;
            }
            let start = *topo.as_members(as_id).first().unwrap();
            let mut seen = std::collections::HashSet::from([start]);
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for &v in topo.neighbors(u) {
                    if members.contains(&v) && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            assert_eq!(
                seen.len(),
                members.len(),
                "{as_id} not internally connected"
            );
        }
    }

    #[test]
    fn multi_as_is_deterministic_per_seed() {
        let cfg = MultiAsConfig::realistic(25);
        let a = generate_multi_as(&cfg, &mut SmallRng::seed_from_u64(8)).unwrap();
        let b = generate_multi_as(&cfg, &mut SmallRng::seed_from_u64(8)).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn empty_config_rejected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = MultiAsConfig {
            num_ases: 0,
            ..MultiAsConfig::realistic(1)
        };
        assert!(matches!(
            generate_multi_as(&cfg, &mut rng),
            Err(TopologyError::Empty)
        ));
    }
}
