//! Graph metrics for characterizing generated topologies.
//!
//! BRITE ships an analysis companion that reports degree statistics, path
//! lengths and clustering for generated graphs; the paper leans on those
//! properties when arguing about degree distributions (§3.1, §4.1). This
//! module provides the same measurements so experiments can report *what*
//! they ran on, and tests can pin generator behaviour.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::graph::{RouterId, Topology};

/// Summary statistics of a topology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    /// Number of routers.
    pub routers: usize,
    /// Number of ASes.
    pub ases: usize,
    /// Number of links.
    pub edges: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Smallest degree.
    pub min_degree: usize,
    /// Largest degree.
    pub max_degree: usize,
    /// Mean shortest-path length in hops (over connected pairs).
    pub avg_path_length: f64,
    /// Largest shortest-path length (diameter of the largest component).
    pub diameter: usize,
    /// Mean local clustering coefficient.
    pub clustering: f64,
}

/// Computes [`TopologyMetrics`] (BFS from every node — fine for the
/// paper-scale graphs this workspace uses).
///
/// ```
/// use bgpsim_topology::degree::SkewedSpec;
/// use bgpsim_topology::generators::skewed_topology;
/// use bgpsim_topology::metrics::measure;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let topo = skewed_topology(60, &SkewedSpec::seventy_thirty(), &mut rng)?;
/// let m = measure(&topo);
/// assert!(m.avg_path_length > 1.0);
/// assert!(m.diameter >= 2);
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn measure(topo: &Topology) -> TopologyMetrics {
    let n = topo.num_routers();
    let degrees: Vec<usize> = topo.router_ids().map(|r| topo.degree(r)).collect();

    // All-pairs shortest paths by repeated BFS.
    let (mut path_sum, mut pairs, mut diameter) = (0u64, 0u64, 0usize);
    for src in topo.router_ids() {
        let mut dist = vec![usize::MAX; n];
        dist[src.index()] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in topo.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        for (i, &d) in dist.iter().enumerate() {
            if d != usize::MAX && i != src.index() {
                path_sum += d as u64;
                pairs += 1;
                diameter = diameter.max(d);
            }
        }
    }

    // Mean local clustering coefficient.
    let mut clustering_sum = 0.0;
    let mut clustered_nodes = 0usize;
    for r in topo.router_ids() {
        let nbrs = topo.neighbors(r);
        if nbrs.len() < 2 {
            continue;
        }
        let mut closed = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if topo.neighbors(a).binary_search(&b).is_ok() {
                    closed += 1;
                }
            }
        }
        let possible = nbrs.len() * (nbrs.len() - 1) / 2;
        clustering_sum += closed as f64 / possible as f64;
        clustered_nodes += 1;
    }

    TopologyMetrics {
        routers: n,
        ases: topo.num_ases(),
        edges: topo.num_edges(),
        avg_degree: topo.avg_degree(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_path_length: if pairs == 0 {
            0.0
        } else {
            path_sum as f64 / pairs as f64
        },
        diameter,
        clustering: if clustered_nodes == 0 {
            0.0
        } else {
            clustering_sum / clustered_nodes as f64
        },
    }
}

/// K-core numbers per router: the largest `k` such that the router belongs
/// to a subgraph where every member has at least `k` neighbors inside it
/// (computed by the standard peeling algorithm). The maximum core of an
/// engineered hierarchy is its top clique, which is how relationship
/// inference finds the "Tier-1" set without a side channel.
pub fn core_numbers(topo: &Topology) -> Vec<usize> {
    let n = topo.num_routers();
    let mut degree: Vec<usize> = topo.router_ids().map(|r| topo.degree(r)).collect();
    let mut removed = vec![false; n];
    let mut core = vec![0usize; n];
    // Peel the minimum-remaining-degree node; its core number is the
    // running maximum of peel degrees (standard degeneracy ordering).
    let mut max_peel = 0usize;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&i| !removed[i])
            .min_by_key(|&i| degree[i])
            .expect("n iterations over n nodes");
        max_peel = max_peel.max(degree[u]);
        core[u] = max_peel;
        removed[u] = true;
        for &v in topo.neighbors(RouterId::new(u as u32)) {
            if !removed[v.index()] {
                degree[v.index()] = degree[v.index()].saturating_sub(1);
            }
        }
    }
    core
}

/// Hop distances from `src` to every router (`None` = unreachable).
pub fn distances_from(topo: &Topology, src: RouterId) -> Vec<Option<usize>> {
    let n = topo.num_routers();
    let mut dist = vec![None; n];
    dist[src.index()] = Some(0);
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in topo.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsId, Point, Router};

    fn line(n: u32) -> Topology {
        let routers = (0..n)
            .map(|i| Router {
                as_id: AsId::new(i),
                pos: Point::new(f64::from(i), 0.0),
            })
            .collect();
        let edges = (1..n).map(|i| (RouterId::new(i - 1), RouterId::new(i)));
        Topology::new(routers, edges).unwrap()
    }

    fn triangle() -> Topology {
        let routers = (0..3)
            .map(|i| Router {
                as_id: AsId::new(i),
                pos: Point::new(f64::from(i), 0.0),
            })
            .collect();
        Topology::new(
            routers,
            vec![
                (RouterId::new(0), RouterId::new(1)),
                (RouterId::new(1), RouterId::new(2)),
                (RouterId::new(0), RouterId::new(2)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn line_metrics() {
        let m = measure(&line(4));
        assert_eq!(m.diameter, 3);
        // Pairs at distances 1,1,1,2,2,3 (each direction): mean = 10/6.
        assert!((m.avg_path_length - 10.0 / 6.0).abs() < 1e-9);
        assert_eq!(m.clustering, 0.0);
        assert_eq!(m.min_degree, 1);
        assert_eq!(m.max_degree, 2);
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let m = measure(&triangle());
        assert_eq!(m.clustering, 1.0);
        assert_eq!(m.diameter, 1);
        assert_eq!(m.avg_path_length, 1.0);
    }

    #[test]
    fn distances_from_source() {
        let topo = line(5);
        let d = distances_from(&topo, RouterId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn distances_mark_unreachable() {
        let routers = (0..3)
            .map(|i| Router {
                as_id: AsId::new(i),
                pos: Point::new(f64::from(i), 0.0),
            })
            .collect();
        let topo = Topology::new(routers, vec![(RouterId::new(0), RouterId::new(1))]).unwrap();
        let d = distances_from(&topo, RouterId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn core_numbers_on_known_graphs() {
        // A line is 1-degenerate everywhere.
        assert_eq!(core_numbers(&line(5)), vec![1; 5]);
        // A triangle is a 2-core.
        assert_eq!(core_numbers(&triangle()), vec![2; 3]);
        // Triangle + pendant: pendant is core 1, triangle core 2.
        let routers = (0..4)
            .map(|i| Router {
                as_id: AsId::new(i),
                pos: Point::new(f64::from(i), 0.0),
            })
            .collect();
        let topo = Topology::new(
            routers,
            vec![
                (RouterId::new(0), RouterId::new(1)),
                (RouterId::new(1), RouterId::new(2)),
                (RouterId::new(0), RouterId::new(2)),
                (RouterId::new(2), RouterId::new(3)),
            ],
        )
        .unwrap();
        assert_eq!(core_numbers(&topo), vec![2, 2, 2, 1]);
    }

    #[test]
    fn hierarchical_max_core_is_the_top_clique() {
        use crate::generators::{hierarchical, HierarchicalParams};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(6);
        let params = HierarchicalParams::three_tier_120();
        let topo = hierarchical(&params, &mut rng).unwrap();
        let core = core_numbers(&topo);
        let max = *core.iter().max().unwrap();
        let top: Vec<usize> = (0..core.len()).filter(|&i| core[i] == max).collect();
        // The 6-node clique is (part of) the maximum core; every clique
        // member must be in it.
        for i in 0..6 {
            assert!(top.contains(&i), "clique node {i} not in the max core");
        }
    }

    #[test]
    fn ba_graphs_cluster_more_than_lines() {
        use crate::generators::barabasi_albert;
        use crate::placement::{place, DensityModel};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = place(80, DensityModel::Uniform, &mut rng);
        let topo = barabasi_albert(&pts, 2, &mut rng).unwrap();
        let m = measure(&topo);
        assert!(m.clustering > 0.0);
        assert!(m.avg_path_length < 6.0, "BA graphs are small worlds");
    }
}
