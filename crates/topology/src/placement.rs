//! Router placement on the grid.
//!
//! The paper places routers uniformly at random on a 1000×1000 grid (§3.1);
//! its earlier work also examined non-uniform densities, which
//! [`DensityModel::CenterHeavy`] reproduces for ablations.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::Point;
use crate::GRID_SIDE;

/// How routers are spread over the grid.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum DensityModel {
    /// Uniform over the square (the paper's default).
    #[default]
    Uniform,
    /// Denser toward the grid centre: each coordinate is the average of a
    /// uniform draw and the centre, pulling points inward.
    CenterHeavy,
}

/// Places `n` routers on the standard grid.
///
/// ```
/// use bgpsim_topology::placement::{place, DensityModel};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let pts = place(120, DensityModel::Uniform, &mut rng);
/// assert_eq!(pts.len(), 120);
/// assert!(pts.iter().all(|p| (0.0..=1000.0).contains(&p.x)));
/// ```
pub fn place<R: Rng + ?Sized>(n: usize, model: DensityModel, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let (x, y) = (rng.gen_range(0.0..GRID_SIDE), rng.gen_range(0.0..GRID_SIDE));
            match model {
                DensityModel::Uniform => Point::new(x, y),
                DensityModel::CenterHeavy => {
                    let c = GRID_SIDE / 2.0;
                    Point::new((x + c) / 2.0, (y + c) / 2.0)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_grid() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = place(2000, DensityModel::Uniform, &mut rng);
        let in_center_quarter = pts
            .iter()
            .filter(|p| (250.0..750.0).contains(&p.x) && (250.0..750.0).contains(&p.y))
            .count();
        // Centre quarter of the area should hold ~25% of uniform points.
        let frac = in_center_quarter as f64 / 2000.0;
        assert!(
            (0.18..0.32).contains(&frac),
            "uniform placement skewed: {frac}"
        );
    }

    #[test]
    fn center_heavy_pulls_inward() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = place(2000, DensityModel::CenterHeavy, &mut rng);
        assert!(pts
            .iter()
            .all(|p| (250.0..=750.0).contains(&p.x) && (250.0..=750.0).contains(&p.y)));
    }

    #[test]
    fn placement_is_deterministic() {
        let a = place(10, DensityModel::Uniform, &mut SmallRng::seed_from_u64(4));
        let b = place(10, DensityModel::Uniform, &mut SmallRng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
