//! # bgpsim-topology — BRITE-like AS/router topology generation
//!
//! This crate reproduces the topology workload of *"Improving BGP
//! Convergence Delay for Large-Scale Failures"* (Sahoo, Kant, Mohapatra —
//! DSN 2006). The paper generated topologies with a modified version of
//! BRITE; this crate provides:
//!
//! * [`graph`] — router-level topology type with AS membership, Euclidean
//!   coordinates on the paper's 1000×1000 grid, and connectivity utilities.
//! * [`degree`] — the paper's *skewed* degree distributions (70-30, 50-50,
//!   85-15, and the dense 50-50 with average degree 7.6), plus an
//!   Internet-derived power-law distribution truncated at degree 40.
//! * [`generators`] — a degree-sequence (configuration-model) generator with
//!   simple-graph and connectivity repair, plus the BRITE menu: Waxman,
//!   Barabási–Albert, and GLP.
//! * [`placement`] — random placement on the grid (plus density variants).
//! * [`multias`] — multi-router-per-AS expansion: heavy-tailed AS sizes
//!   (1–100 routers), AS geographic extent proportional to size, and the
//!   highest inter-AS degrees assigned to the largest ASes (paper §3.1).
//! * [`region`] — contiguous-failure-region selection (centred area covering
//!   a target fraction of routers), plus corner/random variants.
//!
//! # Example
//!
//! ```
//! use bgpsim_topology::degree::SkewedSpec;
//! use bgpsim_topology::generators::skewed_topology;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let topo = skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut rng)?;
//! assert_eq!(topo.num_routers(), 120);
//! assert!(topo.is_connected());
//! assert!((topo.avg_degree() - 3.8).abs() < 0.4);
//! # Ok::<(), bgpsim_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod multias;
pub mod placement;
pub mod prefixes;
pub mod region;

pub use graph::{AsId, Point, Router, RouterId, Topology, TopologyError};

/// Side length of the placement grid used throughout the paper (§3.1).
pub const GRID_SIDE: f64 = 1000.0;
