//! Configuration-model generator with simple-graph and connectivity repair.
//!
//! Given a degree sequence, we match half-edge "stubs" uniformly at random,
//! then repair the result into a *simple* (no self-loops or parallel links)
//! *connected* graph by degree-preserving edge swaps. Degrees are preserved
//! exactly, which is what makes the paper's controlled degree-distribution
//! sweeps (70-30 vs 50-50 vs 85-15 at identical average degree) meaningful.

use std::collections::{BTreeSet, HashSet};

use rand::Rng;

use crate::graph::{Point, Topology, TopologyError};

/// Builds a simple connected topology realizing `degrees`, one router per
/// AS, with router `i` at `positions[i]`.
///
/// # Errors
///
/// Returns [`TopologyError::GenerationFailed`] if the sequence could not be
/// realized as a simple connected graph within the internal retry budget
/// (odd-sum sequences, infeasible sequences, or extreme bad luck).
///
/// # Panics
///
/// Panics if `degrees` and `positions` have different lengths.
pub fn from_degree_sequence<R: Rng + ?Sized>(
    degrees: &[u32],
    positions: &[Point],
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    assert_eq!(
        degrees.len(),
        positions.len(),
        "degree sequence and positions must have equal length"
    );
    let n = degrees.len();
    if n == 0 {
        return Err(TopologyError::Empty);
    }
    let stub_sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
    if stub_sum % 2 == 1 {
        return Err(TopologyError::GenerationFailed(format!(
            "degree sum {stub_sum} is odd"
        )));
    }
    if degrees.iter().any(|&d| d as usize >= n) {
        return Err(TopologyError::GenerationFailed(
            "a degree exceeds n-1; simple graph impossible".into(),
        ));
    }

    for _attempt in 0..20 {
        if let Some(edges) = match_and_repair(degrees, rng) {
            let edges = connect(edges, n, rng);
            if let Some(edges) = edges {
                let topo =
                    crate::generators::single_as_topology(positions, edges.into_iter().collect())?;
                debug_assert!(topo.is_connected());
                return Ok(topo);
            }
        }
    }
    Err(TopologyError::GenerationFailed(
        "could not realize degree sequence as a simple connected graph".into(),
    ))
}

// Deterministic iteration order is load-bearing: repair picks edges by
// position, so a hash set would make same-seed runs diverge.
type EdgeSet = BTreeSet<(u32, u32)>;

fn key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Random stub matching followed by swap-based repair of self-loops and
/// parallel edges. Returns `None` if repair stalls.
fn match_and_repair<R: Rng + ?Sized>(degrees: &[u32], rng: &mut R) -> Option<EdgeSet> {
    let mut stubs: Vec<u32> = Vec::new();
    for (i, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(i as u32, d as usize));
    }
    // Fisher–Yates.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }

    let mut edges: EdgeSet = BTreeSet::new();
    let mut bad: Vec<(u32, u32)> = Vec::new();
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v || !edges.insert(key(u, v)) {
            bad.push((u, v));
        }
    }

    // Repair each bad pair by splicing it into a random existing edge:
    // remove (x, y), add (u, x) and (v, y) — degrees unchanged.
    let mut budget = 200 * (bad.len() + 1);
    while let Some((u, v)) = bad.pop() {
        let mut placed = false;
        for _ in 0..200 {
            if budget == 0 {
                return None;
            }
            budget -= 1;
            let &(x, y) = pick_random(&edges, rng)?;
            // Two orientations; try the random one first.
            let (x, y) = if rng.gen::<bool>() { (x, y) } else { (y, x) };
            // All four endpoints must be pairwise usable: no self-loops and
            // no (u,x) == (v,y) key collision (which happens when u == y and
            // v == x and would silently drop an edge).
            if u == x || v == y || u == y || v == x {
                continue;
            }
            if edges.contains(&key(u, x)) || edges.contains(&key(v, y)) {
                continue;
            }
            edges.remove(&key(x, y));
            edges.insert(key(u, x));
            edges.insert(key(v, y));
            placed = true;
            break;
        }
        if !placed {
            return None;
        }
    }
    Some(edges)
}

/// Merges components with degree-preserving double-edge swaps until the
/// graph is connected (or the budget runs out).
fn connect<R: Rng + ?Sized>(mut edges: EdgeSet, n: usize, rng: &mut R) -> Option<EdgeSet> {
    let mut guard = 20 * n + 200;
    loop {
        let comps = components(&edges, n);
        if comps.len() <= 1 {
            return Some(edges);
        }
        if guard == 0 {
            return None;
        }
        guard -= 1;

        // Pick one edge inside each of two different components and swap
        // their endpoints; recompute and iterate. Preferring a cycle (non
        // -bridge) edge in the larger component makes the merge permanent
        // in the common case.
        let comp_of = component_index(&comps, n);
        let largest = (0..comps.len()).max_by_key(|&i| comps[i].len())?;
        let mut in_large: Vec<(u32, u32)> = Vec::new();
        let mut in_other: Vec<(u32, u32)> = Vec::new();
        for &(a, b) in &edges {
            if comp_of[a as usize] == largest {
                in_large.push((a, b));
            } else {
                in_other.push((a, b));
            }
        }
        if in_other.is_empty() {
            // Remaining components are isolated vertices: impossible here
            // because every degree ≥ 1 sequence gives each node an edge,
            // unless a degree was 0 — then connectivity is unreachable.
            return None;
        }
        let bridge_set = bridges(&edges, n);
        let e1 = in_large
            .iter()
            .find(|e| !bridge_set.contains(&key(e.0, e.1)))
            .copied()
            .or_else(|| {
                in_large
                    .get(rng.gen_range(0..in_large.len().max(1)))
                    .copied()
            });
        let (a, b) = e1?;
        let (c, d) = in_other[rng.gen_range(0..in_other.len())];

        // Swap to (a, c) and (b, d), or the other orientation if blocked.
        let try_orientations = [((a, c), (b, d)), ((a, d), (b, c))];
        for ((p, q), (r, s)) in try_orientations {
            if p == q || r == s {
                continue;
            }
            if edges.contains(&key(p, q)) || edges.contains(&key(r, s)) {
                continue;
            }
            edges.remove(&key(a, b));
            edges.remove(&key(c, d));
            edges.insert(key(p, q));
            edges.insert(key(r, s));
            break;
        }
    }
}

fn pick_random<'a, R: Rng + ?Sized>(edges: &'a EdgeSet, rng: &mut R) -> Option<&'a (u32, u32)> {
    if edges.is_empty() {
        return None;
    }
    let idx = rng.gen_range(0..edges.len());
    edges.iter().nth(idx)
}

fn components(edges: &EdgeSet, n: usize) -> Vec<Vec<u32>> {
    let adj = adjacency(edges, n);
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut stack = vec![start as u32];
        let mut comp = Vec::new();
        while let Some(u) = stack.pop() {
            comp.push(u);
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

fn component_index(comps: &[Vec<u32>], n: usize) -> Vec<usize> {
    let mut idx = vec![0usize; n];
    for (c, comp) in comps.iter().enumerate() {
        for &u in comp {
            idx[u as usize] = c;
        }
    }
    idx
}

fn adjacency(edges: &EdgeSet, n: usize) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    adj
}

/// Iterative bridge finding (Tarjan low-link).
fn bridges(edges: &EdgeSet, n: usize) -> HashSet<(u32, u32)> {
    let adj = adjacency(edges, n);
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut out = HashSet::new();
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Stack frames: (node, parent, next neighbor index).
        let mut stack: Vec<(u32, u32, usize)> = vec![(root as u32, u32::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (u, parent, ref mut next)) = stack.last_mut() {
            let ui = u as usize;
            if *next < adj[ui].len() {
                let v = adj[ui][*next];
                *next += 1;
                if v == parent {
                    continue;
                }
                let vi = v as usize;
                if disc[vi] == usize::MAX {
                    disc[vi] = timer;
                    low[vi] = timer;
                    timer += 1;
                    stack.push((v, u, 0));
                } else {
                    low[ui] = low[ui].min(disc[vi]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[ui]);
                    if low[ui] > disc[pi] {
                        out.insert(key(u, p));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn uniform_positions(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn realizes_exact_degrees() {
        let mut rng = SmallRng::seed_from_u64(17);
        let degrees = vec![3, 3, 2, 2, 2, 2, 1, 1];
        let topo = from_degree_sequence(&degrees, &uniform_positions(8), &mut rng).unwrap();
        for (i, &d) in degrees.iter().enumerate() {
            assert_eq!(
                topo.degree(crate::graph::RouterId::new(i as u32)),
                d as usize,
                "node {i} degree mismatch"
            );
        }
        assert!(topo.is_connected());
    }

    #[test]
    fn many_seeds_all_connected_and_simple() {
        for seed in 0..30 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let spec = crate::degree::SkewedSpec::seventy_thirty();
            let degrees = spec.sample(120, &mut rng);
            let topo = from_degree_sequence(&degrees, &uniform_positions(120), &mut rng)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(topo.is_connected(), "seed {seed} disconnected");
            for (i, &d) in degrees.iter().enumerate() {
                assert_eq!(
                    topo.degree(crate::graph::RouterId::new(i as u32)),
                    d as usize
                );
            }
        }
    }

    #[test]
    fn rejects_odd_sum() {
        let mut rng = SmallRng::seed_from_u64(1);
        let err = from_degree_sequence(&[1, 1, 1], &uniform_positions(3), &mut rng);
        assert!(matches!(err, Err(TopologyError::GenerationFailed(_))));
    }

    #[test]
    fn rejects_oversized_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let err = from_degree_sequence(&[3, 1, 1, 1], &uniform_positions(4), &mut rng);
        // degree 3 == n-1 is fine; degree >= n is not.
        assert!(err.is_ok());
        let err = from_degree_sequence(&[4, 2, 1, 1], &uniform_positions(4), &mut rng);
        assert!(matches!(err, Err(TopologyError::GenerationFailed(_))));
    }

    #[test]
    fn bridge_finder_identifies_bridges() {
        // 0-1-2 triangle plus pendant 3 hanging off 2: only (2,3) is a bridge.
        let mut edges = EdgeSet::new();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3)] {
            edges.insert(key(a, b));
        }
        let b = bridges(&edges, 4);
        assert_eq!(b.len(), 1);
        assert!(b.contains(&(2, 3)));
    }

    #[test]
    fn bridge_finder_on_tree_flags_everything() {
        let mut edges = EdgeSet::new();
        for &(a, b) in &[(0, 1), (1, 2), (1, 3)] {
            edges.insert(key(a, b));
        }
        assert_eq!(bridges(&edges, 4).len(), 3);
    }

    #[test]
    fn components_helper() {
        let mut edges = EdgeSet::new();
        edges.insert(key(0, 1));
        edges.insert(key(2, 3));
        let comps = components(&edges, 5);
        assert_eq!(comps.len(), 3); // {0,1}, {2,3}, {4}
    }
}
