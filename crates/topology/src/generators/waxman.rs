//! Waxman generator (BRITE-style incremental variant).
//!
//! Each newly added node connects to `m` existing nodes, chosen with
//! probability proportional to the Waxman factor
//! `α · exp(−d / (β · L))` where `d` is Euclidean distance and `L` the
//! maximum possible distance. Incremental growth guarantees connectivity
//! and an average degree close to `2m`, as in BRITE.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Point, Topology, TopologyError};

/// Parameters of the Waxman model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaxmanParams {
    /// Overall link-probability scale (BRITE default 0.15). Only the
    /// *relative* weights matter in the incremental variant.
    pub alpha: f64,
    /// Distance-decay scale (BRITE default 0.2).
    pub beta: f64,
    /// Links added per new node.
    pub m: usize,
}

impl Default for WaxmanParams {
    fn default() -> WaxmanParams {
        WaxmanParams {
            alpha: 0.15,
            beta: 0.2,
            m: 2,
        }
    }
}

/// Generates a Waxman topology over the given positions (one AS per router).
///
/// # Errors
///
/// Returns [`TopologyError::Empty`] for an empty position list and
/// [`TopologyError::GenerationFailed`] if `m == 0`.
///
/// # Example
///
/// ```
/// use bgpsim_topology::generators::{waxman, WaxmanParams};
/// use bgpsim_topology::placement::{place, DensityModel};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let pts = place(60, DensityModel::Uniform, &mut rng);
/// let topo = waxman(&pts, WaxmanParams::default(), &mut rng)?;
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn waxman<R: Rng + ?Sized>(
    positions: &[Point],
    params: WaxmanParams,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    if positions.is_empty() {
        return Err(TopologyError::Empty);
    }
    if params.m == 0 {
        return Err(TopologyError::GenerationFailed(
            "waxman m must be ≥ 1".into(),
        ));
    }
    let n = positions.len();
    let max_dist = positions
        .iter()
        .flat_map(|a| positions.iter().map(move |b| a.distance(*b)))
        .fold(0.0_f64, f64::max)
        .max(f64::EPSILON);

    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 1..n {
        let candidates: Vec<usize> = (0..i).collect();
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&j| {
                let d = positions[i].distance(positions[j]);
                params.alpha * (-d / (params.beta * max_dist)).exp()
            })
            .collect();
        let picks = params.m.min(i);
        let chosen = weighted_sample_without_replacement(&candidates, &weights, picks, rng);
        for j in chosen {
            edges.push((j as u32, i as u32));
        }
    }
    crate::generators::single_as_topology(positions, edges)
}

/// Samples `k` distinct items with probability proportional to `weights`.
pub(crate) fn weighted_sample_without_replacement<R: Rng + ?Sized>(
    items: &[usize],
    weights: &[f64],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    debug_assert_eq!(items.len(), weights.len());
    let mut remaining: Vec<(usize, f64)> =
        items.iter().copied().zip(weights.iter().copied()).collect();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(remaining.len()) {
        let total: f64 = remaining.iter().map(|&(_, w)| w.max(0.0)).sum();
        let idx = if total <= 0.0 {
            rng.gen_range(0..remaining.len())
        } else {
            let mut pick = rng.gen_range(0.0..total);
            let mut sel = remaining.len() - 1;
            for (pos, &(_, w)) in remaining.iter().enumerate() {
                let w = w.max(0.0);
                if pick < w {
                    sel = pos;
                    break;
                }
                pick -= w;
            }
            sel
        };
        out.push(remaining.swap_remove(idx).0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place, DensityModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn waxman_connected_with_expected_density() {
        let mut rng = SmallRng::seed_from_u64(8);
        let pts = place(120, DensityModel::Uniform, &mut rng);
        let topo = waxman(
            &pts,
            WaxmanParams {
                m: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(topo.is_connected());
        // Incremental growth: exactly m·(n−m) + C(m+... ≈ 2(n−1)−1 edges for m=2.
        assert!(
            (topo.avg_degree() - 4.0).abs() < 1.0,
            "avg {}",
            topo.avg_degree()
        );
    }

    #[test]
    fn waxman_prefers_short_links() {
        let mut rng = SmallRng::seed_from_u64(8);
        let pts = place(200, DensityModel::Uniform, &mut rng);
        let topo = waxman(
            &pts,
            WaxmanParams {
                beta: 0.05,
                m: 2,
                alpha: 0.15,
            },
            &mut rng,
        )
        .unwrap();
        let mean_len: f64 = topo
            .edges()
            .iter()
            .map(|e| topo.router(e.a()).pos.distance(topo.router(e.b()).pos))
            .sum::<f64>()
            / topo.num_edges() as f64;
        // Random pairs on the unit-1000 grid average ≈ 521; strong decay
        // must pull the mean link length well below that.
        assert!(
            mean_len < 400.0,
            "mean link length {mean_len} not localized"
        );
    }

    #[test]
    fn waxman_is_deterministic_per_seed() {
        let pts = place(50, DensityModel::Uniform, &mut SmallRng::seed_from_u64(1));
        let a = waxman(
            &pts,
            WaxmanParams::default(),
            &mut SmallRng::seed_from_u64(2),
        )
        .unwrap();
        let b = waxman(
            &pts,
            WaxmanParams::default(),
            &mut SmallRng::seed_from_u64(2),
        )
        .unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(matches!(
            waxman(&[], WaxmanParams::default(), &mut rng),
            Err(TopologyError::Empty)
        ));
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert!(waxman(
            &pts,
            WaxmanParams {
                m: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn weighted_sample_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let items = vec![0, 1];
        let mut count0 = 0;
        for _ in 0..2000 {
            let picked = weighted_sample_without_replacement(&items, &[10.0, 1.0], 1, &mut rng);
            if picked[0] == 0 {
                count0 += 1;
            }
        }
        assert!(count0 > 1600, "heavy item picked only {count0}/2000");
    }

    #[test]
    fn weighted_sample_distinct_items() {
        let mut rng = SmallRng::seed_from_u64(1);
        let items = vec![0, 1, 2];
        let picked = weighted_sample_without_replacement(&items, &[1.0, 1.0, 1.0], 3, &mut rng);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, items);
    }
}
