//! GLP — Generalized Linear Preference (Bu & Towsley, INFOCOM 2002).
//!
//! Like Barabási–Albert but (a) attachment probability is proportional to
//! `degree − β` for a tunable `β < 1`, letting the power-law exponent be
//! controlled, and (b) with probability `p` a step adds `m` links between
//! *existing* nodes instead of adding a new node, which raises clustering.
//! One of the three AS-level generators BRITE offers (paper §3.1, ref \[17\]).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::generators::waxman::weighted_sample_without_replacement;
use crate::graph::{Point, Topology, TopologyError};

/// Parameters of the GLP model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GlpParams {
    /// Links added per step.
    pub m: usize,
    /// Probability a step adds links between existing nodes instead of a
    /// new node.
    pub p: f64,
    /// Preference shift; must be `< 1`. Larger `beta` (towards 1) weakens
    /// the rich-get-richer effect.
    pub beta: f64,
}

impl Default for GlpParams {
    fn default() -> GlpParams {
        // Bu & Towsley's fit to the AS graph.
        GlpParams {
            m: 1,
            p: 0.4695,
            beta: 0.6447,
        }
    }
}

/// Generates a GLP topology over the given positions (one AS per router).
///
/// Link-addition steps are interleaved until all positions are consumed, so
/// the node count always equals `positions.len()`.
///
/// # Errors
///
/// Returns [`TopologyError::Empty`] for an empty position list and
/// [`TopologyError::GenerationFailed`] for invalid parameters
/// (`m == 0`, `p ∉ [0, 1)`, `beta ≥ 1`, or fewer than `m + 1` nodes).
///
/// # Example
///
/// ```
/// use bgpsim_topology::generators::{glp, GlpParams};
/// use bgpsim_topology::placement::{place, DensityModel};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let pts = place(100, DensityModel::Uniform, &mut rng);
/// let topo = glp(&pts, GlpParams { m: 2, ..Default::default() }, &mut rng)?;
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn glp<R: Rng + ?Sized>(
    positions: &[Point],
    params: GlpParams,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    if positions.is_empty() {
        return Err(TopologyError::Empty);
    }
    let n = positions.len();
    if params.m == 0 {
        return Err(TopologyError::GenerationFailed("GLP m must be ≥ 1".into()));
    }
    if !(0.0..1.0).contains(&params.p) {
        return Err(TopologyError::GenerationFailed(format!(
            "GLP p = {} outside [0, 1)",
            params.p
        )));
    }
    if params.beta >= 1.0 {
        return Err(TopologyError::GenerationFailed(format!(
            "GLP beta = {} must be < 1",
            params.beta
        )));
    }
    if n < params.m + 1 {
        return Err(TopologyError::GenerationFailed(format!(
            "GLP needs at least m+1 = {} nodes, got {n}",
            params.m + 1
        )));
    }

    let mut degree: Vec<f64> = vec![0.0; n];
    let mut edges: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut add_edge = |a: usize, b: usize, degree: &mut Vec<f64>| -> bool {
        let k = if a < b {
            (a as u32, b as u32)
        } else {
            (b as u32, a as u32)
        };
        if a == b || !edges.insert(k) {
            return false;
        }
        degree[a] += 1.0;
        degree[b] += 1.0;
        true
    };

    // Seed: path over the first m+1 nodes.
    let mut active = params.m + 1;
    for i in 0..params.m {
        add_edge(i, i + 1, &mut degree);
    }

    while active < n {
        let weights: Vec<f64> = (0..active)
            .map(|i| (degree[i] - params.beta).max(1e-9))
            .collect();
        let items: Vec<usize> = (0..active).collect();
        if rng.gen::<f64>() < params.p {
            // Add m links between existing nodes.
            for _ in 0..params.m {
                let mut placed = false;
                for _ in 0..50 {
                    let pick = weighted_sample_without_replacement(&items, &weights, 2, rng);
                    if pick.len() == 2 && add_edge(pick[0], pick[1], &mut degree) {
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break; // dense region; skip silently, density is advisory
                }
            }
        } else {
            // Add a new node with m links.
            let new = active;
            let picks =
                weighted_sample_without_replacement(&items, &weights, params.m.min(active), rng);
            for t in picks {
                add_edge(new, t, &mut degree);
            }
            active += 1;
        }
    }
    crate::generators::single_as_topology(positions, edges.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place, DensityModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn glp_connected_and_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(21);
        let pts = place(300, DensityModel::Uniform, &mut rng);
        let topo = glp(
            &pts,
            GlpParams {
                m: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(topo.num_routers(), 300);
        assert!(topo.is_connected());
        let max_deg = topo.router_ids().map(|r| topo.degree(r)).max().unwrap();
        assert!(max_deg > 10, "no hubs (max degree {max_deg})");
    }

    #[test]
    fn glp_is_deterministic_per_seed() {
        let pts = place(60, DensityModel::Uniform, &mut SmallRng::seed_from_u64(1));
        let params = GlpParams {
            m: 2,
            ..Default::default()
        };
        let a = glp(&pts, params, &mut SmallRng::seed_from_u64(4)).unwrap();
        let b = glp(&pts, params, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn glp_rejects_bad_params() {
        let mut rng = SmallRng::seed_from_u64(0);
        let pts = place(10, DensityModel::Uniform, &mut rng);
        assert!(glp(
            &pts,
            GlpParams {
                m: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(glp(
            &pts,
            GlpParams {
                p: 1.0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(glp(
            &pts,
            GlpParams {
                beta: 1.0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(glp(&[], GlpParams::default(), &mut rng).is_err());
    }

    #[test]
    fn glp_node_count_is_exact() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pts = place(77, DensityModel::Uniform, &mut rng);
        let topo = glp(
            &pts,
            GlpParams {
                m: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(topo.num_routers(), 77);
    }
}
