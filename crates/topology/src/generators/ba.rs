//! Barabási–Albert preferential attachment.

use rand::Rng;

use crate::graph::{Point, Topology, TopologyError};

/// Generates a Barabási–Albert topology: nodes join one at a time and
/// attach `m` links to existing nodes with probability proportional to
/// their current degree. Produces the power-law degree distributions BRITE
/// offers (paper §3.1, ref \[16\]).
///
/// # Errors
///
/// Returns [`TopologyError::Empty`] for an empty position list and
/// [`TopologyError::GenerationFailed`] if `m == 0` or there are fewer than
/// `m + 1` nodes.
///
/// # Example
///
/// ```
/// use bgpsim_topology::generators::barabasi_albert;
/// use bgpsim_topology::placement::{place, DensityModel};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let pts = place(100, DensityModel::Uniform, &mut rng);
/// let topo = barabasi_albert(&pts, 2, &mut rng)?;
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(
    positions: &[Point],
    m: usize,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    if positions.is_empty() {
        return Err(TopologyError::Empty);
    }
    if m == 0 {
        return Err(TopologyError::GenerationFailed("BA m must be ≥ 1".into()));
    }
    let n = positions.len();
    if n < m + 1 {
        return Err(TopologyError::GenerationFailed(format!(
            "BA needs at least m+1 = {} nodes, got {n}",
            m + 1
        )));
    }

    // Seed: a connected clique on the first m+1 nodes.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // `targets` holds one entry per half-edge: sampling uniformly from it is
    // sampling nodes proportionally to degree.
    let mut targets: Vec<u32> = Vec::new();
    for a in 0..=m {
        for b in (a + 1)..=m {
            edges.push((a as u32, b as u32));
            targets.push(a as u32);
            targets.push(b as u32);
        }
    }

    for i in (m + 1)..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 50 * m + 50;
        while chosen.len() < m {
            if guard == 0 {
                return Err(TopologyError::GenerationFailed(
                    "BA attachment stalled".into(),
                ));
            }
            guard -= 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((t, i as u32));
            targets.push(t);
            targets.push(i as u32);
        }
    }
    crate::generators::single_as_topology(positions, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place, DensityModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ba_connected_with_hub_structure() {
        let mut rng = SmallRng::seed_from_u64(12);
        let pts = place(300, DensityModel::Uniform, &mut rng);
        let topo = barabasi_albert(&pts, 2, &mut rng).unwrap();
        assert!(topo.is_connected());
        let max_deg = topo.router_ids().map(|r| topo.degree(r)).max().unwrap();
        let avg = topo.avg_degree();
        assert!((avg - 4.0).abs() < 0.6, "avg degree {avg}");
        assert!(max_deg > 15, "no hubs emerged (max degree {max_deg})");
    }

    #[test]
    fn ba_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(12);
        let pts = place(50, DensityModel::Uniform, &mut rng);
        let topo = barabasi_albert(&pts, 3, &mut rng).unwrap();
        // Clique on 4 nodes (6 edges) + 46 nodes × 3 links.
        assert_eq!(topo.num_edges(), 6 + 46 * 3);
    }

    #[test]
    fn ba_is_deterministic_per_seed() {
        let pts = place(60, DensityModel::Uniform, &mut SmallRng::seed_from_u64(1));
        let a = barabasi_albert(&pts, 2, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = barabasi_albert(&pts, 2, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn ba_rejects_bad_inputs() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(barabasi_albert(&[], 2, &mut rng).is_err());
        let pts = place(2, DensityModel::Uniform, &mut rng);
        assert!(barabasi_albert(&pts, 0, &mut rng).is_err());
        assert!(barabasi_albert(&pts, 2, &mut rng).is_err());
    }
}
