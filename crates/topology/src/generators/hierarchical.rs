//! Hierarchical (Internet-like) topology generator.
//!
//! Random degree-sequence graphs have no engineered hierarchy: under
//! valley-free routing policies, large parts of such graphs cannot reach
//! each other (no up–peer–down path exists), which makes policy-vs-no-policy
//! convergence comparisons apples-to-oranges. The real Internet is built
//! the other way around: a small clique of transit-free "Tier-1" providers,
//! and every other AS buying transit from someone closer to the core.
//!
//! This generator reproduces that shape: tier 0 is a full clique; each node
//! of tier *i* buys transit from `providers` random nodes of tier *i − 1*;
//! optional settlement-free peer links connect nodes within a tier. Every
//! node has an all-the-way-up provider chain, so **valley-free reachability
//! is total** — the property the policy experiments rely on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Point, Topology, TopologyError};
use crate::placement::{place, DensityModel};

/// Parameters of the hierarchical generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalParams {
    /// Nodes per tier, top (the clique) first. All sizes must be ≥ 1.
    pub tier_sizes: Vec<usize>,
    /// Transit providers each non-top node buys from (clamped to the size
    /// of the tier above).
    pub providers: usize,
    /// Probability that a node links to a random same-tier peer.
    pub peer_prob: f64,
}

impl HierarchicalParams {
    /// A 120-node three-tier Internet analogue: a 6-node core clique, 30
    /// regional providers, 84 edge ASes, dual-homed, light peering.
    pub fn three_tier_120() -> HierarchicalParams {
        HierarchicalParams {
            tier_sizes: vec![6, 30, 84],
            providers: 2,
            peer_prob: 0.15,
        }
    }

    /// Scales [`three_tier_120`](Self::three_tier_120) proportionally to
    /// `n` total nodes (n ≥ 10).
    pub fn three_tier(n: usize) -> HierarchicalParams {
        let top = (n / 20).max(3);
        let mid = (n / 4).max(top + 1);
        let edge = n.saturating_sub(top + mid).max(1);
        HierarchicalParams {
            tier_sizes: vec![top, mid, edge],
            providers: 2,
            peer_prob: 0.15,
        }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.tier_sizes.iter().sum()
    }

    /// The per-node tier vector (node ids are assigned tier by tier, top
    /// first) — ground truth for relationship inference.
    pub fn tier_vector(&self) -> Vec<usize> {
        let mut tiers = Vec::with_capacity(self.num_nodes());
        for (t, &size) in self.tier_sizes.iter().enumerate() {
            tiers.extend(std::iter::repeat_n(t, size));
        }
        tiers
    }
}

/// Generates a hierarchical topology (one AS per router).
///
/// Node ids are assigned tier by tier (top first), so
/// [`HierarchicalParams::tier_vector`] gives ground-truth tiers for
/// relationship assignment — pass it to the simulation rather than relying
/// on graph-based inference (small cliques are not reliably recoverable
/// from degree or core structure).
///
/// # Errors
///
/// Returns [`TopologyError::GenerationFailed`] for malformed parameters
/// (empty tiers, zero providers, out-of-range peer probability).
///
/// # Example
///
/// ```
/// use bgpsim_topology::generators::{hierarchical, HierarchicalParams};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let topo = hierarchical(&HierarchicalParams::three_tier_120(), &mut rng)?;
/// assert_eq!(topo.num_routers(), 120);
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn hierarchical<R: Rng + ?Sized>(
    params: &HierarchicalParams,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    if params.tier_sizes.is_empty() || params.tier_sizes.contains(&0) {
        return Err(TopologyError::GenerationFailed(
            "hierarchical tiers must be non-empty".into(),
        ));
    }
    if params.providers == 0 {
        return Err(TopologyError::GenerationFailed(
            "hierarchical nodes need at least one provider".into(),
        ));
    }
    if !(0.0..=1.0).contains(&params.peer_prob) {
        return Err(TopologyError::GenerationFailed(format!(
            "peer_prob {} outside [0, 1]",
            params.peer_prob
        )));
    }

    let n = params.num_nodes();
    let positions: Vec<Point> = place(n, DensityModel::Uniform, rng);

    // Node ids: tier 0 first, then tier 1, etc.
    let mut tier_start = Vec::with_capacity(params.tier_sizes.len());
    let mut acc = 0usize;
    for &size in &params.tier_sizes {
        tier_start.push(acc);
        acc += size;
    }

    let mut edges: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let add = |a: usize, b: usize, edges: &mut std::collections::BTreeSet<(u32, u32)>| {
        if a != b {
            let (x, y) = if a < b {
                (a as u32, b as u32)
            } else {
                (b as u32, a as u32)
            };
            edges.insert((x, y));
        }
    };

    // Tier 0: full clique.
    let top = params.tier_sizes[0];
    for a in 0..top {
        for b in (a + 1)..top {
            add(a, b, &mut edges);
        }
    }

    // Lower tiers: transit links up, optional peer links sideways.
    for (t, &size) in params.tier_sizes.iter().enumerate().skip(1) {
        let above_start = tier_start[t - 1];
        let above_size = params.tier_sizes[t - 1];
        let start = tier_start[t];
        for i in 0..size {
            let node = start + i;
            let want = params.providers.min(above_size);
            let mut chosen: Vec<usize> = Vec::with_capacity(want);
            let mut guard = 50 * want + 10;
            while chosen.len() < want && guard > 0 {
                guard -= 1;
                let p = above_start + rng.gen_range(0..above_size);
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            for p in chosen {
                add(node, p, &mut edges);
            }
            if size > 1 && rng.gen::<f64>() < params.peer_prob {
                let peer = start + rng.gen_range(0..size);
                add(node, peer, &mut edges);
            }
        }
    }

    let topo = crate::generators::single_as_topology(&positions, edges.into_iter().collect())?;
    debug_assert!(topo.is_connected());
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn three_tier_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        let params = HierarchicalParams::three_tier_120();
        let topo = hierarchical(&params, &mut rng).unwrap();
        assert_eq!(topo.num_routers(), 120);
        assert!(topo.is_connected());
        // The clique is there: the first 6 nodes are pairwise adjacent.
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                assert!(
                    topo.neighbors(crate::graph::RouterId::new(a))
                        .contains(&crate::graph::RouterId::new(b)),
                    "clique edge {a}-{b} missing"
                );
            }
        }
        // Edge nodes have at least their provider links.
        for i in 36..120u32 {
            assert!(topo.degree(crate::graph::RouterId::new(i)) >= 2);
        }
    }

    #[test]
    fn scaled_params_cover_n() {
        for n in [20, 60, 120, 240] {
            let p = HierarchicalParams::three_tier(n);
            assert!(p.num_nodes() >= n - 2 && p.num_nodes() <= n + 2, "n={n}");
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let topo = hierarchical(&p, &mut rng).unwrap();
            assert!(topo.is_connected());
        }
    }

    #[test]
    fn rejects_bad_params() {
        let mut rng = SmallRng::seed_from_u64(0);
        let bad = HierarchicalParams {
            tier_sizes: vec![],
            providers: 2,
            peer_prob: 0.1,
        };
        assert!(hierarchical(&bad, &mut rng).is_err());
        let bad = HierarchicalParams {
            tier_sizes: vec![3, 0],
            providers: 2,
            peer_prob: 0.1,
        };
        assert!(hierarchical(&bad, &mut rng).is_err());
        let bad = HierarchicalParams {
            tier_sizes: vec![3, 5],
            providers: 0,
            peer_prob: 0.1,
        };
        assert!(hierarchical(&bad, &mut rng).is_err());
        let bad = HierarchicalParams {
            tier_sizes: vec![3, 5],
            providers: 2,
            peer_prob: 1.5,
        };
        assert!(hierarchical(&bad, &mut rng).is_err());
    }

    #[test]
    fn tier_vector_matches_layout() {
        let p = HierarchicalParams {
            tier_sizes: vec![2, 3],
            providers: 1,
            peer_prob: 0.0,
        };
        assert_eq!(p.tier_vector(), vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = HierarchicalParams::three_tier_120();
        let a = hierarchical(&p, &mut SmallRng::seed_from_u64(9)).unwrap();
        let b = hierarchical(&p, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.edges(), b.edges());
    }
}
