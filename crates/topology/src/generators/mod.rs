//! Topology generators.
//!
//! * [`from_degree_sequence`] — configuration model with simple-graph and
//!   connectivity repair; the workhorse behind the paper's skewed-degree
//!   topologies (BRITE was modified by the authors to allow "more flexible
//!   degree distributions", §3.1 — this is our equivalent).
//! * [`skewed_topology`] / [`topology_from_spec`] — sample a degree
//!   sequence, place routers uniformly on the grid, build the graph, one AS
//!   per router.
//! * [`waxman`], [`barabasi_albert`], [`glp`] — the BRITE generator menu
//!   the paper lists (§3.1, refs \[15\]–\[17\]).
//! * [`hierarchical`] — an engineered Internet-like hierarchy (Tier-1
//!   clique + transit tiers) used by the routing-policy extension.

mod ba;
mod config_model;
mod glp;
mod hierarchical;
mod waxman;

pub use ba::barabasi_albert;
pub use config_model::from_degree_sequence;
pub use glp::{glp, GlpParams};
pub use hierarchical::{hierarchical, HierarchicalParams};
pub use waxman::{waxman, WaxmanParams};

use rand::Rng;

use crate::degree::{DegreeSpec, SkewedSpec};
use crate::graph::{AsId, Point, Router, Topology, TopologyError};
use crate::placement::{place, DensityModel};

/// Generates a single-router-per-AS topology with the given skewed degree
/// distribution, routers placed uniformly on the 1000×1000 grid.
///
/// This is the paper's default workload: e.g. 120 nodes with the 70-30
/// distribution (70% degree 1–3, 30% degree 8, average 3.8).
///
/// # Errors
///
/// Returns [`TopologyError::GenerationFailed`] if no simple connected graph
/// realizing the sampled degree sequence could be built (retry with another
/// seed; in practice this is vanishingly rare for the paper's parameters).
///
/// # Example
///
/// ```
/// use bgpsim_topology::degree::SkewedSpec;
/// use bgpsim_topology::generators::skewed_topology;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let topo = skewed_topology(60, &SkewedSpec::fifty_fifty(), &mut rng)?;
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn skewed_topology<R: Rng + ?Sized>(
    n: usize,
    spec: &SkewedSpec,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    topology_from_spec(n, &DegreeSpec::Skewed(spec.clone()), rng)
}

/// Generates a single-router-per-AS topology from any [`DegreeSpec`].
///
/// # Errors
///
/// See [`skewed_topology`].
pub fn topology_from_spec<R: Rng + ?Sized>(
    n: usize,
    spec: &DegreeSpec,
    rng: &mut R,
) -> Result<Topology, TopologyError> {
    let positions = place(n, DensityModel::Uniform, rng);
    // Degree sequences whose repair fails are resampled a few times.
    let mut last_err = TopologyError::GenerationFailed("no attempts made".into());
    for _ in 0..100 {
        let degrees = spec.sample(n, rng);
        if !crate::degree::is_graphical(&degrees) {
            last_err = TopologyError::GenerationFailed("sampled sequence not graphical".into());
            continue;
        }
        match from_degree_sequence(&degrees, &positions, rng) {
            Ok(t) => return Ok(t),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Builds the `Topology` wrapper for generators that produce an edge list
/// over `n` single-router ASes.
pub(crate) fn single_as_topology(
    positions: &[Point],
    edges: Vec<(u32, u32)>,
) -> Result<Topology, TopologyError> {
    let routers: Vec<Router> = positions
        .iter()
        .enumerate()
        .map(|(i, &pos)| Router {
            as_id: AsId::new(i as u32),
            pos,
        })
        .collect();
    Topology::new(
        routers,
        edges.into_iter().map(|(a, b)| {
            (
                crate::graph::RouterId::new(a),
                crate::graph::RouterId::new(b),
            )
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn skewed_topology_matches_spec() {
        let mut rng = SmallRng::seed_from_u64(42);
        let topo = skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
        assert_eq!(topo.num_routers(), 120);
        assert_eq!(topo.num_ases(), 120);
        assert!(topo.is_connected());
        assert!(
            (topo.avg_degree() - 3.8).abs() < 0.3,
            "avg {}",
            topo.avg_degree()
        );
        // High-degree class survives construction.
        let high = topo.router_ids().filter(|&r| topo.degree(r) >= 8).count();
        assert!((30..=42).contains(&high), "high-degree count {high}");
    }

    #[test]
    fn all_presets_generate_connected_graphs() {
        for (i, spec) in [
            SkewedSpec::seventy_thirty(),
            SkewedSpec::fifty_fifty(),
            SkewedSpec::eighty_five_fifteen(),
            SkewedSpec::fifty_fifty_dense(),
        ]
        .iter()
        .enumerate()
        {
            let mut rng = SmallRng::seed_from_u64(100 + i as u64);
            let topo = skewed_topology(120, spec, &mut rng).unwrap();
            assert!(topo.is_connected(), "preset {i} disconnected");
            assert!((topo.avg_degree() - spec.mean()).abs() < 0.5);
        }
    }

    #[test]
    fn caida_like_spec_generates_at_scale() {
        // Small enough to stay fast, big enough that the transit tier's
        // power-law tail (hub cap ≈ 4·√n ≈ 98) is actually exercised by
        // the configuration-model construction.
        let mut rng = SmallRng::seed_from_u64(21);
        let spec = crate::degree::caida_like(600);
        let topo = skewed_topology(600, &spec, &mut rng).unwrap();
        assert!(topo.is_connected());
        let stubs = topo.router_ids().filter(|&r| topo.degree(r) <= 3).count();
        assert!(
            (0.70..=0.88).contains(&(stubs as f64 / 600.0)),
            "stub share {} after construction repair",
            stubs as f64 / 600.0
        );
        let max_deg = topo.router_ids().map(|r| topo.degree(r)).max().unwrap();
        assert!(max_deg > 20, "transit tail collapsed: max degree {max_deg}");
    }

    #[test]
    fn power_law_spec_generates() {
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = crate::degree::internet_like(40, 3.4);
        let topo = topology_from_spec(120, &spec, &mut rng).unwrap();
        assert!(topo.is_connected());
        let max_deg = topo.router_ids().map(|r| topo.degree(r)).max().unwrap();
        assert!(max_deg <= 41, "max degree {max_deg} exceeds truncation");
    }
}
