//! Router-level topology graph.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a router (dense, 0-based).
///
/// In single-router-per-AS topologies (the paper's default, §3.1) a router
/// is an AS; in multi-router topologies several routers share an [`AsId`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RouterId(u32);

impl RouterId {
    /// Creates a router id from a dense index.
    pub const fn new(index: u32) -> RouterId {
        RouterId(index)
    }

    /// The dense index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an Autonomous System (dense, 0-based).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AsId(u32);

impl AsId {
    /// Creates an AS id from a dense index.
    pub const fn new(index: u32) -> AsId {
        AsId(index)
    }

    /// The dense index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A point on the placement grid.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A router: position plus AS membership.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// The AS this router belongs to.
    pub as_id: AsId,
    /// Where the router sits on the grid (drives failure-region membership).
    pub pos: Point,
}

/// An undirected link between two routers, stored with `a < b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    a: RouterId,
    b: RouterId,
}

impl Edge {
    /// Creates a normalized (smaller id first) edge.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not valid links).
    pub fn new(a: RouterId, b: RouterId) -> Edge {
        assert!(a != b, "self-loop edge at {a}");
        if a < b {
            Edge { a, b }
        } else {
            Edge { a: b, b: a }
        }
    }

    /// The endpoint with the smaller id.
    pub fn a(self) -> RouterId {
        self.a
    }

    /// The endpoint with the larger id.
    pub fn b(self) -> RouterId {
        self.b
    }

    /// Both endpoints as a tuple `(smaller, larger)`.
    pub fn endpoints(self) -> (RouterId, RouterId) {
        (self.a, self.b)
    }
}

/// Errors from topology construction or validation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An edge references a router index outside the router list.
    EdgeOutOfRange {
        /// The offending router id.
        router: RouterId,
        /// Number of routers in the topology.
        num_routers: usize,
    },
    /// The same undirected edge appears twice.
    DuplicateEdge(Edge),
    /// The topology has no routers.
    Empty,
    /// A generator could not satisfy its constraints (degrees, connectivity).
    GenerationFailed(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EdgeOutOfRange {
                router,
                num_routers,
            } => {
                write!(
                    f,
                    "edge endpoint {router} out of range for {num_routers} routers"
                )
            }
            TopologyError::DuplicateEdge(e) => {
                write!(f, "duplicate edge between {} and {}", e.a, e.b)
            }
            TopologyError::Empty => write!(f, "topology has no routers"),
            TopologyError::GenerationFailed(msg) => write!(f, "generation failed: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Serialized form of a [`Topology`]: the validated raw data.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TopologyData {
    routers: Vec<Router>,
    edges: Vec<Edge>,
}

/// A router-level network topology.
///
/// Immutable once built; adjacency lists and per-AS membership are
/// precomputed. Construct with [`Topology::new`] or one of the generators in
/// [`crate::generators`] / [`crate::multias`].
///
/// # Example
///
/// ```
/// use bgpsim_topology::{Point, Router, RouterId, AsId, Topology};
///
/// let routers = vec![
///     Router { as_id: AsId::new(0), pos: Point::new(0.0, 0.0) },
///     Router { as_id: AsId::new(1), pos: Point::new(3.0, 4.0) },
/// ];
/// let topo = Topology::new(routers, vec![(RouterId::new(0), RouterId::new(1))])?;
/// assert_eq!(topo.degree(RouterId::new(0)), 1);
/// assert!(topo.is_connected());
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    routers: Vec<Router>,
    edges: Vec<Edge>,
    adj: Vec<Vec<RouterId>>,
    as_members: BTreeMap<AsId, Vec<RouterId>>,
}

// Serialization round-trips through `TopologyData` (routers + edges only)
// and revalidates on the way in, so a hand-edited JSON topology can never
// produce an inconsistent adjacency structure. Hand-written impls because
// the vendored serde derive does not support `#[serde(try_from, into)]`.
impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        TopologyData {
            routers: self.routers.clone(),
            edges: self.edges.clone(),
        }
        .to_value()
    }
}

impl Deserialize for Topology {
    fn from_value(v: &serde::Value) -> Result<Topology, serde::Error> {
        let data = TopologyData::from_value(v)?;
        Topology::try_from(data).map_err(serde::Error::custom)
    }
}

impl TryFrom<TopologyData> for Topology {
    type Error = TopologyError;
    fn try_from(data: TopologyData) -> Result<Topology, TopologyError> {
        Topology::new(data.routers, data.edges.into_iter().map(Edge::endpoints))
    }
}

impl From<Topology> for TopologyData {
    fn from(t: Topology) -> TopologyData {
        TopologyData {
            routers: t.routers,
            edges: t.edges,
        }
    }
}

impl Topology {
    /// Builds and validates a topology from routers and undirected edges.
    ///
    /// Edges may be given in any orientation; they are normalized.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Empty`] for an empty router list,
    /// [`TopologyError::EdgeOutOfRange`] for a dangling edge endpoint, and
    /// [`TopologyError::DuplicateEdge`] if the same link appears twice.
    ///
    /// # Panics
    ///
    /// Panics if an edge is a self-loop (see [`Edge::new`]).
    pub fn new<I>(routers: Vec<Router>, edges: I) -> Result<Topology, TopologyError>
    where
        I: IntoIterator<Item = (RouterId, RouterId)>,
    {
        if routers.is_empty() {
            return Err(TopologyError::Empty);
        }
        let n = routers.len();
        let mut normalized: Vec<Edge> = Vec::new();
        for (a, b) in edges {
            for r in [a, b] {
                if r.index() >= n {
                    return Err(TopologyError::EdgeOutOfRange {
                        router: r,
                        num_routers: n,
                    });
                }
            }
            normalized.push(Edge::new(a, b));
        }
        normalized.sort();
        for pair in normalized.windows(2) {
            if pair[0] == pair[1] {
                return Err(TopologyError::DuplicateEdge(pair[0]));
            }
        }
        let mut adj: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        for e in &normalized {
            adj[e.a.index()].push(e.b);
            adj[e.b.index()].push(e.a);
        }
        for list in &mut adj {
            list.sort();
        }
        let mut as_members: BTreeMap<AsId, Vec<RouterId>> = BTreeMap::new();
        for (i, r) in routers.iter().enumerate() {
            as_members
                .entry(r.as_id)
                .or_default()
                .push(RouterId::new(i as u32));
        }
        Ok(Topology {
            routers,
            edges: normalized,
            adj,
            as_members,
        })
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of distinct ASes.
    pub fn num_ases(&self) -> usize {
        self.as_members.len()
    }

    /// Number of undirected links.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The router record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Iterator over all router ids in increasing order.
    pub fn router_ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.routers.len() as u32).map(RouterId::new)
    }

    /// Iterator over all AS ids in increasing order.
    pub fn as_ids(&self) -> impl Iterator<Item = AsId> + '_ {
        self.as_members.keys().copied()
    }

    /// All undirected links.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `id`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: RouterId) -> &[RouterId] {
        &self.adj[id.index()]
    }

    /// Degree (number of incident links) of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn degree(&self, id: RouterId) -> usize {
        self.adj[id.index()].len()
    }

    /// Mean router degree, `2·|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.edges.len() as f64 / self.routers.len() as f64
    }

    /// Routers belonging to `as_id` (empty slice if the AS does not exist).
    pub fn as_members(&self, as_id: AsId) -> &[RouterId] {
        self.as_members
            .get(&as_id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of *inter-AS* links incident to `as_id` (the AS-level degree
    /// used when the paper speaks of node degree in multi-router networks).
    pub fn inter_as_degree(&self, as_id: AsId) -> usize {
        self.edges
            .iter()
            .filter(|e| {
                let (a, b) = (
                    self.routers[e.a.index()].as_id,
                    self.routers[e.b.index()].as_id,
                );
                a != b && (a == as_id || b == as_id)
            })
            .count()
    }

    /// Whether the link between `a` and `b` crosses an AS boundary.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn is_inter_as(&self, a: RouterId, b: RouterId) -> bool {
        self.routers[a.index()].as_id != self.routers[b.index()].as_id
    }

    /// Whether every router can reach every other router.
    pub fn is_connected(&self) -> bool {
        self.components().len() == 1
    }

    /// Connected components, each a sorted list of router ids; components
    /// are ordered by their smallest member.
    pub fn components(&self) -> Vec<Vec<RouterId>> {
        let n = self.routers.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([RouterId::new(start as u32)]);
            seen[start] = true;
            while let Some(r) = queue.pop_front() {
                comp.push(r);
                for &nb in self.neighbors(r) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push_back(nb);
                    }
                }
            }
            comp.sort();
            comps.push(comp);
        }
        comps
    }

    /// Degree histogram: `hist[d]` = number of routers with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for list in &self.adj {
            hist[list.len()] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(as_id: u32, x: f64, y: f64) -> Router {
        Router {
            as_id: AsId::new(as_id),
            pos: Point::new(x, y),
        }
    }

    fn id(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn line4() -> Topology {
        Topology::new(
            vec![
                r(0, 0.0, 0.0),
                r(1, 1.0, 0.0),
                r(2, 2.0, 0.0),
                r(3, 3.0, 0.0),
            ],
            vec![(id(0), id(1)), (id(1), id(2)), (id(2), id(3))],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_exposes_basic_shape() {
        let t = line4();
        assert_eq!(t.num_routers(), 4);
        assert_eq!(t.num_ases(), 4);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.degree(id(1)), 2);
        assert_eq!(t.neighbors(id(1)), &[id(0), id(2)]);
        assert_eq!(t.avg_degree(), 1.5);
        assert!(t.is_connected());
    }

    #[test]
    fn edges_are_normalized_and_deduped() {
        let t = Topology::new(vec![r(0, 0.0, 0.0), r(1, 0.0, 0.0)], vec![(id(1), id(0))]).unwrap();
        assert_eq!(t.edges()[0].endpoints(), (id(0), id(1)));
        let dup = Topology::new(
            vec![r(0, 0.0, 0.0), r(1, 0.0, 0.0)],
            vec![(id(0), id(1)), (id(1), id(0))],
        );
        assert!(matches!(dup, Err(TopologyError::DuplicateEdge(_))));
    }

    #[test]
    fn rejects_out_of_range_and_empty() {
        let err = Topology::new(vec![r(0, 0.0, 0.0)], vec![(id(0), id(5))]);
        assert!(matches!(err, Err(TopologyError::EdgeOutOfRange { .. })));
        assert!(matches!(
            Topology::new(vec![], vec![]),
            Err(TopologyError::Empty)
        ));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Topology::new(vec![r(0, 0.0, 0.0)], vec![(id(0), id(0))]);
    }

    #[test]
    fn components_found() {
        let t = Topology::new(
            vec![
                r(0, 0.0, 0.0),
                r(1, 0.0, 0.0),
                r(2, 0.0, 0.0),
                r(3, 0.0, 0.0),
            ],
            vec![(id(0), id(1)), (id(2), id(3))],
        )
        .unwrap();
        assert!(!t.is_connected());
        let comps = t.components();
        assert_eq!(comps, vec![vec![id(0), id(1)], vec![id(2), id(3)]]);
    }

    #[test]
    fn as_membership_and_inter_as() {
        let t = Topology::new(
            vec![r(0, 0.0, 0.0), r(0, 1.0, 0.0), r(1, 2.0, 0.0)],
            vec![(id(0), id(1)), (id(1), id(2))],
        )
        .unwrap();
        assert_eq!(t.num_ases(), 2);
        assert_eq!(t.as_members(AsId::new(0)), &[id(0), id(1)]);
        assert!(!t.is_inter_as(id(0), id(1)));
        assert!(t.is_inter_as(id(1), id(2)));
        assert_eq!(t.inter_as_degree(AsId::new(0)), 1);
        assert_eq!(t.inter_as_degree(AsId::new(1)), 1);
        assert!(t.as_members(AsId::new(9)).is_empty());
    }

    #[test]
    fn degree_histogram_counts() {
        let t = line4();
        assert_eq!(t.degree_histogram(), vec![0, 2, 2]);
    }

    #[test]
    fn point_distance() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = line4();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_routers(), 4);
        assert_eq!(back.edges(), t.edges());
        assert_eq!(back.neighbors(id(1)), t.neighbors(id(1)));
    }

    #[test]
    fn serde_rejects_invalid() {
        let json = r#"{"routers":[{"as_id":0,"pos":{"x":0.0,"y":0.0}}],
                       "edges":[{"a":0,"b":9}]}"#;
        assert!(serde_json::from_str::<Topology>(json).is_err());
    }
}
