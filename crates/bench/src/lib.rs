//! Shared driver for the figure-regeneration binaries.
//!
//! Each `src/bin/figNN.rs` regenerates one figure of the paper and prints
//! the same series the figure plots. Sizing is controlled by environment
//! variables so the full-fidelity run and the quick smoke run share one
//! binary:
//!
//! | variable          | default | meaning                         |
//! |-------------------|---------|---------------------------------|
//! | `BGPSIM_NODES`    | 120     | nodes (ASes) per topology       |
//! | `BGPSIM_TRIALS`   | 3       | seeded trials per point         |
//! | `BGPSIM_SEED`     | 2006    | base seed                       |
//! | `BGPSIM_THREADS`  | auto    | worker threads                  |
//! | `BGPSIM_OUT`      | (none)  | directory for .txt/.csv/.json   |

use std::path::Path;
use std::time::Instant;

use bgpsim::figures::{FigOpts, FigureData};
use bgpsim::report::{render_csv, render_table};

/// Reads the sizing environment variables.
pub fn opts_from_env() -> FigOpts {
    let mut opts = FigOpts::default();
    if let Ok(v) = std::env::var("BGPSIM_NODES") {
        opts.nodes = v.parse().expect("BGPSIM_NODES must be an integer");
    }
    if let Ok(v) = std::env::var("BGPSIM_TRIALS") {
        opts.trials = v.parse().expect("BGPSIM_TRIALS must be an integer");
    }
    if let Ok(v) = std::env::var("BGPSIM_SEED") {
        opts.base_seed = v.parse().expect("BGPSIM_SEED must be an integer");
    }
    if let Ok(v) = std::env::var("BGPSIM_THREADS") {
        opts.threads = Some(v.parse().expect("BGPSIM_THREADS must be an integer"));
    }
    opts
}

/// Parses the `BGPSIM_ONLY` filter (comma-separated experiment ids); an
/// empty result means "run everything".
pub fn only_filter() -> Vec<String> {
    std::env::var("BGPSIM_ONLY")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default()
}

/// Whether `id` passes the `BGPSIM_ONLY` filter.
pub fn selected(only: &[String], id: &str) -> bool {
    only.is_empty() || only.iter().any(|o| o == id)
}

/// Regenerates a figure, prints its table, and (if `BGPSIM_OUT` is set)
/// writes `figNN.txt`, `figNN.csv` and `figNN.json` into that directory.
pub fn run_and_print(figure: fn(FigOpts) -> FigureData) {
    let opts = opts_from_env();
    let started = Instant::now();
    let data = figure(opts);
    let table = render_table(&data);
    println!("{table}");
    println!(
        "(nodes={}, trials={}, seed={}; regenerated in {:.1}s)",
        opts.nodes,
        opts.trials,
        opts.base_seed,
        started.elapsed().as_secs_f64()
    );
    if let Ok(dir) = std::env::var("BGPSIM_OUT") {
        write_outputs(&data, Path::new(&dir));
    }
}

/// Writes the three output files for a regenerated figure.
pub fn write_outputs(data: &FigureData, dir: &Path) {
    std::fs::create_dir_all(dir).expect("create output directory");
    let base = dir.join(&data.id);
    std::fs::write(base.with_extension("txt"), render_table(data)).expect("write table");
    std::fs::write(base.with_extension("csv"), render_csv(data)).expect("write csv");
    std::fs::write(
        base.with_extension("json"),
        serde_json::to_string_pretty(data).expect("figure serializes"),
    )
    .expect("write json");
}
