//! Regenerates the full-table axis: convergence delay and transient
//! invalid episodes versus routing-table size under a centre burst
//! withdrawal. See `bgpsim::figures::fig_fulltable`.
//!
//! `BGPSIM_TABLE_SIZES` (comma-separated prefix counts) overrides the
//! default `1000,3000,10000,30000` sweep; the usual `BGPSIM_NODES` /
//! `BGPSIM_TRIALS` / `BGPSIM_SEED` / `BGPSIM_OUT` knobs apply. The
//! default 120-node topology makes the 30k point the expensive one
//! (~3.6M routes per trial) — drop `BGPSIM_NODES` for a quick pass.
fn main() {
    let sizes: Vec<u32> = std::env::var("BGPSIM_TABLE_SIZES")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("BGPSIM_TABLE_SIZES: integer list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1_000, 3_000, 10_000, 30_000]);
    let opts = bgpsim_bench::opts_from_env();
    let started = std::time::Instant::now();
    let data = bgpsim::figures::fig_fulltable(opts, &sizes);
    println!("{}", bgpsim::report::render_table(&data));
    println!(
        "(nodes={}, trials={}, seed={}, sizes={sizes:?}; regenerated in {:.1}s)",
        opts.nodes,
        opts.trials,
        opts.base_seed,
        started.elapsed().as_secs_f64()
    );
    if let Ok(dir) = std::env::var("BGPSIM_OUT") {
        bgpsim_bench::write_outputs(&data, std::path::Path::new(&dir));
    }
}
