//! Regenerates Figure 08 of the paper. See `bgpsim::figures::fig08`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig08);
}
