//! `largescale` — Internet-scale memory smoke trial.
//!
//! Runs ONE failure experiment on a `caida_like` topology (default
//! 10,000 single-router ASes, ~4.2 average degree, 82% stubs — see
//! `bgpsim_topology::degree::caida_like`) under the paper's batching
//! scheme, failing 10% of the routers around the grid centre, and
//! reports per-phase wall-clock plus the memory numbers the compact
//! delta-encoded RIBs are accountable to (DESIGN.md §12): process peak
//! RSS (`VmHWM`), routing-state heap bytes per route
//! (`Network::memory_footprint`), the largest single router's RIB heap
//! (hubs dominate at this scale) and the interned config-arena entry
//! count.
//!
//! ```text
//! largescale [--nodes N] [--failure F] [--table-size P] [--seed S]
//!            [--rss-ceiling-mb M] [--out PATH]
//! ```
//!
//! `--table-size P` switches to the full-table workload: `P` prefixes
//! total, power-law split across ASes through the longest-prefix-match
//! trie, and the failure step becomes a *burst withdrawal* — the central
//! `--failure` fraction's origins stay up but withdraw their whole prefix
//! blocks in one event storm. This is the table-size axis of the memory
//! gate: routes scale with `nodes × P` instead of `nodes²`.
//!
//! `--rss-ceiling-mb` turns the trial into a hard gate: the process
//! exits non-zero if peak RSS exceeds the ceiling. CI's `largescale`
//! job runs this bin with a ceiling so a memory regression at Internet
//! scale fails the build instead of silently eating the runner. The
//! smaller 120/512-node memory points live in the `hotpath` harness's
//! `memory` section; this bin exists because the 10k-AS point takes
//! long enough to deserve its own job (and log progress per phase).
//!
//! The post-failure routing state is checked against ground-truth
//! reachability (`assert_routing_consistent`) — this is a smoke trial,
//! not just a stopwatch.

use std::process::ExitCode;
use std::time::Instant;

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_topology::degree::caida_like;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Debug)]
struct Args {
    nodes: usize,
    failure: f64,
    table_size: Option<u32>,
    seed: u64,
    rss_ceiling_mb: Option<u64>,
    out: String,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            nodes: 10_000,
            failure: 0.10,
            table_size: None,
            seed: 101,
            rss_ceiling_mb: None,
            out: "BENCH_largescale.json".into(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--failure" => {
                args.failure = value("--failure")?
                    .parse()
                    .map_err(|e| format!("--failure: {e}"))?;
            }
            "--table-size" => {
                args.table_size = Some(
                    value("--table-size")?
                        .parse()
                        .map_err(|e| format!("--table-size: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--rss-ceiling-mb" => {
                args.rss_ceiling_mb = Some(
                    value("--rss-ceiling-mb")?
                        .parse()
                        .map_err(|e| format!("--rss-ceiling-mb: {e}"))?,
                );
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: largescale [--nodes N] [--failure F] [--table-size P] [--seed S] \
         [--rss-ceiling-mb M] [--out PATH]"
    );
}

/// Peak resident set size in kB, from `/proc/self/status` (`VmHWM`).
/// This bin runs one trial in a fresh process, so the watermark needs no
/// reset — it *is* the trial's peak.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn footprint_json(fp: &bgpsim::MemoryFootprint) -> serde_json::Value {
    serde_json::json!({
        "routes": fp.routes,
        "rib_heap_bytes": fp.rib_heap_bytes,
        "rib_bytes_per_route": fp.bytes_per_route(),
        "max_node_rib_heap_bytes": fp.max_node_rib_heap_bytes,
        "config_arena_entries": fp.config_arena_entries,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let mut scheme = Scheme::batching(0.5);
    if let Some(table) = args.table_size {
        scheme = scheme.with_full_table(bgpsim::FullTableSpec::internet_like(table));
    }
    let failure_kind = if args.table_size.is_some() {
        "centre burst withdrawal"
    } else {
        "centre failure"
    };
    println!(
        "largescale smoke: {} caida-like ASes{}, {} scheme, {:.0}% {failure_kind}, seed {}",
        args.nodes,
        args.table_size
            .map(|t| format!(" × {t}-prefix full table"))
            .unwrap_or_default(),
        scheme.name,
        args.failure * 100.0,
        args.seed
    );

    let started = Instant::now();
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let topo = match skewed_topology(args.nodes, &caida_like(args.nodes), &mut rng) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: topology generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topology_secs = started.elapsed().as_secs_f64();
    println!(
        "  topology:       {topology_secs:7.2} s   ({} links, avg degree {:.2})",
        topo.num_edges(),
        topo.avg_degree()
    );
    let avg_degree = topo.avg_degree();
    let links = topo.num_edges();

    let started = Instant::now();
    let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, args.seed));
    net.run_initial_convergence();
    let converge_secs = started.elapsed().as_secs_f64();
    let converged_fp = net.memory_footprint();
    println!(
        "  convergence:    {converge_secs:7.2} s   ({} routes, RIB {:.1} B/route, {} config(s))",
        converged_fp.routes,
        converged_fp.bytes_per_route(),
        converged_fp.config_arena_entries
    );

    let started = Instant::now();
    let withdrawn = if args.table_size.is_some() {
        let w = net.inject_burst_withdrawal(&FailureSpec::CenterFraction(args.failure));
        println!(
            "  burst:          {} prefixes withdrawn in one storm",
            w.len()
        );
        w.len()
    } else {
        net.inject_failure(&FailureSpec::CenterFraction(args.failure));
        0
    };
    let stats = net.run_to_quiescence();
    let reconverge_secs = started.elapsed().as_secs_f64();
    println!(
        "  re-convergence: {reconverge_secs:7.2} s   ({} events, {} messages, delay {:.1} s sim-time)",
        stats.events,
        stats.messages,
        stats.convergence_delay.as_secs_f64()
    );

    net.assert_routing_consistent();
    // Sharded runs (BGPSIM_SHARDS > 1) accumulate a per-phase wall-clock
    // split; at Internet scale the Amdahl view (DESIGN.md §10) is the
    // number that matters, so print and record it whenever it is nonzero.
    let phases = net.shard_phase_timings();
    if phases.epochs > 0 {
        println!(
            "  shard phases:   drain {:.2} s | A {:.2} s | walk {:.2} s | commit+merge {:.2} s | \
             exchange {:.2} s ({}/{} epochs parallel, serial fraction {:.0}%)",
            phases.drain_secs,
            phases.phase_a_secs,
            phases.phase_b_secs,
            phases.merge_secs,
            phases.mailbox_exchange_secs,
            phases.parallel_commit_epochs,
            phases.epochs,
            phases.serial_fraction() * 100.0
        );
    }
    let final_fp = net.memory_footprint();
    let peak = peak_rss_kb();
    let rss_bytes_per_route = peak
        .filter(|_| final_fp.routes > 0)
        .map(|kb| kb as f64 * 1024.0 / final_fp.routes as f64);
    match peak {
        Some(kb) => println!(
            "  peak RSS:       {:7.1} MB  (RSS {:.1} B/route, node high-water {} kB)",
            kb as f64 / 1024.0,
            rss_bytes_per_route.unwrap_or(0.0),
            final_fp.max_node_rib_heap_bytes / 1024
        ),
        None => println!("  peak RSS:       unavailable (/proc/self/status unreadable)"),
    }

    let ceiling_exceeded = match (args.rss_ceiling_mb, peak) {
        (Some(ceiling), Some(kb)) => kb > ceiling * 1024,
        _ => false,
    };
    let payload = serde_json::json!({
        "harness": "largescale",
        "nodes": args.nodes,
        "links": links,
        "avg_degree": avg_degree,
        "scheme": scheme.name,
        "failure_fraction": args.failure,
        "table_size": args.table_size,
        "withdrawn_prefixes": withdrawn,
        "seed": args.seed,
        "topology_secs": topology_secs,
        "convergence_secs": converge_secs,
        "reconvergence_secs": reconverge_secs,
        "events": stats.events,
        "messages": stats.messages,
        "convergence_delay_secs": stats.convergence_delay.as_secs_f64(),
        "peak_rss_kb": peak,
        "peak_rss_bytes_per_route": rss_bytes_per_route,
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "ceiling_exceeded": ceiling_exceeded,
        "routing_consistent": true,
        "shards": net.shard_count(),
        "commit_streams": net.commit_stream_count(),
        "shard_phases": if phases.epochs > 0 {
            serde_json::json!({
                "epochs": phases.epochs,
                "parallel_commit_epochs": phases.parallel_commit_epochs,
                "inline_phase_a_epochs": phases.inline_phase_a_epochs,
                "drain_secs": phases.drain_secs,
                "phase_a_secs": phases.phase_a_secs,
                "phase_b_secs": phases.phase_b_secs,
                "merge_secs": phases.merge_secs,
                "mailbox_exchange_secs": phases.mailbox_exchange_secs,
                "serial_fraction": phases.serial_fraction(),
            })
        } else {
            serde_json::Value::Null
        },
        "converged": footprint_json(&converged_fp),
        "final": footprint_json(&final_fp),
    });
    let text = serde_json::to_string_pretty(&payload).expect("serializable") + "\n";
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  written to {}", args.out);

    if ceiling_exceeded {
        eprintln!(
            "error: peak RSS {} kB exceeds the {} MB ceiling",
            peak.unwrap_or(0),
            args.rss_ceiling_mb.unwrap_or(0)
        );
        return ExitCode::FAILURE;
    }
    if let Some(ceiling) = args.rss_ceiling_mb {
        println!("  PASSED: peak RSS within the {ceiling} MB ceiling (routing state consistent)");
    }
    ExitCode::SUCCESS
}
