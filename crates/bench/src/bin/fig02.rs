//! Regenerates Figure 02 of the paper. See `bgpsim::figures::fig02`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig02);
}
