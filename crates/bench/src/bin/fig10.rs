//! Regenerates Figure 10 of the paper. See `bgpsim::figures::fig10`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig10);
}
