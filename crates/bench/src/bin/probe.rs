//! Quick performance/shape probe (not a paper figure).
use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

fn run(scheme: Scheme, frac: f64) -> (f64, f64) {
    let exp = Experiment {
        topology: TopologySpec::seventy_thirty(120),
        scheme,
        failure: FailureSpec::CenterFraction(frac),
        trials: 3,
        base_seed: 7,
    };
    let agg = exp.run();
    (agg.mean_delay_secs(), agg.mean_messages())
}

fn main() {
    println!("V-curve, 70-30, delay(s) by MRAI for 1% / 5% failures:");
    for mrai in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.25, 3.0, 4.0] {
        let (d1, _) = run(Scheme::constant_mrai(mrai), 0.01);
        let (d5, _) = run(Scheme::constant_mrai(mrai), 0.05);
        println!("  mrai={mrai:>5}  1%={d1:>8.2}  5%={d5:>8.2}");
    }
    println!("Schemes at 5% and 20%:");
    for (name, s) in [
        ("dynamic", Scheme::dynamic_default()),
        ("batch0.5", Scheme::batching(0.5)),
        ("batch+dyn", Scheme::batching_plus_dynamic()),
        ("const0.5", Scheme::constant_mrai(0.5)),
        ("const2.25", Scheme::constant_mrai(2.25)),
    ] {
        let (d5, m5) = run(s.clone(), 0.05);
        let (d20, m20) = run(s, 0.20);
        println!("  {name:>10}  5%: {d5:>8.2}s {m5:>9.0}m   20%: {d20:>8.2}s {m20:>9.0}m");
    }
}
