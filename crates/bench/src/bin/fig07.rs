//! Regenerates Figure 07 of the paper. See `bgpsim::figures::fig07`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig07);
}
