//! Regenerates Figure 13 of the paper. See `bgpsim::figures::fig13`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig13);
}
