//! Regenerates Figure 03 of the paper. See `bgpsim::figures::fig03`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig03);
}
