//! Regenerates Figure 05 of the paper. See `bgpsim::figures::fig05`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig05);
}
