//! Regenerates Figure 11 of the paper. See `bgpsim::figures::fig11`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig11);
}
