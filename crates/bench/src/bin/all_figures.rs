//! Regenerates every figure of the paper in sequence, printing each table
//! and writing .txt/.csv/.json artifacts when `BGPSIM_OUT` is set.
use std::time::Instant;

fn main() {
    let opts = bgpsim_bench::opts_from_env();
    let only = bgpsim_bench::only_filter();
    let total = Instant::now();
    for (id, figure) in bgpsim::figures::all_figures() {
        if !bgpsim_bench::selected(&only, id) {
            continue;
        }
        let started = Instant::now();
        let data = figure(opts);
        println!("{}", bgpsim::report::render_table(&data));
        println!("[{id} in {:.1}s]\n", started.elapsed().as_secs_f64());
        if let Ok(dir) = std::env::var("BGPSIM_OUT") {
            bgpsim_bench::write_outputs(&data, std::path::Path::new(&dir));
        }
    }
    println!(
        "all 13 figures regenerated in {:.1}s (nodes={}, trials={}, seed={})",
        total.elapsed().as_secs_f64(),
        opts.nodes,
        opts.trials,
        opts.base_seed
    );
}
