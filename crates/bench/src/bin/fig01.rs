//! Regenerates Figure 01 of the paper. See `bgpsim::figures::fig01`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig01);
}
