//! Regenerates Figure 09 of the paper. See `bgpsim::figures::fig09`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig09);
}
