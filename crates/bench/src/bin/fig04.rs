//! Regenerates Figure 04 of the paper. See `bgpsim::figures::fig04`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig04);
}
