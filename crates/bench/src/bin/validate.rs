//! Validates the regenerated figures against the paper's qualitative
//! claims (the expected-shape criteria in DESIGN.md §4).
//!
//! Reads the `figNN.json` artifacts produced by `all_figures` (set
//! `BGPSIM_OUT`) from the directory given as the first argument (default
//! `results/`) and prints PASS/FAIL per criterion. Exit code 1 if any
//! criterion fails.
//!
//! ```sh
//! BGPSIM_OUT=results cargo run --release -p bgpsim-bench --bin all_figures
//! cargo run --release -p bgpsim-bench --bin validate -- results
//! ```

use std::path::Path;
use std::process::ExitCode;

use bgpsim::figures::FigureData;

struct Checker {
    dir: String,
    failures: usize,
    checks: usize,
}

impl Checker {
    fn load(&self, id: &str) -> Option<FigureData> {
        let path = Path::new(&self.dir).join(format!("{id}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| eprintln!("skipping {id}: cannot read {}: {e}", path.display()))
            .ok()?;
        serde_json::from_str(&text)
            .map_err(|e| eprintln!("skipping {id}: bad JSON: {e}"))
            .ok()
    }

    fn check(&mut self, label: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {label}  ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {label}  ({detail})");
        }
    }
}

/// y value of `series` at the point whose x is closest to `x`.
fn at(fig: &FigureData, series: &str, x: f64) -> Option<f64> {
    let s = fig.series_named(series)?;
    s.points
        .iter()
        .min_by(|a, b| {
            (a.0 - x)
                .abs()
                .partial_cmp(&(b.0 - x).abs())
                .expect("finite x")
        })
        .map(|&(_, y)| y)
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut c = Checker {
        dir,
        failures: 0,
        checks: 0,
    };

    if let Some(f) = c.load("fig01") {
        let d_small_low = at(&f, "MRAI=0.5", 1.0).unwrap_or(f64::NAN);
        let d_small_high = at(&f, "MRAI=2.25", 1.0).unwrap_or(f64::NAN);
        let d_big_low = at(&f, "MRAI=0.5", 20.0).unwrap_or(f64::NAN);
        let d_big_high = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig01: low MRAI wins small failures",
            d_small_low < d_small_high,
            format!("0.5→{d_small_low:.1}s vs 2.25→{d_small_high:.1}s at 1%"),
        );
        c.check(
            "fig01: low MRAI blows up at 20%",
            d_big_low > 2.0 * d_big_high,
            format!("0.5→{d_big_low:.1}s vs 2.25→{d_big_high:.1}s at 20%"),
        );
    }

    if let Some(f) = c.load("fig02") {
        let m_low = at(&f, "MRAI=0.5", 20.0).unwrap_or(f64::NAN);
        let m_high = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig02: message storm at low MRAI",
            m_low > 2.0 * m_high,
            format!("0.5→{m_low:.0} vs 2.25→{m_high:.0} messages at 20%"),
        );
    }

    if let Some(f) = c.load("fig03") {
        let opt1 = f.argmin_of("1% failure").unwrap_or(f64::NAN);
        let opt5 = f.argmin_of("5% failure").unwrap_or(f64::NAN);
        let opt10 = f.argmin_of("10% failure").unwrap_or(f64::NAN);
        c.check(
            "fig03: optimal MRAI grows with failure size",
            opt1 <= opt5 && opt5 <= opt10 && opt1 < opt10,
            format!("optima {opt1} ≤ {opt5} ≤ {opt10}"),
        );
        // V shape for 5%: interior minimum.
        if let Some(s) = f.series_named("5% failure") {
            let first = s.points.first().map(|&(_, y)| y).unwrap_or(f64::NAN);
            let last = s.points.last().map(|&(_, y)| y).unwrap_or(f64::NAN);
            let min = s
                .points
                .iter()
                .map(|&(_, y)| y)
                .fold(f64::INFINITY, f64::min);
            c.check(
                "fig03: V-shaped 5% curve",
                min < first && min < last,
                format!("ends {first:.1}/{last:.1}s, interior min {min:.1}s"),
            );
        }
    }

    if let Some(f) = c.load("fig04") {
        let o50 = f.argmin_of("50-50").unwrap_or(f64::NAN);
        let o70 = f.argmin_of("70-30").unwrap_or(f64::NAN);
        let o85 = f.argmin_of("85-15").unwrap_or(f64::NAN);
        c.check(
            "fig04: optimum grows with hub degree",
            o50 <= o70 && o70 <= o85 && o50 < o85,
            format!("optima 50-50:{o50} 70-30:{o70} 85-15:{o85}"),
        );
    }

    if let Some(f) = c.load("fig05") {
        let sparse = f.argmin_of("avg degree 3.8").unwrap_or(f64::NAN);
        let dense = f.argmin_of("avg degree 7.6").unwrap_or(f64::NAN);
        let min_sparse = f
            .series_named("avg degree 3.8")
            .map(|s| {
                s.points
                    .iter()
                    .map(|&(_, y)| y)
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap_or(f64::NAN);
        let min_dense = f
            .series_named("avg degree 7.6")
            .map(|s| {
                s.points
                    .iter()
                    .map(|&(_, y)| y)
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap_or(f64::NAN);
        c.check(
            "fig05: higher avg degree shifts optimum right and up",
            sparse <= dense && min_sparse < min_dense,
            format!("optima {sparse}→{dense}, min delays {min_sparse:.1}→{min_dense:.1}s"),
        );
    }

    if let Some(f) = c.load("fig06") {
        let good = at(&f, "low 0.5, high 2.25", 20.0).unwrap_or(f64::NAN);
        let rev = at(&f, "low 2.25, high 0.5", 20.0).unwrap_or(f64::NAN);
        let c05 = at(&f, "MRAI=0.5", 20.0).unwrap_or(f64::NAN);
        let c225 = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig06: high MRAI belongs at the hubs",
            good < 1.5 * c225 && good < 0.6 * c05 && rev > 1.2 * good,
            format!("good {good:.1}, reversed {rev:.1}, 0.5 {c05:.1}, 2.25 {c225:.1}s"),
        );
    }

    if let Some(f) = c.load("fig07") {
        let dyn_small = at(&f, "dynamic", 1.0).unwrap_or(f64::NAN);
        let c05_small = at(&f, "MRAI=0.5", 1.0).unwrap_or(f64::NAN);
        let dyn_big = at(&f, "dynamic", 20.0).unwrap_or(f64::NAN);
        let c05_big = at(&f, "MRAI=0.5", 20.0).unwrap_or(f64::NAN);
        let c125_big = at(&f, "MRAI=1.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig07: dynamic near best constant at both ends",
            dyn_small < 1.5 * c05_small + 5.0
                && dyn_big < c05_big * 0.6
                && dyn_big <= c125_big * 1.3,
            format!(
                "small: dyn {dyn_small:.1} vs 0.5 {c05_small:.1}; \
                 20%: dyn {dyn_big:.1} vs 0.5 {c05_big:.1} vs 1.25 {c125_big:.1}"
            ),
        );
    }

    if let Some(f) = c.load("fig08") {
        let strict_small = at(&f, "upTh=0.05", 1.0).unwrap_or(f64::NAN);
        let loose_small = at(&f, "upTh=1.25", 1.0).unwrap_or(f64::NAN);
        let strict_big = at(&f, "upTh=0.05", 20.0).unwrap_or(f64::NAN);
        let loose_big = at(&f, "upTh=1.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig08: low upTh acts like a high constant MRAI",
            strict_small >= loose_small && strict_big <= loose_big * 1.2,
            format!(
                "1%: {strict_small:.1} vs {loose_small:.1}; 20%: {strict_big:.1} vs {loose_big:.1}"
            ),
        );
    }

    if let Some(f) = c.load("fig09") {
        let low = at(&f, "downTh=0", 20.0).unwrap_or(f64::NAN);
        let high = at(&f, "downTh=0.5", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig09: eager down-stepping hurts large failures",
            high >= low * 0.9,
            format!("20%: downTh=0 → {low:.1}s, downTh=0.5 → {high:.1}s"),
        );
    }

    if let Some(f) = c.load("fig10") {
        let batch = at(&f, "batching", 20.0).unwrap_or(f64::NAN);
        let c05 = at(&f, "MRAI=0.5", 20.0).unwrap_or(f64::NAN);
        let batch_small = at(&f, "batching", 1.0).unwrap_or(f64::NAN);
        let c05_small = at(&f, "MRAI=0.5", 1.0).unwrap_or(f64::NAN);
        c.check(
            "fig10: batching ≥3× better at 20%",
            c05 > 3.0 * batch,
            format!("batching {batch:.1}s vs FIFO {c05:.1}s"),
        );
        c.check(
            "fig10: batching free for small failures",
            batch_small <= c05_small * 1.5 + 5.0,
            format!("1%: batching {batch_small:.1}s vs FIFO {c05_small:.1}s"),
        );
    }

    if let Some(f) = c.load("fig11") {
        let batch = at(&f, "batching", 20.0).unwrap_or(f64::NAN);
        let c05 = at(&f, "MRAI=0.5", 20.0).unwrap_or(f64::NAN);
        let c225 = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "fig11: batching suppresses the message storm",
            batch < 0.5 * c05 && batch < 3.0 * c225,
            format!("batching {batch:.0}, 0.5 {c05:.0}, 2.25 {c225:.0} messages"),
        );
    }

    if let Some(f) = c.load("fig12") {
        let fifo_low = at(&f, "no batching", 0.5).unwrap_or(f64::NAN);
        let batch_low = at(&f, "batching", 0.5).unwrap_or(f64::NAN);
        let fifo_high = at(&f, "no batching", 4.0).unwrap_or(f64::NAN);
        let batch_high = at(&f, "batching", 4.0).unwrap_or(f64::NAN);
        c.check(
            "fig12: batching only matters below the optimal MRAI",
            batch_low < fifo_low * 0.8 && (0.5..1.5).contains(&(batch_high / fifo_high)),
            format!(
                "MRAI 0.5: {batch_low:.1} vs {fifo_low:.1}s; MRAI 4: {batch_high:.1} vs {fifo_high:.1}s"
            ),
        );
    }

    if let Some(f) = c.load("fig13") {
        let batch = at(&f, "batching", 10.0).unwrap_or(f64::NAN);
        let dynamic = at(&f, "dynamic", 10.0).unwrap_or(f64::NAN);
        let c05 = at(&f, "MRAI=0.5", 10.0).unwrap_or(f64::NAN);
        c.check(
            "fig13: schemes hold up on realistic topologies",
            batch < c05 && dynamic < c05,
            format!("10%: batching {batch:.1}, dynamic {dynamic:.1}, 0.5 {c05:.1}s"),
        );
    }

    // ------------------------------------------------------------------
    // Extension experiments (present only after `--bin extensions` ran).
    // ------------------------------------------------------------------

    if let Some(f) = c.load("ext-oracle") {
        let oracle_small = at(&f, "oracle", 1.0).unwrap_or(f64::NAN);
        let c05_small = at(&f, "MRAI=0.5", 1.0).unwrap_or(f64::NAN);
        let oracle_big = at(&f, "oracle", 20.0).unwrap_or(f64::NAN);
        let c225_big = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        c.check(
            "ext-oracle: tracks the best constant at both ends",
            oracle_small < 1.5 * c05_small + 5.0 && oracle_big < 1.3 * c225_big,
            format!(
                "1%: oracle {oracle_small:.1} vs 0.5 {c05_small:.1};                  20%: oracle {oracle_big:.1} vs 2.25 {c225_big:.1}"
            ),
        );
    }

    if let Some(f) = c.load("ext-detectors") {
        let work = at(&f, "unfinished work", 10.0).unwrap_or(f64::NAN);
        let count = at(&f, "update count", 10.0).unwrap_or(f64::NAN);
        c.check(
            "ext-detectors: unfinished work beats raw update counts",
            work < 0.7 * count,
            format!("10%: work {work:.1}s vs count {count:.1}s"),
        );
    }

    if let Some(f) = c.load("ext-expedite-msgs") {
        let base = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        let exp = at(&f, "MRAI=2.25 + expedite", 20.0).unwrap_or(f64::NAN);
        c.check(
            "ext-expedite: extra messages, as the paper says of [12]",
            exp > base,
            format!("20%: {exp:.0} vs {base:.0} messages"),
        );
    }

    if let Some(f) = c.load("ext-policy") {
        let without = at(&f, "no policy", 10.0).unwrap_or(f64::NAN);
        let with = at(&f, "Gao-Rexford", 10.0).unwrap_or(f64::NAN);
        c.check(
            "ext-policy: valley-free export prunes path hunting",
            with < without,
            format!("10%: Gao-Rexford {with:.1}s vs no policy {without:.1}s"),
        );
    }

    if let Some(f) = c.load("ext-detection") {
        let instant = at(&f, "instant detection", 5.0).unwrap_or(f64::NAN);
        let held = at(&f, "hold timer 90 s", 5.0).unwrap_or(f64::NAN);
        c.check(
            "ext-detection: the 90 s hold timer dominates",
            held > instant + 50.0,
            format!("5%: held {held:.1}s vs instant {instant:.1}s"),
        );
    }

    if let Some(f) = c.load("ext-destinations") {
        let one = at(&f, "fifo, 1 pfx/AS", 10.0).unwrap_or(f64::NAN);
        let eight = at(&f, "fifo, 8 pfx/AS", 10.0).unwrap_or(f64::NAN);
        let batched = at(&f, "batching, 8 pfx/AS", 10.0).unwrap_or(f64::NAN);
        c.check(
            "ext-destinations: more prefixes, more overload; batching rescues",
            eight > one && batched < 0.5 * eight,
            format!("10%: 1pfx {one:.1}, 8pfx {eight:.1}, 8pfx batched {batched:.1}s"),
        );
    }

    if let Some(f) = c.load("ext-updown") {
        let down = at(&f, "failure (Tdown)", 10.0).unwrap_or(f64::NAN);
        let up = at(&f, "recovery (Tup)", 10.0).unwrap_or(f64::NAN);
        c.check(
            "ext-updown: recovery beats failure (Labovitz Tup/Tdown)",
            up < down,
            format!("10%: Tup {up:.1}s vs Tdown {down:.1}s"),
        );
    }

    if let Some(f) = c.load("ext-links") {
        let routers = at(&f, "router failures", 10.0).unwrap_or(f64::NAN);
        let links = at(&f, "link failures", 10.0).unwrap_or(f64::NAN);
        c.check(
            "ext-links: both failure kinds converge",
            routers.is_finite() && links.is_finite() && links > 0.0,
            format!("10%: routers {routers:.1}s, links {links:.1}s"),
        );
    }

    if let Some(f) = c.load("ext-damping") {
        let plain = at(&f, "MRAI=2.25", 20.0).unwrap_or(f64::NAN);
        let damped = at(&f, "MRAI=2.25 + damping", 20.0).unwrap_or(f64::NAN);
        c.check(
            "ext-damping: damping exacerbates convergence (Mao et al.)",
            damped > plain,
            format!("20%: damped {damped:.1}s vs plain {plain:.1}s"),
        );
    }

    println!("\n{} checks, {} failures", c.checks, c.failures);
    if c.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
