//! Renders every regenerated figure/extension in a results directory as
//! markdown tables — the source for EXPERIMENTS.md sections.
//!
//! ```sh
//! cargo run --release -p bgpsim-bench --bin summarize -- results > summary.md
//! ```

use std::path::Path;

use bgpsim::figures::FigureData;
use bgpsim::report::render_markdown;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(Path::new(&dir))
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
        .collect();
    entries.sort();
    for path in entries {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(fig) = serde_json::from_str::<FigureData>(&text) else {
            eprintln!("skipping {}: not a figure", path.display());
            continue;
        };
        println!("## {} — {}\n", fig.id, fig.title);
        println!("y: {}\n", fig.y_label);
        println!("{}", render_markdown(&fig));
    }
}
