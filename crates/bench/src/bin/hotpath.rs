//! `hotpath` — simulator-throughput benchmark harness.
//!
//! Runs a fixed 3-seed × 3-scheme scenario matrix through the full failure
//! pipeline and reports raw simulator throughput: delivered events per
//! second, decision-process executions per second, the full-rescan ratio of
//! the incremental best-path selection, and peak RSS. A second, warm-start
//! section sweeps the paper's six failure fractions per (scheme, seed) cell
//! twice — cold (every point re-converges from scratch) and warm (points
//! fork a shared converged snapshot, see `bgpsim::warm`) — and reports the
//! sweep wall-time speedup plus snapshot build/fork cost and cache
//! hit/miss counters. Results go to `BENCH_hotpath.json` (see README) so
//! hot-path changes can be compared number-for-number against a recorded
//! baseline.
//!
//! ```text
//! hotpath [--fast] [--nodes N] [--threads T] [--out PATH]
//! ```
//!
//! `--fast` (or `BENCH_FAST=1`) shrinks the matrix to one seed on a small
//! topology — the CI smoke configuration.

use std::process::ExitCode;
use std::time::Instant;

use bgpsim::experiment::{
    run_all_parallel_timed, run_all_parallel_timed_cold, Experiment, TopologySpec,
};
use bgpsim::figures::FAILURE_FRACTIONS;
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

const FAILURE_FRACTION: f64 = 0.10;
const SEEDS: [u64; 3] = [101, 202, 303];
const FAST_SEEDS: [u64; 1] = [101];

#[derive(Debug)]
struct Args {
    fast: bool,
    nodes: Option<usize>,
    threads: Option<usize>,
    out: String,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            fast: std::env::var("BENCH_FAST")
                .map(|v| v == "1")
                .unwrap_or(false),
            nodes: None,
            threads: None,
            out: "BENCH_hotpath.json".into(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--fast" => args.fast = true,
            "--nodes" => {
                args.nodes = Some(
                    value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                );
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!("usage: hotpath [--fast] [--nodes N] [--threads T] [--out PATH]");
}

/// The scheme axis of the matrix: the paper's three main timer disciplines.
fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::constant_mrai(0.5),
        Scheme::batching(0.5),
        Scheme::dynamic_default(),
    ]
}

/// Peak resident set size in kB, from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let nodes = args.nodes.unwrap_or(if args.fast { 40 } else { 120 });
    let seeds: &[u64] = if args.fast { &FAST_SEEDS } else { &SEEDS };
    let schemes = schemes();

    // One experiment point per (scheme, seed) cell, one trial each, so the
    // per-trial timings map 1:1 onto matrix cells.
    let points: Vec<Experiment> = schemes
        .iter()
        .flat_map(|scheme| {
            seeds.iter().map(|&seed| Experiment {
                topology: TopologySpec::seventy_thirty(nodes),
                scheme: scheme.clone(),
                failure: FailureSpec::CenterFraction(FAILURE_FRACTION),
                trials: 1,
                base_seed: seed,
            })
        })
        .collect();

    // The throughput matrix runs cold on purpose: every cell has a unique
    // (scheme, seed) key, so warm-starting would only add snapshot-capture
    // overhead and muddy the raw full-pipeline numbers.
    let started = Instant::now();
    let (aggregates, report) = run_all_parallel_timed_cold(&points, args.threads);
    let batch_wall_secs = started.elapsed().as_secs_f64();

    let mut trials: Vec<serde_json::Value> = Vec::new();
    let (mut events, mut decisions, mut full, mut fast_d, mut wall_sum) =
        (0u64, 0u64, 0u64, 0u64, 0.0f64);
    for (point, (exp, agg)) in points.iter().zip(&aggregates).enumerate() {
        let run = &agg.runs[0];
        let wall_secs = report
            .timings
            .iter()
            .find(|t| t.point == point && t.trial == 0)
            .map(|t| t.wall_secs)
            .expect("every trial timed");
        events += run.events;
        decisions += run.decision_runs;
        full += run.full_rescans;
        fast_d += run.fast_decisions;
        wall_sum += wall_secs;
        trials.push(serde_json::json!({
            "scheme": exp.scheme.name,
            "seed": exp.base_seed,
            "wall_secs": wall_secs,
            "events": run.events,
            "decisions": run.decision_runs,
            "full_rescans": run.full_rescans,
            "fast_decisions": run.fast_decisions,
            "messages": run.messages,
            "updates_processed": run.updates_processed,
            "convergence_delay_secs": run.convergence_delay.as_secs_f64(),
        }));
    }

    let classified = full + fast_d;
    let full_rescan_ratio = if classified == 0 {
        0.0
    } else {
        full as f64 / classified as f64
    };
    let events_per_sec = if wall_sum > 0.0 {
        events as f64 / wall_sum
    } else {
        0.0
    };
    let decisions_per_sec = if wall_sum > 0.0 {
        decisions as f64 / wall_sum
    } else {
        0.0
    };

    // Warm-start section: the figure-sweep workload. Each (scheme, seed)
    // cell is swept over the paper's six failure fractions — the sweep's
    // points share their converged pre-failure state, which is exactly
    // what the snapshot cache exploits. Run it cold, then warm, off the
    // same points; results must match bit for bit.
    let sweep: Vec<Experiment> = schemes
        .iter()
        .flat_map(|scheme| {
            seeds.iter().flat_map(move |&seed| {
                FAILURE_FRACTIONS.iter().map(move |&fraction| Experiment {
                    topology: TopologySpec::seventy_thirty(nodes),
                    scheme: scheme.clone(),
                    failure: FailureSpec::CenterFraction(fraction),
                    trials: 1,
                    base_seed: seed,
                })
            })
        })
        .collect();

    let started = Instant::now();
    let (cold_agg, cold_report) = run_all_parallel_timed_cold(&sweep, args.threads);
    let sweep_cold_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let (warm_agg, warm_report) = run_all_parallel_timed(&sweep, args.threads);
    let sweep_warm_secs = started.elapsed().as_secs_f64();
    let identical = cold_agg == warm_agg;
    if !identical {
        eprintln!("error: warm-started sweep diverged from the cold sweep");
        return ExitCode::FAILURE;
    }
    let warm_stats = warm_report.warm.expect("warm runs report cache stats");

    // Per-scheme cold/warm split, from the per-trial timings: the speedup
    // is governed by the initial-convergence share of each trial, which
    // varies a lot across schemes (small for constant MRAI = 0.5, whose
    // post-failure phase is pathologically message-heavy — the paper's
    // motivating observation — and large for the paper's batching and
    // dynamic schemes, whose re-convergence is cheap).
    let scheme_secs = |report: &bgpsim::experiment::ParallelReport| {
        let mut by_scheme = vec![0.0f64; schemes.len()];
        for t in &report.timings {
            let name = &sweep[t.point].scheme.name;
            let idx = schemes
                .iter()
                .position(|s| &s.name == name)
                .expect("sweep schemes come from the scheme axis");
            by_scheme[idx] += t.wall_secs;
        }
        by_scheme
    };
    let cold_by_scheme = scheme_secs(&cold_report);
    let warm_by_scheme = scheme_secs(&warm_report);
    let per_scheme: Vec<serde_json::Value> = schemes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            serde_json::json!({
                "scheme": s.name,
                "cold_wall_secs": cold_by_scheme[i],
                "warm_wall_secs": warm_by_scheme[i],
                "speedup": if warm_by_scheme[i] > 0.0 {
                    cold_by_scheme[i] / warm_by_scheme[i]
                } else {
                    0.0
                },
            })
        })
        .collect();
    let sweep_events: u64 = warm_agg
        .iter()
        .flat_map(|a| &a.runs)
        .map(|r| r.events)
        .sum();
    let speedup = if sweep_warm_secs > 0.0 {
        sweep_cold_secs / sweep_warm_secs
    } else {
        0.0
    };
    let per_sec = |secs: f64| {
        if secs > 0.0 {
            sweep_events as f64 / secs
        } else {
            0.0
        }
    };

    let payload = serde_json::json!({
        "harness": "hotpath",
        "fast": args.fast,
        "nodes": nodes,
        "failure_fraction": FAILURE_FRACTION,
        "seeds": seeds.to_vec(),
        "schemes": schemes.iter().map(|s| s.name.clone()).collect::<Vec<String>>(),
        "threads": report.threads,
        "trials": trials,
        "totals": serde_json::json!({
            "trial_wall_secs_sum": wall_sum,
            "batch_wall_secs": batch_wall_secs,
            "events": events,
            "decisions": decisions,
            "events_per_sec": events_per_sec,
            "decisions_per_sec": decisions_per_sec,
            "full_rescan_ratio": full_rescan_ratio,
            "peak_rss_kb": peak_rss_kb(),
        }),
        "warm_start": serde_json::json!({
            "failure_fractions": FAILURE_FRACTIONS.to_vec(),
            "sweep_points": sweep.len(),
            "cold_wall_secs": sweep_cold_secs,
            "warm_wall_secs": sweep_warm_secs,
            "speedup": speedup,
            "cold_events_per_sec": per_sec(sweep_cold_secs),
            "warm_events_per_sec": per_sec(sweep_warm_secs),
            "snapshot_builds": warm_stats.builds,
            "snapshot_forks": warm_stats.forks,
            "cache_hits": warm_stats.hits,
            "cache_misses": warm_stats.misses,
            "snapshot_build_wall_secs": warm_stats.build_wall_secs,
            "snapshot_fork_wall_secs": warm_stats.fork_wall_secs,
            "results_identical": identical,
            "per_scheme": per_scheme,
        }),
    });

    let text = serde_json::to_string_pretty(&payload).expect("serializable") + "\n";
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    println!(
        "hotpath throughput ({} nodes, {} threads):",
        nodes, report.threads
    );
    println!("  events/sec:        {events_per_sec:.0}");
    println!("  decisions/sec:     {decisions_per_sec:.0}");
    println!("  full-rescan ratio: {full_rescan_ratio:.3}");
    println!("  trial wall sum:    {wall_sum:.2} s (batch {batch_wall_secs:.2} s)");
    if let Some(rss) = peak_rss_kb() {
        println!("  peak RSS:          {rss} kB");
    }
    println!(
        "warm-start sweep ({} points, {} fractions per cell):",
        sweep.len(),
        FAILURE_FRACTIONS.len()
    );
    println!(
        "  cold: {sweep_cold_secs:.2} s   warm: {sweep_warm_secs:.2} s   speedup: {speedup:.2}x"
    );
    println!(
        "  snapshots: {} built ({:.2} s), {} forked ({:.3} s), {} hits / {} misses",
        warm_stats.builds,
        warm_stats.build_wall_secs,
        warm_stats.forks,
        warm_stats.fork_wall_secs,
        warm_stats.hits,
        warm_stats.misses
    );
    for (i, s) in schemes.iter().enumerate() {
        println!(
            "  {:24} cold {:6.2} s   warm {:6.2} s   {:.2}x",
            s.name,
            cold_by_scheme[i],
            warm_by_scheme[i],
            if warm_by_scheme[i] > 0.0 {
                cold_by_scheme[i] / warm_by_scheme[i]
            } else {
                0.0
            }
        );
    }
    println!("  written to {}", args.out);
    ExitCode::SUCCESS
}
