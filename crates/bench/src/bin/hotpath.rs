//! `hotpath` — simulator-throughput benchmark harness.
//!
//! Runs a fixed 3-seed × 3-scheme scenario matrix through the full failure
//! pipeline and reports raw simulator throughput: delivered events per
//! second, decision-process executions per second, the full-rescan ratio of
//! the incremental best-path selection, and peak RSS per scheme batch. A
//! second, warm-start section sweeps the paper's six failure fractions per
//! (scheme, seed) cell twice — cold (every point re-converges from scratch)
//! and warm (points fork a shared converged snapshot, see `bgpsim::warm`) —
//! and reports the sweep wall-time speedup plus snapshot build/fork cost
//! and cache hit/miss counters. A third section compares the two
//! future-event-list backends (binary heap vs calendar queue, env knob
//! `BGPSIM_FEL`) on the same matrix; the heap stays the default unless the
//! calendar wins here. A fourth section exercises the sharded event loop
//! (`BGPSIM_SHARDS` / `BGPSIM_COMMIT_STREAMS`): single trials at 1/2/4/8
//! shards on the 120- and 512-node matrices with the
//! destination-partitioned parallel commit enabled (one stream per
//! shard), plus a commit-isolation row at the top shard count with the
//! parallel commit off — the destination-major axis. Every row asserts
//! bit-identical `RunStats` against the serial run and reports requested
//! shards, the *effective* worker parallelism (capped by the machine's
//! cores — on a 1-core box the sharded rows measure coordination
//! overhead, not speedup, and say so), and the engine's per-phase
//! wall-clock split (partition/drain scan, Phase A execute, Phase B
//! walk, commit+merge, mailbox exchange) plus its serial fraction.
//! A `small-epoch` section follows: the per-epoch coordination cost of
//! the old `mpsc` channel handoff vs the parked worker pool, in
//! ns/epoch for empty and 16-op epochs (see `run_small_epoch_section`).
//! A fifth section measures structured-tracing overhead: the same
//! re-convergence with the sink Off (the default one-branch hooks) and
//! with a Memory ring recording everything, asserting bit-identical
//! `RunStats` — the Off row is the number to diff against a pre-tracing
//! baseline (bar: ≤ 2%).
//! A sixth, `memory` section runs one batching trial per scale point
//! (120 and 512 nodes; just the matrix size under `--fast`), each in a
//! fresh child process (`--memory-point N` re-exec) so the `VmHWM`
//! watermark is the trial's own peak, and records peak RSS, routing-state
//! heap bytes per route (`Network::memory_footprint`), resident bytes
//! per route, the largest single router's RIB heap (the arena
//! high-water mark), and the interned config-arena entry count — the
//! numbers the compact delta-encoded RIBs are accountable to
//! (DESIGN.md §12). The 10k-AS point lives in the separate
//! `largescale` bin, which CI runs with a hard RSS ceiling.
//! A seventh, `fulltable` section sweeps the routing-table-size axis:
//! one burst-withdrawal trial per table size (power-law full-table
//! allocation through the prefix trie, central 10% of origins withdraw
//! their blocks in one storm), each in a fresh child process
//! (`--fulltable-point P` re-exec) so peak RSS per table size is the
//! trial's own watermark, recording events/sec and peak RSS per size.
//! Results go to `BENCH_hotpath.json` (see README) so hot-path changes can
//! be compared number-for-number against a recorded baseline.
//!
//! ```text
//! hotpath [--fast] [--nodes N] [--threads T] [--out PATH] [--multicore-gate]
//!         [--memory-point N]
//! ```
//!
//! `--fast` (or `BENCH_FAST=1`) shrinks the matrix to one seed on a small
//! topology — the CI smoke configuration.
//!
//! `--multicore-gate` runs *only* the multi-core speedup gate and exits:
//! the 512-node batching workload serial vs 4 shards × 4 commit streams,
//! asserting bit-identity and — on machines with ≥ 4 cores — failing the
//! process unless the sharded run is ≥ 2× faster. On fewer cores the gate
//! skips loudly (the speedup is physically unreachable) but still checks
//! identity; it never passes vacuously without saying so in its output
//! and JSON (`enforced: false`).

use std::process::ExitCode;
use std::time::Instant;

use bgpsim::experiment::{
    run_all_parallel_timed, run_all_parallel_timed_cold, Experiment, TopologySpec,
};
use bgpsim::figures::FAILURE_FRACTIONS;
use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim::trace::TraceSink;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FAILURE_FRACTION: f64 = 0.10;
const SEEDS: [u64; 3] = [101, 202, 303];
const FAST_SEEDS: [u64; 1] = [101];

#[derive(Debug)]
struct Args {
    fast: bool,
    nodes: Option<usize>,
    threads: Option<usize>,
    out: String,
    multicore_gate: bool,
    memory_point: Option<usize>,
    fulltable_point: Option<u32>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            fast: std::env::var("BENCH_FAST")
                .map(|v| v == "1")
                .unwrap_or(false),
            nodes: None,
            threads: None,
            out: "BENCH_hotpath.json".into(),
            multicore_gate: false,
            memory_point: None,
            fulltable_point: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--fast" => args.fast = true,
            "--nodes" => {
                args.nodes = Some(
                    value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                );
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--out" => args.out = value("--out")?,
            "--multicore-gate" => args.multicore_gate = true,
            "--memory-point" => {
                args.memory_point = Some(
                    value("--memory-point")?
                        .parse()
                        .map_err(|e| format!("--memory-point: {e}"))?,
                );
            }
            "--fulltable-point" => {
                args.fulltable_point = Some(
                    value("--fulltable-point")?
                        .parse()
                        .map_err(|e| format!("--fulltable-point: {e}"))?,
                );
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: hotpath [--fast] [--nodes N] [--threads T] [--out PATH] [--multicore-gate] \
         [--memory-point N] [--fulltable-point P]"
    );
}

/// The scheme axis of the matrix: the paper's three main timer disciplines.
fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::constant_mrai(0.5),
        Scheme::batching(0.5),
        Scheme::dynamic_default(),
    ]
}

/// Peak resident set size in kB, from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resets the peak-RSS watermark (`VmHWM`) to the current RSS by writing
/// `5` to `/proc/self/clear_refs`, so per-batch peaks can be measured.
/// Returns `false` where the kernel/container forbids it — per-scheme RSS
/// figures are then cumulative maxima and are flagged as such.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Restores an env knob to its pre-bench state.
fn restore_env(key: &str, prev: Option<String>) {
    match prev {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
}

/// The sharded engine's per-phase wall-clock split as a JSON object.
fn phases_json(t: &bgpsim::ShardPhaseTimings) -> serde_json::Value {
    serde_json::json!({
        "epochs": t.epochs,
        "parallel_commit_epochs": t.parallel_commit_epochs,
        "inline_phase_a_epochs": t.inline_phase_a_epochs,
        "drain_secs": t.drain_secs,
        "phase_a_secs": t.phase_a_secs,
        "phase_b_secs": t.phase_b_secs,
        "merge_secs": t.merge_secs,
        "mailbox_exchange_secs": t.mailbox_exchange_secs,
        "serial_fraction": t.serial_fraction(),
    })
}

/// `--memory-point N`: child mode for the memory-footprint section. Runs
/// exactly one batching trial at `N` nodes in this process and prints the
/// measurement row as JSON on stdout. The parent re-execs itself with this
/// flag per scale point so every point gets a fresh address space: `VmHWM`
/// then *is* the trial's peak, untainted by allocator retention from the
/// earlier matrix/sharded/tracing sections (`clear_refs` only drops the
/// watermark to the current RSS, which never shrinks below what the
/// allocator holds on to).
fn run_memory_point(sz: usize) -> ExitCode {
    let scheme = Scheme::batching(0.5);
    let exp = Experiment {
        topology: TopologySpec::seventy_thirty(sz),
        scheme: scheme.clone(),
        failure: FailureSpec::CenterFraction(FAILURE_FRACTION),
        trials: 1,
        base_seed: SEEDS[0],
    };
    let started = Instant::now();
    let (stats, net) = exp.run_trial_with_network(0);
    let wall = started.elapsed().as_secs_f64();
    let fp = net.memory_footprint();
    let peak = peak_rss_kb();
    let row = serde_json::json!({
        "nodes": sz,
        "scheme": scheme.name,
        "seed": SEEDS[0],
        "wall_secs": wall,
        "events": stats.events,
        "peak_rss_kb": peak,
        "fresh_process": true,
        "routes": fp.routes,
        "rib_heap_bytes": fp.rib_heap_bytes,
        "rib_bytes_per_route": fp.bytes_per_route(),
        "peak_rss_bytes_per_route": peak
            .filter(|_| fp.routes > 0)
            .map(|kb| kb as f64 * 1024.0 / fp.routes as f64),
        "max_node_rib_heap_bytes": fp.max_node_rib_heap_bytes,
        "config_arena_entries": fp.config_arena_entries,
    });
    match serde_json::to_string(&row) {
        Ok(s) => {
            println!("{s}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("memory point: serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One full-table point: build a small topology carrying `table` prefixes
/// (power-law split through the prefix trie), converge, withdraw the
/// central 10% of origins' blocks in one burst, re-converge, and print the
/// row as JSON on stdout. Runs in a fresh child process (`--fulltable-point`
/// re-exec) for the same watermark-honesty reason as `run_memory_point`:
/// the table-size axis exists to show how peak RSS and events/sec scale
/// with the number of destinations, so each point must own its peak.
fn run_fulltable_point(table: u32, fast: bool) -> ExitCode {
    let nodes = if fast { 20 } else { 40 };
    let scheme = Scheme::batching(0.5).with_full_table(bgpsim::FullTableSpec::internet_like(table));
    let mut rng = SmallRng::seed_from_u64(SEEDS[0]);
    let topo = skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng)
        .expect("bench topology realizable");
    let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, SEEDS[0]));
    let started = Instant::now();
    net.run_initial_convergence();
    let convergence_secs = started.elapsed().as_secs_f64();
    let withdrawn = net
        .inject_burst_withdrawal(&FailureSpec::CenterFraction(FAILURE_FRACTION))
        .len();
    let started = Instant::now();
    let stats = net.run_to_quiescence();
    let reconvergence_secs = started.elapsed().as_secs_f64();
    net.assert_routing_consistent();
    let fp = net.memory_footprint();
    let peak = peak_rss_kb();
    let row = serde_json::json!({
        "table_size": table,
        "nodes": nodes,
        "scheme": scheme.name,
        "seed": SEEDS[0],
        "withdrawn_prefixes": withdrawn,
        "convergence_secs": convergence_secs,
        "reconvergence_secs": reconvergence_secs,
        "events": stats.events,
        "events_per_sec": if reconvergence_secs > 0.0 {
            stats.events as f64 / reconvergence_secs
        } else {
            0.0
        },
        "messages": stats.messages,
        "convergence_delay_secs": stats.convergence_delay.as_secs_f64(),
        "peak_rss_kb": peak,
        "fresh_process": true,
        "routes": fp.routes,
        "rib_bytes_per_route": fp.bytes_per_route(),
    });
    match serde_json::to_string(&row) {
        Ok(s) => {
            println!("{s}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fulltable point: serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `small-epoch` section: per-epoch coordination overhead, measured bare.
///
/// Isolates what one sharded epoch costs when the epoch itself is nearly
/// free — the regime convergence tails live in, where most epochs carry a
/// handful of MRAI timers. Two mechanisms run the same `workers`-way
/// fan-out + barrier per epoch:
///
/// * `channel`: the old per-epoch handoff — persistent scoped threads,
///   one `mpsc` work send and one reply receive per worker per epoch.
/// * `pool`: the parked worker pool the engine now uses
///   ([`bgpsim::pool`]) — `Scope::spawn` per worker plus the helping
///   `Scope::wait` barrier, no channels.
///
/// Rows measure an empty epoch (pure barrier) and a 16-op epoch (the
/// `PHASE_A_PAR_MIN_OPS` threshold, ops split across workers; each op is
/// a black-boxed atomic add). Both mechanisms must produce the same op
/// sums — a divergence is a harness bug and panics.
fn run_small_epoch_section(fast: bool) -> serde_json::Value {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    fn spin(ops: u64, sink: &AtomicU64) {
        for i in 0..ops {
            sink.fetch_add(std::hint::black_box(i + 1), Ordering::Relaxed);
        }
    }

    let workers = 4usize;
    let epochs: u64 = if fast { 20_000 } else { 100_000 };
    let mut rows = Vec::new();
    for total_ops in [0u64, 16] {
        let per_worker = total_ops / workers as u64;

        let channel_sink = AtomicU64::new(0);
        let channel_secs = crossbeam::thread::scope(|scope| {
            let mut work_txs = Vec::with_capacity(workers);
            let mut reply_rxs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (wtx, wrx) = mpsc::channel::<u64>();
                let (rtx, rrx) = mpsc::channel::<()>();
                let sink = &channel_sink;
                scope.spawn(move |_| {
                    while let Ok(ops) = wrx.recv() {
                        spin(ops, sink);
                        if rtx.send(()).is_err() {
                            break;
                        }
                    }
                });
                work_txs.push(wtx);
                reply_rxs.push(rrx);
            }
            let started = Instant::now();
            for _ in 0..epochs {
                for tx in &work_txs {
                    tx.send(per_worker).expect("bench worker alive");
                }
                for rx in &reply_rxs {
                    rx.recv().expect("bench worker alive");
                }
            }
            let took = started.elapsed().as_secs_f64();
            drop(work_txs); // hang up so the scope's join can complete
            took
        })
        .expect("channel bench workers don't panic");

        let pool_sink = AtomicU64::new(0);
        let pool = bgpsim::pool::global();
        let started = Instant::now();
        pool.scope(|s| {
            for _ in 0..epochs {
                for _ in 0..workers {
                    let sink = &pool_sink;
                    s.spawn(move || spin(per_worker, sink));
                }
                s.wait();
            }
        });
        let pool_secs = started.elapsed().as_secs_f64();

        assert_eq!(
            channel_sink.into_inner(),
            pool_sink.into_inner(),
            "small-epoch: mechanisms disagree on op count"
        );
        let channel_ns = channel_secs * 1e9 / epochs as f64;
        let pool_ns = pool_secs * 1e9 / epochs as f64;
        rows.push(serde_json::json!({
            "ops_per_epoch": total_ops,
            "channel_ns_per_epoch": channel_ns,
            "pool_ns_per_epoch": pool_ns,
            "pool_speedup": if pool_ns > 0.0 { channel_ns / pool_ns } else { 0.0 },
        }));
    }
    serde_json::json!({
        "workers": workers,
        "epochs_per_row": epochs,
        "rows": rows,
    })
}

/// How many shards and commit streams the multi-core gate runs, and the
/// aggregate speedup it demands when it has the cores to demand one.
const GATE_SHARDS: usize = 4;
const GATE_MIN_SPEEDUP: f64 = 2.0;

/// `--multicore-gate`: serial vs `GATE_SHARDS`-way sharded (one commit
/// stream per shard) on the 512-node batching workload. Bit-identity is
/// always a hard failure; the ≥ `GATE_MIN_SPEEDUP`× aggregate-speedup bar
/// is enforced only on machines with at least `GATE_SHARDS` cores — below
/// that the bar is physically unreachable, so the gate *skips loudly*:
/// the verdict line, exit status and JSON (`enforced: false`) all say the
/// speedup went unchecked rather than passing it silently.
fn run_multicore_gate(args: &Args) -> ExitCode {
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let nodes = args.nodes.unwrap_or(if args.fast { 120 } else { 512 });
    let exp = Experiment {
        topology: TopologySpec::seventy_thirty(nodes),
        scheme: Scheme::batching(0.5),
        failure: FailureSpec::CenterFraction(FAILURE_FRACTION),
        trials: 1,
        base_seed: SEEDS[0],
    };
    let prev_shards = std::env::var("BGPSIM_SHARDS").ok();
    let prev_streams = std::env::var("BGPSIM_COMMIT_STREAMS").ok();
    let run = |shards: usize| {
        std::env::set_var("BGPSIM_SHARDS", shards.to_string());
        std::env::set_var("BGPSIM_COMMIT_STREAMS", shards.to_string());
        let started = Instant::now();
        let (stats, net) = exp.run_trial_with_network(0);
        let wall = started.elapsed().as_secs_f64();
        (stats, wall, net.shard_phase_timings())
    };
    println!("multicore gate: {nodes}-node batching workload, {cores} cores available");
    let (serial_stats, serial_wall, _) = run(1);
    println!(
        "  serial:              {serial_wall:7.2} s   ({} events)",
        serial_stats.events
    );
    let (sharded_stats, sharded_wall, phases) = run(GATE_SHARDS);
    restore_env("BGPSIM_SHARDS", prev_shards);
    restore_env("BGPSIM_COMMIT_STREAMS", prev_streams);
    let identical = sharded_stats == serial_stats;
    let speedup = if sharded_wall > 0.0 {
        serial_wall / sharded_wall
    } else {
        0.0
    };
    println!(
        "  {GATE_SHARDS} shards x {GATE_SHARDS} streams: {sharded_wall:7.2} s   {speedup:.2}x vs serial"
    );
    println!(
        "    phases: drain {:.2} s | A {:.2} s | walk {:.2} s | commit+merge {:.2} s | \
         exchange {:.2} s ({}/{} epochs parallel, serial fraction {:.0}%)",
        phases.drain_secs,
        phases.phase_a_secs,
        phases.phase_b_secs,
        phases.merge_secs,
        phases.mailbox_exchange_secs,
        phases.parallel_commit_epochs,
        phases.epochs,
        phases.serial_fraction() * 100.0
    );
    let enforced = cores >= GATE_SHARDS;
    let speedup_ok = speedup >= GATE_MIN_SPEEDUP;
    let passed = identical && (!enforced || speedup_ok);
    let payload = serde_json::json!({
        "harness": "hotpath-multicore-gate",
        "nodes": nodes,
        "scheme": "batching (MRAI=0.5)",
        "seed": SEEDS[0],
        "cores_available": cores,
        "shards": GATE_SHARDS,
        "commit_streams": GATE_SHARDS,
        "serial_wall_secs": serial_wall,
        "sharded_wall_secs": sharded_wall,
        "speedup": speedup,
        "required_speedup": GATE_MIN_SPEEDUP,
        "identical_to_serial": identical,
        "phases": phases_json(&phases),
        "enforced": enforced,
        "passed": passed,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serializable") + "\n";
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  written to {}", args.out);
    if !identical {
        eprintln!("error: multicore gate: {GATE_SHARDS}-shard run diverged from serial");
        return ExitCode::FAILURE;
    }
    if !enforced {
        println!(
            "  SKIPPED (not enforced): {cores} core(s) < {GATE_SHARDS} — a {GATE_MIN_SPEEDUP}x \
             bar is unreachable here; identity was still verified"
        );
        return ExitCode::SUCCESS;
    }
    if !speedup_ok {
        eprintln!(
            "error: multicore gate: {speedup:.2}x < required {GATE_MIN_SPEEDUP:.2}x \
             on {cores} cores"
        );
        return ExitCode::FAILURE;
    }
    println!("  PASSED: {speedup:.2}x >= {GATE_MIN_SPEEDUP:.2}x on {cores} cores");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    if args.multicore_gate {
        return run_multicore_gate(&args);
    }
    if let Some(sz) = args.memory_point {
        return run_memory_point(sz);
    }
    if let Some(table) = args.fulltable_point {
        return run_fulltable_point(table, args.fast);
    }

    let nodes = args.nodes.unwrap_or(if args.fast { 40 } else { 120 });
    let seeds: &[u64] = if args.fast { &FAST_SEEDS } else { &SEEDS };
    let schemes = schemes();
    let point = |scheme: &Scheme, seed: u64, nodes: usize, fraction: f64| Experiment {
        topology: TopologySpec::seventy_thirty(nodes),
        scheme: scheme.clone(),
        failure: FailureSpec::CenterFraction(fraction),
        trials: 1,
        base_seed: seed,
    };

    // ── Throughput matrix ───────────────────────────────────────────────
    // One experiment point per (scheme, seed) cell, one trial each, so the
    // per-trial timings map 1:1 onto matrix cells. The matrix runs cold on
    // purpose: every cell has a unique (scheme, seed) key, so warm-starting
    // would only add snapshot-capture overhead and muddy the raw
    // full-pipeline numbers. It runs one scheme batch at a time with the
    // RSS watermark reset in between, so each scheme gets its own peak-RSS
    // figure (the schemes differ a lot in queue depth and RIB churn).
    let rss_reset_supported = reset_peak_rss();
    let mut trials: Vec<serde_json::Value> = Vec::new();
    let mut per_scheme_rss: Vec<serde_json::Value> = Vec::new();
    let mut points: Vec<Experiment> = Vec::new();
    let mut aggregates = Vec::new();
    let mut batch_wall_secs = 0.0f64;
    let mut report = None;
    for scheme in &schemes {
        let batch: Vec<Experiment> = seeds
            .iter()
            .map(|&seed| point(scheme, seed, nodes, FAILURE_FRACTION))
            .collect();
        reset_peak_rss();
        let started = Instant::now();
        let (agg, rep) = run_all_parallel_timed_cold(&batch, args.threads);
        batch_wall_secs += started.elapsed().as_secs_f64();
        per_scheme_rss.push(serde_json::json!({
            "scheme": scheme.name,
            "peak_rss_kb": peak_rss_kb(),
            "rss_reset_supported": rss_reset_supported,
        }));
        for (i, (exp, agg)) in batch.iter().zip(&agg).enumerate() {
            let run = &agg.runs[0];
            let wall_secs = rep
                .timings
                .iter()
                .find(|t| t.point == i && t.trial == 0)
                .map(|t| t.wall_secs)
                .expect("every trial timed");
            trials.push(serde_json::json!({
                "scheme": exp.scheme.name,
                "seed": exp.base_seed,
                "wall_secs": wall_secs,
                "events": run.events,
                "decisions": run.decision_runs,
                "full_rescans": run.full_rescans,
                "fast_decisions": run.fast_decisions,
                "messages": run.messages,
                "updates_processed": run.updates_processed,
                "convergence_delay_secs": run.convergence_delay.as_secs_f64(),
            }));
        }
        points.extend(batch);
        aggregates.extend(agg);
        report = Some(rep);
    }
    let report = report.expect("at least one scheme batch ran");

    let (mut events, mut decisions, mut full, mut fast_d, mut wall_sum) =
        (0u64, 0u64, 0u64, 0u64, 0.0f64);
    for (agg, trial) in aggregates.iter().zip(&trials) {
        let run = &agg.runs[0];
        events += run.events;
        decisions += run.decision_runs;
        full += run.full_rescans;
        fast_d += run.fast_decisions;
        wall_sum += trial["wall_secs"].as_f64().expect("wall_secs recorded");
    }

    let classified = full + fast_d;
    let full_rescan_ratio = if classified == 0 {
        0.0
    } else {
        full as f64 / classified as f64
    };
    let events_per_sec = if wall_sum > 0.0 {
        events as f64 / wall_sum
    } else {
        0.0
    };
    let decisions_per_sec = if wall_sum > 0.0 {
        decisions as f64 / wall_sum
    } else {
        0.0
    };

    // ── Warm-start sweep ────────────────────────────────────────────────
    // The figure-sweep workload. Each (scheme, seed) cell is swept over
    // the paper's six failure fractions — the sweep's points share their
    // converged pre-failure state, which is exactly what the snapshot
    // cache exploits. Run it cold, then warm, off the same points; results
    // must match bit for bit.
    let sweep: Vec<Experiment> = schemes
        .iter()
        .flat_map(|scheme| {
            seeds.iter().flat_map(move |&seed| {
                FAILURE_FRACTIONS
                    .iter()
                    .map(move |&fraction| point(scheme, seed, nodes, fraction))
            })
        })
        .collect();

    let started = Instant::now();
    let (cold_agg, cold_report) = run_all_parallel_timed_cold(&sweep, args.threads);
    let sweep_cold_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let (warm_agg, warm_report) = run_all_parallel_timed(&sweep, args.threads);
    let sweep_warm_secs = started.elapsed().as_secs_f64();
    let identical = cold_agg == warm_agg;
    if !identical {
        eprintln!("error: warm-started sweep diverged from the cold sweep");
        return ExitCode::FAILURE;
    }
    let warm_stats = warm_report.warm.expect("warm runs report cache stats");

    // Per-scheme cold/warm split, from the per-trial timings: the speedup
    // is governed by the initial-convergence share of each trial, which
    // varies a lot across schemes (small for constant MRAI = 0.5, whose
    // post-failure phase is pathologically message-heavy — the paper's
    // motivating observation — and large for the paper's batching and
    // dynamic schemes, whose re-convergence is cheap).
    let scheme_secs = |report: &bgpsim::experiment::ParallelReport| {
        let mut by_scheme = vec![0.0f64; schemes.len()];
        for t in &report.timings {
            let name = &sweep[t.point].scheme.name;
            let idx = schemes
                .iter()
                .position(|s| &s.name == name)
                .expect("sweep schemes come from the scheme axis");
            by_scheme[idx] += t.wall_secs;
        }
        by_scheme
    };
    let cold_by_scheme = scheme_secs(&cold_report);
    let warm_by_scheme = scheme_secs(&warm_report);
    let per_scheme: Vec<serde_json::Value> = schemes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            serde_json::json!({
                "scheme": s.name,
                "cold_wall_secs": cold_by_scheme[i],
                "warm_wall_secs": warm_by_scheme[i],
                "speedup": if warm_by_scheme[i] > 0.0 {
                    cold_by_scheme[i] / warm_by_scheme[i]
                } else {
                    0.0
                },
            })
        })
        .collect();
    let sweep_events: u64 = warm_agg
        .iter()
        .flat_map(|a| &a.runs)
        .map(|r| r.events)
        .sum();
    let speedup = if sweep_warm_secs > 0.0 {
        sweep_cold_secs / sweep_warm_secs
    } else {
        0.0
    };
    let per_sec = |secs: f64| {
        if secs > 0.0 {
            sweep_events as f64 / secs
        } else {
            0.0
        }
    };

    // ── FEL backend comparison ──────────────────────────────────────────
    // The same 1-seed scheme matrix through both future-event-list
    // backends (`BGPSIM_FEL`). Results must be bit-identical — the
    // calendar queue is property-tested to deliver the heap's exact order
    // — so the only difference is events/sec. The heap stays the default
    // backend unless the calendar wins this section.
    let fel_points: Vec<Experiment> = schemes
        .iter()
        .map(|s| point(s, seeds[0], nodes, FAILURE_FRACTION))
        .collect();
    let prev_fel = std::env::var("BGPSIM_FEL").ok();
    let mut fel_rows: Vec<serde_json::Value> = Vec::new();
    let mut fel_results = Vec::new();
    let mut fel_secs = Vec::new();
    for backend in ["heap", "calendar"] {
        std::env::set_var("BGPSIM_FEL", backend);
        let started = Instant::now();
        let (agg, _) = run_all_parallel_timed_cold(&fel_points, args.threads);
        let secs = started.elapsed().as_secs_f64();
        let ev: u64 = agg.iter().flat_map(|a| &a.runs).map(|r| r.events).sum();
        fel_rows.push(serde_json::json!({
            "backend": backend,
            "wall_secs": secs,
            "events": ev,
            "events_per_sec": if secs > 0.0 { ev as f64 / secs } else { 0.0 },
        }));
        fel_results.push(agg);
        fel_secs.push(secs);
    }
    restore_env("BGPSIM_FEL", prev_fel);
    let fel_identical = fel_results[0] == fel_results[1];
    if !fel_identical {
        eprintln!("error: calendar-queue run diverged from the heap run");
        return ExitCode::FAILURE;
    }
    let fel_winner = if fel_secs[1] < fel_secs[0] {
        "calendar"
    } else {
        "heap"
    };

    // ── Sharded event loop ──────────────────────────────────────────────
    // Single trials at increasing shard counts, on the standard matrix
    // size and on a larger 512-node topology where the per-epoch work is
    // big enough to amortise the epoch barrier. The 120-node rows use the
    // message-heaviest scheme (constant MRAI = 0.5); at 512 nodes that
    // scheme's path-hunting blow-up — the paper's motivating pathology —
    // makes a single trial take tens of minutes, so the 512-node rows use
    // the paper's batching scheme, which is what anyone simulating at that
    // scale would run. Every row is checked bit-identical against the
    // serial (1-shard) run. Requested shards and *effective* workers are
    // reported separately: the engine spawns as many workers as requested,
    // but only `min(shards, cores)` can run at once, so on a 1-core
    // machine the >1-shard rows measure determinism overhead, not speedup.
    let parallelism_available = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let shard_cases: Vec<(usize, &Scheme)> = if args.fast {
        vec![(nodes, &schemes[0])]
    } else {
        vec![(120, &schemes[0]), (512, &schemes[1])]
    };
    let shard_counts: Vec<usize> = if args.fast {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    };
    // Row axis. The main rows run each shard count at the engine's
    // *default* stream resolution — `min(shards, cores)` — so the
    // recorded overhead/speedup is what a user gets out of the box on
    // this machine (on a 1-core container that means inline commit, and
    // the rows measure determinism overhead exactly as before). The
    // destination-major axis is then pinned explicitly at the top shard
    // count: one row with the parallel commit forced fully on (one
    // stream per shard) and one with it forced off (single stream), so
    // the commit axis's contribution is measurable in isolation on any
    // machine.
    let default_streams = |k: usize| k.min(parallelism_available).max(1);
    let mut row_specs: Vec<(usize, usize)> = shard_counts
        .iter()
        .map(|&k| (k, default_streams(k)))
        .collect();
    let &max_shards = shard_counts.iter().max().expect("shard counts nonempty");
    if max_shards > 1 {
        for forced in [max_shards, 1] {
            if default_streams(max_shards) != forced {
                row_specs.push((max_shards, forced));
            }
        }
    }
    let prev_shards = std::env::var("BGPSIM_SHARDS").ok();
    let prev_streams = std::env::var("BGPSIM_COMMIT_STREAMS").ok();
    let mut sharded_sections: Vec<serde_json::Value> = Vec::new();
    for &(sz, scheme) in &shard_cases {
        let exp = point(scheme, seeds[0], sz, FAILURE_FRACTION);
        let mut serial: Option<(bgpsim::RunStats, f64)> = None;
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for &(k, streams) in &row_specs {
            std::env::set_var("BGPSIM_SHARDS", k.to_string());
            std::env::set_var("BGPSIM_COMMIT_STREAMS", streams.to_string());
            let started = Instant::now();
            let (stats, net) = exp.run_trial_with_network(0);
            let wall = started.elapsed().as_secs_f64();
            if let Some((serial_stats, _)) = &serial {
                if stats != *serial_stats {
                    restore_env("BGPSIM_SHARDS", prev_shards);
                    restore_env("BGPSIM_COMMIT_STREAMS", prev_streams);
                    eprintln!(
                        "error: {k}-shard / {streams}-stream run diverged from serial at {sz} nodes"
                    );
                    return ExitCode::FAILURE;
                }
            }
            let serial_wall = serial.as_ref().map(|&(_, w)| w).unwrap_or(wall);
            let timings = net.shard_phase_timings();
            rows.push(serde_json::json!({
                "shards_requested": k,
                "commit_streams": streams,
                "workers_effective": k.min(parallelism_available),
                "wall_secs": wall,
                "events": stats.events,
                "events_per_sec": if wall > 0.0 { stats.events as f64 / wall } else { 0.0 },
                "speedup_vs_serial": if wall > 0.0 { serial_wall / wall } else { 0.0 },
                "identical_to_serial": true,
                // Serial rows never enter the sharded loop; phases are null.
                "phases": if k > 1 { phases_json(&timings) } else { serde_json::Value::Null },
            }));
            if serial.is_none() {
                serial = Some((stats, wall));
            }
        }
        sharded_sections.push(serde_json::json!({
            "nodes": sz,
            "scheme": scheme.name,
            "seed": seeds[0],
            "rows": rows,
        }));
    }
    restore_env("BGPSIM_SHARDS", prev_shards);
    restore_env("BGPSIM_COMMIT_STREAMS", prev_streams);

    // ── Small-epoch coordination overhead ───────────────────────────────
    let small_epoch = run_small_epoch_section(args.fast);

    // ── Tracing overhead ────────────────────────────────────────────────
    // The same re-convergence run three ways: sink left Off (the default —
    // every hook site is one `Option` branch), a Memory ring recording the
    // full event stream, and Off again interleaved to bound timer noise.
    // Only the post-failure phase is timed, since that is the traced
    // phase. RunStats must be bit-identical across sinks (tracing is
    // observation-only) — divergence is a hard failure. The Off rows are
    // the numbers to diff against a recorded pre-tracing baseline: the
    // acceptance bar is Off within 2% of it.
    let trace_runs = if args.fast { 2usize } else { 3 };
    let traced_reconvergence = |memory: bool| -> (bgpsim::RunStats, f64, u64) {
        let mut rng = SmallRng::seed_from_u64(seeds[0]);
        let topo = skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng)
            .expect("bench topology realizable");
        let mut net = Network::new(topo, SimConfig::from_scheme(&schemes[0], seeds[0]));
        net.run_initial_convergence();
        net.inject_failure(&FailureSpec::CenterFraction(FAILURE_FRACTION));
        if memory {
            net.set_trace_sink(TraceSink::memory(1 << 22));
        }
        let started = Instant::now();
        let stats = net.run_to_quiescence();
        let wall = started.elapsed().as_secs_f64();
        (stats, wall, net.trace_sink().seq())
    };
    let mut off_walls = Vec::new();
    let mut memory_walls = Vec::new();
    let mut trace_events_recorded = 0u64;
    let mut trace_stats: Option<bgpsim::RunStats> = None;
    for _ in 0..trace_runs {
        for memory in [false, true] {
            let (stats, wall, recorded) = traced_reconvergence(memory);
            if let Some(reference) = &trace_stats {
                if stats != *reference {
                    eprintln!("error: traced run diverged from the untraced run");
                    return ExitCode::FAILURE;
                }
            } else {
                trace_stats = Some(stats);
            }
            if memory {
                memory_walls.push(wall);
                trace_events_recorded = recorded;
            } else {
                off_walls.push(wall);
            }
        }
    }
    let min = |walls: &[f64]| walls.iter().copied().fold(f64::INFINITY, f64::min);
    let (off_wall, memory_wall) = (min(&off_walls), min(&memory_walls));
    let memory_overhead = if off_wall > 0.0 {
        memory_wall / off_wall - 1.0
    } else {
        0.0
    };

    // This totals figure keeps its historical meaning: peak since the last
    // scheme-batch reset, covering the sweep/FEL/sharded/tracing sections.
    let totals_peak_rss_kb = peak_rss_kb();

    // ── Memory footprint ────────────────────────────────────────────────
    // One full batching trial per scale point, each in a *fresh child
    // process* (re-exec of this binary with `--memory-point N`). A fresh
    // address space is the only honest watermark: `clear_refs` resets
    // `VmHWM` to the current RSS, and the allocator retains hundreds of MB
    // from the earlier 512-node sharded section, so in-process resets made
    // the small points inherit the big points' peaks. The batching scheme
    // is the one anyone simulates large topologies with (the 512-node
    // sharded rows above use it for the same reason); the child keeps its
    // final network alive so the routing-state heap can be audited route
    // by route (`Network::memory_footprint`). `peak_rss_kb` is
    // process-wide (FEL, queues and allocator slack included),
    // `rib_heap_bytes` is exactly the RIB state — the gap between the two
    // per-route figures is the non-RIB overhead. The 10k-AS caida-like
    // point runs in the separate `largescale` bin so this harness stays
    // minutes, not hours.
    let memory_scheme = &schemes[1]; // batching (MRAI = 0.5)
    let memory_sizes: Vec<usize> = if args.fast {
        vec![nodes]
    } else {
        vec![120, 512]
    };
    let self_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("memory section: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut memory_rows: Vec<serde_json::Value> = Vec::new();
    for &sz in &memory_sizes {
        let output = match std::process::Command::new(&self_exe)
            .args(["--memory-point", &sz.to_string()])
            .output()
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!("memory section: spawning --memory-point {sz} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !output.status.success() {
            eprintln!(
                "memory section: --memory-point {sz} child exited with {}:\n{}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            );
            return ExitCode::FAILURE;
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        match serde_json::from_str::<serde_json::Value>(stdout.trim()) {
            Ok(row) => memory_rows.push(row),
            Err(e) => {
                eprintln!("memory section: --memory-point {sz} produced unparseable output ({e}): {stdout}");
                return ExitCode::FAILURE;
            }
        }
    }

    // ── Full-table axis ─────────────────────────────────────────────────
    // One burst-withdrawal trial per routing-table size, fresh child
    // process each (same honesty argument as the memory section). The
    // sizes sweep the gap between the paper's one-prefix-per-AS workload
    // and the Internet's table; the 10^5+ points live in the `largescale`
    // bin's `--table-size` axis and EXPERIMENTS.md.
    let fulltable_sizes: Vec<u32> = if args.fast {
        vec![500, 2_000]
    } else {
        vec![1_000, 5_000, 20_000]
    };
    let mut fulltable_rows: Vec<serde_json::Value> = Vec::new();
    for &table in &fulltable_sizes {
        let mut cmd = std::process::Command::new(&self_exe);
        cmd.args(["--fulltable-point", &table.to_string()]);
        if args.fast {
            cmd.arg("--fast");
        }
        let output = match cmd.output() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("fulltable section: spawning --fulltable-point {table} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !output.status.success() {
            eprintln!(
                "fulltable section: --fulltable-point {table} child exited with {}:\n{}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            );
            return ExitCode::FAILURE;
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        match serde_json::from_str::<serde_json::Value>(stdout.trim()) {
            Ok(row) => fulltable_rows.push(row),
            Err(e) => {
                eprintln!(
                    "fulltable section: --fulltable-point {table} produced unparseable output ({e}): {stdout}"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let payload = serde_json::json!({
        "harness": "hotpath",
        "fast": args.fast,
        "nodes": nodes,
        "failure_fraction": FAILURE_FRACTION,
        "seeds": seeds.to_vec(),
        "schemes": schemes.iter().map(|s| s.name.clone()).collect::<Vec<String>>(),
        "threads": report.threads,
        "threads_requested": report.threads_requested,
        "parallelism_available": report.parallelism_available,
        "trials": trials,
        "totals": serde_json::json!({
            "trial_wall_secs_sum": wall_sum,
            "batch_wall_secs": batch_wall_secs,
            "events": events,
            "decisions": decisions,
            "events_per_sec": events_per_sec,
            "decisions_per_sec": decisions_per_sec,
            "full_rescan_ratio": full_rescan_ratio,
            "peak_rss_kb": totals_peak_rss_kb,
            "per_scheme_rss": per_scheme_rss,
        }),
        "memory": serde_json::json!({
            "scheme": memory_scheme.name,
            "failure_fraction": FAILURE_FRACTION,
            "points": memory_rows,
        }),
        "warm_start": serde_json::json!({
            "failure_fractions": FAILURE_FRACTIONS.to_vec(),
            "sweep_points": sweep.len(),
            "cold_wall_secs": sweep_cold_secs,
            "warm_wall_secs": sweep_warm_secs,
            "speedup": speedup,
            "cold_events_per_sec": per_sec(sweep_cold_secs),
            "warm_events_per_sec": per_sec(sweep_warm_secs),
            "snapshot_builds": warm_stats.builds,
            "snapshot_forks": warm_stats.forks,
            "cache_hits": warm_stats.hits,
            "cache_misses": warm_stats.misses,
            "snapshot_build_wall_secs": warm_stats.build_wall_secs,
            "snapshot_fork_wall_secs": warm_stats.fork_wall_secs,
            "results_identical": identical,
            "per_scheme": per_scheme,
        }),
        "fel": serde_json::json!({
            "backends": fel_rows,
            "results_identical": fel_identical,
            "winner": fel_winner,
            "default": "heap",
        }),
        "sharded": serde_json::json!({
            "parallelism_available": parallelism_available,
            "shard_counts": shard_counts,
            "sections": sharded_sections,
        }),
        "small_epoch": small_epoch,
        "fulltable": serde_json::json!({
            "failure_fraction": FAILURE_FRACTION,
            "points": fulltable_rows,
        }),
        "tracing": serde_json::json!({
            "runs_per_sink": trace_runs,
            "scheme": schemes[0].name,
            "seed": seeds[0],
            "off_reconvergence_secs": off_wall,
            "memory_reconvergence_secs": memory_wall,
            "memory_overhead": memory_overhead,
            "trace_events": trace_events_recorded,
            "stats_identical": true,
        }),
    });

    let text = serde_json::to_string_pretty(&payload).expect("serializable") + "\n";
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    println!(
        "hotpath throughput ({} nodes, {} threads, {} requested, {} available):",
        nodes, report.threads, report.threads_requested, report.parallelism_available
    );
    println!("  events/sec:        {events_per_sec:.0}");
    println!("  decisions/sec:     {decisions_per_sec:.0}");
    println!("  full-rescan ratio: {full_rescan_ratio:.3}");
    println!("  trial wall sum:    {wall_sum:.2} s (batch {batch_wall_secs:.2} s)");
    for rss in &per_scheme_rss {
        println!(
            "  peak RSS [{}]: {} kB{}",
            rss["scheme"].as_str().unwrap_or("?"),
            rss["peak_rss_kb"].as_u64().unwrap_or(0),
            if rss_reset_supported {
                ""
            } else {
                " (cumulative: watermark reset unsupported)"
            }
        );
    }
    println!(
        "warm-start sweep ({} points, {} fractions per cell):",
        sweep.len(),
        FAILURE_FRACTIONS.len()
    );
    println!(
        "  cold: {sweep_cold_secs:.2} s   warm: {sweep_warm_secs:.2} s   speedup: {speedup:.2}x"
    );
    println!(
        "  snapshots: {} built ({:.2} s), {} forked ({:.3} s), {} hits / {} misses",
        warm_stats.builds,
        warm_stats.build_wall_secs,
        warm_stats.forks,
        warm_stats.fork_wall_secs,
        warm_stats.hits,
        warm_stats.misses
    );
    for (i, s) in schemes.iter().enumerate() {
        println!(
            "  {:24} cold {:6.2} s   warm {:6.2} s   {:.2}x",
            s.name,
            cold_by_scheme[i],
            warm_by_scheme[i],
            if warm_by_scheme[i] > 0.0 {
                cold_by_scheme[i] / warm_by_scheme[i]
            } else {
                0.0
            }
        );
    }
    println!("FEL backends ({} nodes, {} schemes):", nodes, schemes.len());
    for row in &fel_rows {
        println!(
            "  {:9} {:6.2} s   {:.0} events/sec",
            row["backend"].as_str().unwrap_or("?"),
            row["wall_secs"].as_f64().unwrap_or(0.0),
            row["events_per_sec"].as_f64().unwrap_or(0.0)
        );
    }
    println!("  winner: {fel_winner} (default stays heap)");
    println!("sharded event loop ({parallelism_available} cores available):");
    for section in &sharded_sections {
        println!("  {} nodes:", section["nodes"].as_u64().unwrap_or(0));
        for row in section["rows"].as_array().into_iter().flatten() {
            println!(
                "    {} shards x {} streams ({} effective): {:6.2} s   {:.0} events/sec   {:.2}x vs serial",
                row["shards_requested"].as_u64().unwrap_or(0),
                row["commit_streams"].as_u64().unwrap_or(0),
                row["workers_effective"].as_u64().unwrap_or(0),
                row["wall_secs"].as_f64().unwrap_or(0.0),
                row["events_per_sec"].as_f64().unwrap_or(0.0),
                row["speedup_vs_serial"].as_f64().unwrap_or(0.0)
            );
            let p = &row["phases"];
            if !p.is_null() {
                println!(
                    "      phases: drain {:.2} s | A {:.2} s | walk {:.2} s | commit+merge {:.2} s | \
                     exchange {:.2} s ({}/{} epochs parallel, serial fraction {:.0}%)",
                    p["drain_secs"].as_f64().unwrap_or(0.0),
                    p["phase_a_secs"].as_f64().unwrap_or(0.0),
                    p["phase_b_secs"].as_f64().unwrap_or(0.0),
                    p["merge_secs"].as_f64().unwrap_or(0.0),
                    p["mailbox_exchange_secs"].as_f64().unwrap_or(0.0),
                    p["parallel_commit_epochs"].as_u64().unwrap_or(0),
                    p["epochs"].as_u64().unwrap_or(0),
                    p["serial_fraction"].as_f64().unwrap_or(0.0) * 100.0
                );
            }
        }
    }
    println!(
        "small-epoch overhead ({} workers, {} epochs/row):",
        small_epoch["workers"].as_u64().unwrap_or(0),
        small_epoch["epochs_per_row"].as_u64().unwrap_or(0)
    );
    for row in small_epoch["rows"].as_array().into_iter().flatten() {
        println!(
            "  {:2}-op epoch: channel handoff {:8.0} ns/epoch   parked pool {:8.0} ns/epoch   ({:.2}x)",
            row["ops_per_epoch"].as_u64().unwrap_or(0),
            row["channel_ns_per_epoch"].as_f64().unwrap_or(0.0),
            row["pool_ns_per_epoch"].as_f64().unwrap_or(0.0),
            row["pool_speedup"].as_f64().unwrap_or(0.0)
        );
    }
    println!("tracing overhead (re-convergence, best of {trace_runs}):");
    println!(
        "  sink Off:    {off_wall:.3} s   (diff this against the recorded pre-tracing baseline)"
    );
    println!(
        "  sink Memory: {memory_wall:.3} s   ({:+.1}% vs Off, {trace_events_recorded} events)",
        memory_overhead * 100.0
    );
    println!(
        "memory footprint ({} workload, fresh process per point):",
        memory_scheme.name
    );
    for row in &memory_rows {
        println!(
            "  {:5} nodes: peak RSS {:9} kB   {:9} routes   RIB {:6.1} B/route   RSS {:7.1} B/route   node high-water {} kB   {} config(s)",
            row["nodes"].as_u64().unwrap_or(0),
            row["peak_rss_kb"].as_u64().unwrap_or(0),
            row["routes"].as_u64().unwrap_or(0),
            row["rib_bytes_per_route"].as_f64().unwrap_or(0.0),
            row["peak_rss_bytes_per_route"].as_f64().unwrap_or(0.0),
            row["max_node_rib_heap_bytes"].as_u64().unwrap_or(0) / 1024,
            row["config_arena_entries"].as_u64().unwrap_or(0)
        );
    }
    println!("full-table burst axis (fresh process per point):");
    for row in &fulltable_rows {
        println!(
            "  {:6}-prefix table ({} nodes): {:7} withdrawn   {:8.0} events/sec   delay {:6.1} s sim   peak RSS {:9} kB   RIB {:5.1} B/route",
            row["table_size"].as_u64().unwrap_or(0),
            row["nodes"].as_u64().unwrap_or(0),
            row["withdrawn_prefixes"].as_u64().unwrap_or(0),
            row["events_per_sec"].as_f64().unwrap_or(0.0),
            row["convergence_delay_secs"].as_f64().unwrap_or(0.0),
            row["peak_rss_kb"].as_u64().unwrap_or(0),
            row["rib_bytes_per_route"].as_f64().unwrap_or(0.0)
        );
    }
    println!("  written to {}", args.out);
    ExitCode::SUCCESS
}
