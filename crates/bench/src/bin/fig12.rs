//! Regenerates Figure 12 of the paper. See `bgpsim::figures::fig12`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig12);
}
