//! `bgpsim` — command-line front end for one-off experiments.
//!
//! ```text
//! bgpsim [--nodes N] [--topology 70-30|50-50|85-15|50-50-dense|realistic]
//!        [--scheme S] [--mrai SECS] [--failure FRAC] [--region center|corner|random]
//!        [--trials T] [--seed SEED] [--json] [--policy] [--damping]
//!        [--hold-timer SECS] [--prefixes K]
//!
//! schemes: constant (default), degree-dependent, dynamic, batching,
//!          batching+dynamic, tcp-batch, oracle, expedite
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p bgpsim-bench --bin bgpsim -- \
//!     --scheme batching --mrai 0.5 --failure 0.2 --trials 5
//! cargo run --release -p bgpsim-bench --bin bgpsim -- \
//!     --topology realistic --scheme dynamic --failure 0.05 --json
//! ```

use std::process::ExitCode;

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

#[derive(Debug)]
struct Args {
    nodes: usize,
    topology: String,
    scheme: String,
    mrai: f64,
    failure: f64,
    region: String,
    trials: u32,
    seed: u64,
    json: bool,
    policy: bool,
    damping: bool,
    hold_timer: Option<f64>,
    prefixes: usize,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            nodes: 120,
            topology: "70-30".into(),
            scheme: "constant".into(),
            mrai: 0.5,
            failure: 0.05,
            region: "center".into(),
            trials: 3,
            seed: 2006,
            json: false,
            policy: false,
            damping: false,
            hold_timer: None,
            prefixes: 1,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--topology" => args.topology = value("--topology")?,
            "--scheme" => args.scheme = value("--scheme")?,
            "--mrai" => {
                args.mrai = value("--mrai")?
                    .parse()
                    .map_err(|e| format!("--mrai: {e}"))?;
            }
            "--failure" => {
                args.failure = value("--failure")?
                    .parse()
                    .map_err(|e| format!("--failure: {e}"))?;
            }
            "--region" => args.region = value("--region")?,
            "--trials" => {
                args.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--policy" => args.policy = true,
            "--damping" => args.damping = true,
            "--hold-timer" => {
                args.hold_timer = Some(
                    value("--hold-timer")?
                        .parse()
                        .map_err(|e| format!("--hold-timer: {e}"))?,
                );
            }
            "--prefixes" => {
                args.prefixes = value("--prefixes")?
                    .parse()
                    .map_err(|e| format!("--prefixes: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("help".into());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: bgpsim [--nodes N] [--topology 70-30|50-50|85-15|50-50-dense|realistic]\n\
         \x20             [--scheme constant|degree-dependent|dynamic|batching|\n\
         \x20                       batching+dynamic|tcp-batch|oracle|expedite]\n\
         \x20             [--mrai SECS] [--failure FRAC] [--region center|corner|random]\n\
         \x20             [--trials T] [--seed SEED] [--json] [--policy] [--damping]\n\
         \x20             [--hold-timer SECS] [--prefixes K]"
    );
}

fn build(args: &Args) -> Result<Experiment, String> {
    let topology = match args.topology.as_str() {
        "70-30" => TopologySpec::seventy_thirty(args.nodes),
        "50-50" => TopologySpec::fifty_fifty(args.nodes),
        "85-15" => TopologySpec::eighty_five_fifteen(args.nodes),
        "50-50-dense" => TopologySpec::fifty_fifty_dense(args.nodes),
        "realistic" => TopologySpec::realistic(args.nodes),
        other => return Err(format!("unknown topology {other}")),
    };
    let mut scheme = match args.scheme.as_str() {
        "constant" => Scheme::constant_mrai(args.mrai),
        "degree-dependent" => Scheme::degree_dependent(args.mrai, 2.25, 8),
        "dynamic" => Scheme::dynamic_default(),
        "batching" => Scheme::batching(args.mrai),
        "batching+dynamic" => Scheme::batching_plus_dynamic(),
        "tcp-batch" => Scheme::tcp_batch(args.mrai, 32),
        "oracle" => Scheme::oracle(&[(0.025, 0.5), (0.075, 1.25), (1.0, 2.25)]),
        "expedite" => Scheme::constant_mrai(args.mrai).with_expedited_improvements(),
        other => return Err(format!("unknown scheme {other}")),
    };
    if args.policy {
        scheme = scheme.with_policy();
    }
    if args.damping {
        scheme = scheme.with_damping(bgpsim_bgp::damping::DampingConfig::paper_scale());
    }
    if let Some(h) = args.hold_timer {
        scheme = scheme.with_hold_timer(bgpsim_des::SimDuration::from_secs_f64(h));
    }
    if args.prefixes > 1 {
        scheme = scheme.with_prefixes_per_as(args.prefixes);
    }
    let failure = match args.region.as_str() {
        "center" => FailureSpec::CenterFraction(args.failure),
        "corner" => FailureSpec::CornerFraction(args.failure),
        "random" => FailureSpec::RandomFraction(args.failure),
        other => return Err(format!("unknown region {other}")),
    };
    Ok(Experiment {
        topology,
        scheme,
        failure,
        trials: args.trials,
        base_seed: args.seed,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let exp = match build(&args) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let agg = exp.run();
    if args.json {
        let payload = serde_json::json!({
            "experiment": exp,
            "mean_delay_secs": agg.mean_delay_secs(),
            "std_delay_secs": agg.std_delay_secs(),
            "mean_messages": agg.mean_messages(),
            "mean_stale_deleted": agg.mean_stale_deleted(),
            "max_peak_queue": agg.max_peak_queue(),
            "runs": agg.runs,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&payload).expect("serializable")
        );
    } else {
        println!("scheme:            {}", exp.scheme.name);
        println!(
            "topology:          {} ({} nodes)",
            args.topology, args.nodes
        );
        println!(
            "failure:           {:.1}% ({})",
            args.failure * 100.0,
            args.region
        );
        println!("trials:            {}", args.trials);
        println!(
            "mean delay:        {:.2} s (σ {:.2})",
            agg.mean_delay_secs(),
            agg.std_delay_secs()
        );
        println!("mean messages:     {:.0}", agg.mean_messages());
        println!("stale deleted:     {:.0}", agg.mean_stale_deleted());
        println!("max queue peak:    {}", agg.max_peak_queue());
    }
    ExitCode::SUCCESS
}
