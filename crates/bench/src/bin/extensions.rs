//! Regenerates the extension experiments (paper future-work items and
//! model ablations) — see `bgpsim::extensions`. Set `BGPSIM_ONLY` to a
//! comma-separated id list (e.g. `BGPSIM_ONLY=ext-ibgp,ext-policy`) to
//! regenerate a subset.
use std::time::Instant;

fn main() {
    let opts = bgpsim_bench::opts_from_env();
    let only = bgpsim_bench::only_filter();
    let total = Instant::now();
    let mut ran = 0usize;
    for (id, figure) in bgpsim::extensions::all_extensions() {
        if !bgpsim_bench::selected(&only, id) {
            continue;
        }
        ran += 1;
        let started = Instant::now();
        let data = figure(opts);
        println!("{}", bgpsim::report::render_table(&data));
        println!("[{id} in {:.1}s]\n", started.elapsed().as_secs_f64());
        if let Ok(dir) = std::env::var("BGPSIM_OUT") {
            bgpsim_bench::write_outputs(&data, std::path::Path::new(&dir));
        }
    }
    println!(
        "{ran} extension experiments in {:.1}s (nodes={}, trials={}, seed={})",
        total.elapsed().as_secs_f64(),
        opts.nodes,
        opts.trials,
        opts.base_seed
    );
}
