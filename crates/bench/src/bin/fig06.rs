//! Regenerates Figure 06 of the paper. See `bgpsim::figures::fig06`.
fn main() {
    bgpsim_bench::run_and_print(bgpsim::figures::fig06);
}
