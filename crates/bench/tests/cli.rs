//! End-to-end tests of the `bgpsim` command-line binary.

use std::process::Command;

fn bgpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bgpsim"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = bgpsim().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage: bgpsim"), "no usage text: {text}");
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = bgpsim().arg("--frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown flag"), "missing diagnostic: {text}");
}

#[test]
fn small_run_reports_results() {
    let out = bgpsim()
        .args([
            "--nodes",
            "25",
            "--failure",
            "0.1",
            "--trials",
            "1",
            "--seed",
            "9",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean delay:"), "missing results: {text}");
    assert!(text.contains("mean messages:"));
}

#[test]
fn json_output_is_parseable_and_complete() {
    let out = bgpsim()
        .args([
            "--nodes",
            "25",
            "--scheme",
            "batching",
            "--failure",
            "0.1",
            "--trials",
            "2",
            "--seed",
            "9",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let value: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(value["mean_delay_secs"].as_f64().expect("delay present") > 0.0);
    assert_eq!(value["runs"].as_array().expect("runs present").len(), 2);
    assert!(value["experiment"]["scheme"]["name"]
        .as_str()
        .expect("scheme name")
        .contains("batching"));
}

#[test]
fn same_seed_gives_identical_json() {
    let run = || {
        bgpsim()
            .args([
                "--nodes",
                "20",
                "--failure",
                "0.1",
                "--trials",
                "1",
                "--seed",
                "44",
                "--json",
            ])
            .output()
            .expect("binary runs")
            .stdout
    };
    assert_eq!(run(), run(), "CLI runs must be reproducible per seed");
}

#[test]
fn ablation_flags_are_accepted() {
    let out = bgpsim()
        .args([
            "--nodes",
            "20",
            "--failure",
            "0.05",
            "--trials",
            "1",
            "--seed",
            "3",
            "--policy",
            "--prefixes",
            "2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
