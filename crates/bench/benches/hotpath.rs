//! Criterion microbenchmarks for the simulator hot path.
//!
//! One full failure-pipeline trial per scheme on a small fixed topology —
//! the same cells the `hotpath` binary times at scale, sized so the group
//! finishes quickly (and quicker still with `CRITERION_FAST=1`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

fn cell(scheme: Scheme) -> Experiment {
    Experiment {
        topology: TopologySpec::seventy_thirty(40),
        scheme,
        failure: FailureSpec::CenterFraction(0.10),
        trials: 1,
        base_seed: 777,
    }
}

fn hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    for (name, scheme) in [
        ("constant_mrai_0.5", Scheme::constant_mrai(0.5)),
        ("batching_0.5", Scheme::batching(0.5)),
        ("dynamic", Scheme::dynamic_default()),
    ] {
        let exp = cell(scheme);
        g.bench_function(name, |b| b.iter(|| black_box(exp.run_trial(0))));
    }
    g.finish();
}

criterion_group!(benches, hotpath);
criterion_main!(benches);
