//! Criterion benchmarks.
//!
//! Two layers:
//!
//! * **micro** — throughput of the substrates: the event queue, the
//!   decision process, the three queue disciplines, topology generation,
//!   and one full failure run per scheme.
//! * **figures** — every paper figure regenerated at smoke scale (30
//!   nodes, 1 trial). These document the relative cost of each experiment;
//!   the full-fidelity tables come from the `figNN` binaries
//!   (`cargo run --release -p bgpsim-bench --bin fig01`, …).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::figures::{self, FigOpts};
use bgpsim::scheme::Scheme;
use bgpsim_bgp::decision::select_best;
use bgpsim_bgp::queue::{InputQueue, QueueDiscipline, WorkItem};
use bgpsim_bgp::rib::{AdjRibIn, RouteEntry};
use bgpsim_bgp::{AsPath, Prefix, UpdateMsg};
use bgpsim_des::{Scheduler, SimTime};
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::{AsId, RouterId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("des/heap schedule+pop 10k events", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            for i in 0..10_000u64 {
                s.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = s.next() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    c.bench_function("des/calendar schedule+pop 10k events", |b| {
        use bgpsim_des::CalendarQueue;
        b.iter(|| {
            let mut s: CalendarQueue<u64> = CalendarQueue::new();
            for i in 0..10_000u64 {
                s.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = s.next() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_decision(c: &mut Criterion) {
    let mut rib = AdjRibIn::new();
    let p = Prefix::new(0);
    for peer in 0..14u32 {
        let hops: Vec<AsId> = (0..(peer % 5 + 1)).map(|h| AsId::new(100 + h)).collect();
        rib.insert(
            p,
            RouterId::new(peer),
            RouteEntry {
                path: AsPath::from_hops(hops),
                ibgp: false,
                rank: 0,
            },
        );
    }
    c.bench_function("bgp/decision 14 candidates", |b| {
        b.iter(|| black_box(select_best(black_box(p), black_box(&rib))))
    });
}

fn filled_queue(discipline: QueueDiscipline) -> InputQueue {
    let mut q = InputQueue::new(discipline);
    for i in 0..1000u32 {
        q.push(WorkItem::Update {
            from: RouterId::new(i % 8),
            msg: UpdateMsg::advertise(Prefix::new(i % 50), AsPath::from_hops([AsId::new(i % 16)])),
        });
    }
    q
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("bgp/queue drain 1000 items");
    for (name, d) in [
        ("fifo", QueueDiscipline::Fifo),
        ("batched", QueueDiscipline::Batched),
        ("tcp-batch", QueueDiscipline::TcpBatch { buffer: 32 }),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || filled_queue(d),
                |mut q| {
                    let mut n = 0usize;
                    loop {
                        let batch = q.pop_batch();
                        if batch.is_empty() {
                            break;
                        }
                        n += batch.len();
                    }
                    black_box(n)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    c.bench_function("topology/120-node 70-30 generation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            black_box(skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut rng).unwrap())
        })
    });
    c.bench_function("topology/120-node hierarchical generation", |b| {
        use bgpsim_topology::generators::{hierarchical, HierarchicalParams};
        let params = HierarchicalParams::three_tier_120();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            black_box(hierarchical(&params, &mut rng).unwrap())
        })
    });
}

fn run_once(scheme: Scheme) -> f64 {
    Experiment {
        topology: TopologySpec::seventy_thirty(40),
        scheme,
        failure: FailureSpec::CenterFraction(0.10),
        trials: 1,
        base_seed: 99,
    }
    .run_trial(0)
    .convergence_delay
    .as_secs_f64()
}

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("run/40-node 10% failure");
    g.sample_size(10);
    for (name, scheme) in [
        ("mrai-0.5", Scheme::constant_mrai(0.5)),
        ("mrai-2.25", Scheme::constant_mrai(2.25)),
        ("dynamic", Scheme::dynamic_default()),
        ("batching", Scheme::batching(0.5)),
        ("batching+dynamic", Scheme::batching_plus_dynamic()),
        ("tcp-batch", Scheme::tcp_batch(0.5, 32)),
        ("gao-rexford", Scheme::constant_mrai(0.5).with_policy()),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(run_once(scheme.clone()))));
    }
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures-smoke");
    g.sample_size(10);
    let opts = FigOpts {
        nodes: 30,
        trials: 1,
        base_seed: 5,
        threads: None,
    };
    for (id, figure) in figures::all_figures() {
        g.bench_function(id, |b| b.iter(|| black_box(figure(opts))));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_decision,
    bench_queues,
    bench_topology,
    bench_full_runs,
    bench_figures
);
criterion_main!(benches);
