//! A common interface over the future-event-list backends.
//!
//! The workspace has two API-compatible FELs — the binary-heap
//! [`Scheduler`] and the [`CalendarQueue`] (Brown 1988) — that deliver
//! identical `(time, id)` orders. [`FutureEventList`] captures the shared
//! contract, and [`Fel`] is a closed enum over the two so a simulation can
//! pick its backend at construction time (e.g. from the `BGPSIM_FEL`
//! environment variable) without paying dynamic dispatch on the pop path.

use crate::calendar::CalendarQueue;
use crate::event::EventId;
use crate::sched::Scheduler;
use crate::time::{SimDuration, SimTime};

/// The contract every future-event list in this crate satisfies.
///
/// Delivery order is total and deterministic: non-decreasing time, FIFO
/// (id order) within a timestamp. The split-phase methods
/// ([`drain_until`](FutureEventList::drain_until),
/// [`alloc_id`](FutureEventList::alloc_id),
/// [`mark_delivered`](FutureEventList::mark_delivered)) decompose
/// `next()` into its queue and accounting halves for the sharded event
/// loop's epoch commit.
pub trait FutureEventList<E> {
    /// Schedules `payload` at absolute time `at`.
    fn schedule(&mut self, at: SimTime, payload: E) -> EventId;
    /// Schedules `payload` to fire `delay` after the current time.
    fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now() + delay;
        self.schedule(at, payload)
    }
    /// Cancels a pending event; returns whether it was live.
    fn cancel(&mut self, id: EventId) -> bool;
    /// Pops the next live event, advancing the clock.
    fn next(&mut self) -> Option<(SimTime, E)>;
    /// Timestamp of the next live event.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Current simulation time.
    fn now(&self) -> SimTime;
    /// Number of live events.
    fn len(&self) -> usize;
    /// Whether no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total events scheduled over the list's lifetime.
    fn scheduled_count(&self) -> u64;
    /// Total events delivered over the list's lifetime.
    fn delivered_count(&self) -> u64;
    /// Removes every live event strictly before `bound`, in delivery
    /// order, without advancing the clock or the delivered count.
    fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)>;
    /// Allocates the next [`EventId`] without enqueueing, counted as
    /// scheduled.
    fn alloc_id(&mut self) -> EventId;
    /// Advances the clock to `at` and counts one delivery, without popping.
    fn mark_delivered(&mut self, at: SimTime);
    /// Advances the clock to `at` and counts `n` deliveries at once.
    fn mark_delivered_many(&mut self, at: SimTime, n: u64);
    /// Enqueues `payload` at `at` under an id previously handed out by
    /// [`alloc_id`](FutureEventList::alloc_id) — possibly another list's;
    /// the local counter is bumped past it — without counting it as
    /// scheduled again.
    fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E);
    /// Removes every live event in arbitrary order, without advancing the
    /// clock or the delivered count. The sharded engine's partition step.
    fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)>;
}

impl<E> FutureEventList<E> for Scheduler<E> {
    fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        Scheduler::schedule(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        Scheduler::cancel(self, id)
    }
    fn next(&mut self) -> Option<(SimTime, E)> {
        Scheduler::next(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        Scheduler::peek_time(self)
    }
    fn now(&self) -> SimTime {
        Scheduler::now(self)
    }
    fn len(&self) -> usize {
        Scheduler::len(self)
    }
    fn scheduled_count(&self) -> u64 {
        Scheduler::scheduled_count(self)
    }
    fn delivered_count(&self) -> u64 {
        Scheduler::delivered_count(self)
    }
    fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)> {
        Scheduler::drain_until(self, bound)
    }
    fn alloc_id(&mut self) -> EventId {
        Scheduler::alloc_id(self)
    }
    fn mark_delivered(&mut self, at: SimTime) {
        Scheduler::mark_delivered(self, at)
    }
    fn mark_delivered_many(&mut self, at: SimTime, n: u64) {
        Scheduler::mark_delivered_many(self, at, n)
    }
    fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E) {
        Scheduler::insert_allocated(self, at, id, payload)
    }
    fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)> {
        Scheduler::drain_all(self)
    }
}

impl<E> FutureEventList<E> for CalendarQueue<E> {
    fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        CalendarQueue::schedule(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        CalendarQueue::cancel(self, id)
    }
    fn next(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::next(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    fn now(&self) -> SimTime {
        CalendarQueue::now(self)
    }
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    fn scheduled_count(&self) -> u64 {
        CalendarQueue::scheduled_count(self)
    }
    fn delivered_count(&self) -> u64 {
        CalendarQueue::delivered_count(self)
    }
    fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)> {
        CalendarQueue::drain_until(self, bound)
    }
    fn alloc_id(&mut self) -> EventId {
        CalendarQueue::alloc_id(self)
    }
    fn mark_delivered(&mut self, at: SimTime) {
        CalendarQueue::mark_delivered(self, at)
    }
    fn mark_delivered_many(&mut self, at: SimTime, n: u64) {
        CalendarQueue::mark_delivered_many(self, at, n)
    }
    fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E) {
        CalendarQueue::insert_allocated(self, at, id, payload)
    }
    fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)> {
        CalendarQueue::drain_all(self)
    }
}

/// Which future-event-list backend to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FelKind {
    /// Binary-heap [`Scheduler`] (the default).
    #[default]
    Heap,
    /// [`CalendarQueue`] (Brown 1988).
    Calendar,
}

impl FelKind {
    /// Parses a backend name (`heap` or `calendar`, case-insensitive,
    /// surrounding whitespace ignored). Returns `None` when unrecognized.
    pub fn parse(raw: &str) -> Option<FelKind> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "heap" => Some(FelKind::Heap),
            "calendar" => Some(FelKind::Calendar),
            _ => None,
        }
    }

    /// Reads the backend choice from the `BGPSIM_FEL` environment variable.
    /// Returns `None` when unset; an unrecognized value warns on stderr
    /// (naming the offending value) and also returns `None`, so the caller
    /// falls back to its default rather than silently misconfiguring.
    pub fn from_env() -> Option<FelKind> {
        let raw = std::env::var("BGPSIM_FEL").ok()?;
        let kind = FelKind::parse(&raw);
        if kind.is_none() {
            eprintln!(
                "warning: ignoring invalid BGPSIM_FEL={raw:?} \
                 (expected \"heap\" or \"calendar\"); using the default backend"
            );
        }
        kind
    }

    /// Stable lowercase name (`heap` / `calendar`).
    pub fn name(self) -> &'static str {
        match self {
            FelKind::Heap => "heap",
            FelKind::Calendar => "calendar",
        }
    }
}

/// A future-event list with a runtime-selected backend.
///
/// A closed enum rather than a trait object: the pop path stays a direct
/// (branch-predicted) match, and the whole list remains `Clone`-able for
/// warm-start snapshots.
pub enum Fel<E> {
    /// Binary-heap backend.
    Heap(Scheduler<E>),
    /// Calendar-queue backend.
    Calendar(CalendarQueue<E>),
}

impl<E: Clone> Clone for Fel<E> {
    fn clone(&self) -> Self {
        match self {
            Fel::Heap(s) => Fel::Heap(s.clone()),
            Fel::Calendar(q) => Fel::Calendar(q.clone()),
        }
    }
}

impl<E> std::fmt::Debug for Fel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fel::Heap(s) => f.debug_tuple("Fel::Heap").field(s).finish(),
            Fel::Calendar(q) => f.debug_tuple("Fel::Calendar").field(q).finish(),
        }
    }
}

impl<E> Default for Fel<E> {
    fn default() -> Self {
        Fel::new(FelKind::Heap)
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Fel::Heap($inner) => $body,
            Fel::Calendar($inner) => $body,
        }
    };
}

impl<E> Fel<E> {
    /// Creates an empty list with the given backend.
    pub fn new(kind: FelKind) -> Fel<E> {
        match kind {
            FelKind::Heap => Fel::Heap(Scheduler::new()),
            FelKind::Calendar => Fel::Calendar(CalendarQueue::new()),
        }
    }

    /// Which backend this list uses.
    pub fn kind(&self) -> FelKind {
        match self {
            Fel::Heap(_) => FelKind::Heap,
            Fel::Calendar(_) => FelKind::Calendar,
        }
    }

    /// Schedules `payload` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        delegate!(self, inner => inner.schedule(at, payload))
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        delegate!(self, inner => inner.schedule_after(delay, payload))
    }

    /// Cancels a pending event; returns whether it was live.
    pub fn cancel(&mut self, id: EventId) -> bool {
        delegate!(self, inner => inner.cancel(id))
    }

    /// Pops the next live event, advancing the clock.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        delegate!(self, inner => inner.next())
    }

    /// Timestamp of the next live event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Fel::Heap(s) => s.peek_time(),
            Fel::Calendar(q) => q.peek_time(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        delegate!(self, inner => inner.now())
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        delegate!(self, inner => inner.len())
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        delegate!(self, inner => inner.is_empty())
    }

    /// Total events scheduled over the list's lifetime.
    pub fn scheduled_count(&self) -> u64 {
        delegate!(self, inner => inner.scheduled_count())
    }

    /// Total events delivered over the list's lifetime.
    pub fn delivered_count(&self) -> u64 {
        delegate!(self, inner => inner.delivered_count())
    }

    /// Removes every live event strictly before `bound`, in delivery
    /// order, without advancing the clock or the delivered count.
    pub fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)> {
        delegate!(self, inner => inner.drain_until(bound))
    }

    /// Allocates the next [`EventId`] without enqueueing, counted as
    /// scheduled.
    pub fn alloc_id(&mut self) -> EventId {
        delegate!(self, inner => inner.alloc_id())
    }

    /// Advances the clock to `at` and counts one delivery, without popping.
    pub fn mark_delivered(&mut self, at: SimTime) {
        delegate!(self, inner => inner.mark_delivered(at))
    }

    /// Advances the clock to `at` and counts `n` deliveries at once.
    pub fn mark_delivered_many(&mut self, at: SimTime, n: u64) {
        delegate!(self, inner => inner.mark_delivered_many(at, n))
    }

    /// Enqueues `payload` at `at` under an id previously handed out by
    /// [`alloc_id`](Fel::alloc_id) — possibly another list's; the local
    /// counter is bumped past it — without counting it as scheduled again.
    pub fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E) {
        delegate!(self, inner => inner.insert_allocated(at, id, payload))
    }

    /// Removes every live event in arbitrary order, without advancing the
    /// clock or the delivered count. The sharded engine's partition step:
    /// the central FEL is emptied wholesale at pump start and each event
    /// re-inserted into its owning shard's FEL.
    pub fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)> {
        match self {
            Fel::Heap(s) => s.drain_all(),
            Fel::Calendar(q) => q.drain_all(),
        }
    }
}

impl<E> FutureEventList<E> for Fel<E> {
    fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        Fel::schedule(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        Fel::cancel(self, id)
    }
    fn next(&mut self) -> Option<(SimTime, E)> {
        Fel::next(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        Fel::peek_time(self)
    }
    fn now(&self) -> SimTime {
        Fel::now(self)
    }
    fn len(&self) -> usize {
        Fel::len(self)
    }
    fn scheduled_count(&self) -> u64 {
        Fel::scheduled_count(self)
    }
    fn delivered_count(&self) -> u64 {
        Fel::delivered_count(self)
    }
    fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)> {
        Fel::drain_until(self, bound)
    }
    fn alloc_id(&mut self) -> EventId {
        Fel::alloc_id(self)
    }
    fn mark_delivered(&mut self, at: SimTime) {
        Fel::mark_delivered(self, at)
    }
    fn mark_delivered_many(&mut self, at: SimTime, n: u64) {
        Fel::mark_delivered_many(self, at, n)
    }
    fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E) {
        Fel::insert_allocated(self, at, id, payload)
    }
    fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)> {
        Fel::drain_all(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives both backends through the trait with the same inputs and
    /// asserts identical observable behavior.
    fn exercise(fel: &mut dyn FutureEventList<u32>) -> Vec<(SimTime, u32)> {
        for i in 0..30u64 {
            fel.schedule(SimTime::from_millis(i * 13 % 70), i as u32);
        }
        let dead = fel.schedule(SimTime::from_millis(40), 999);
        assert!(fel.cancel(dead));
        let mut out = Vec::new();
        let drained = fel.drain_until(SimTime::from_millis(30));
        for (at, _id, p) in drained {
            fel.mark_delivered(at);
            out.push((at, p));
        }
        while let Some(x) = fel.next() {
            out.push(x);
        }
        out
    }

    #[test]
    fn backends_agree_through_the_trait() {
        let mut heap: Scheduler<u32> = Scheduler::new();
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        let a = exercise(&mut heap);
        let b = exercise(&mut cal);
        assert_eq!(a, b, "heap and calendar disagree");
        assert_eq!(heap.delivered_count(), cal.delivered_count());
        assert_eq!(heap.scheduled_count(), cal.scheduled_count());
    }

    #[test]
    fn fel_enum_delegates_and_reports_kind() {
        let mut heap: Fel<u32> = Fel::new(FelKind::Heap);
        let mut cal: Fel<u32> = Fel::new(FelKind::Calendar);
        assert_eq!(heap.kind(), FelKind::Heap);
        assert_eq!(cal.kind(), FelKind::Calendar);
        let a = exercise(&mut heap);
        let b = exercise(&mut cal);
        assert_eq!(a, b);
        let fork = heap.clone();
        assert_eq!(fork.kind(), FelKind::Heap);
        assert_eq!(fork.delivered_count(), heap.delivered_count());
    }

    #[test]
    fn drain_all_agrees_across_backends_after_reinsertion() {
        // Partition round-trip: drain one list wholesale, re-insert into a
        // fresh list of the other backend, and the delivery order must be
        // the original (time, id) order — drain_all's arbitrary ordering
        // must not be observable.
        let mut src: Fel<u32> = Fel::new(FelKind::Heap);
        for i in 0..25u64 {
            src.schedule(SimTime::from_millis(i * 17 % 60), i as u32);
        }
        let dead = src.schedule(SimTime::from_millis(5), 999);
        assert!(src.cancel(dead));
        let mut reference = src.clone();
        let mut dst: Fel<u32> = Fel::new(FelKind::Calendar);
        for (at, id, p) in src.drain_all() {
            dst.insert_allocated(at, id, p);
        }
        assert!(src.is_empty());
        assert_eq!(dst.len(), 25);
        let got: Vec<_> = std::iter::from_fn(|| dst.next()).collect();
        let want: Vec<_> = std::iter::from_fn(|| reference.next()).collect();
        assert_eq!(got, want, "partition round-trip reordered deliveries");
    }

    #[test]
    fn fel_kind_names_are_stable() {
        assert_eq!(FelKind::Heap.name(), "heap");
        assert_eq!(FelKind::Calendar.name(), "calendar");
        assert_eq!(FelKind::default(), FelKind::Heap);
    }

    #[test]
    fn fel_kind_parse_accepts_known_names_and_rejects_garbage() {
        assert_eq!(FelKind::parse("heap"), Some(FelKind::Heap));
        assert_eq!(FelKind::parse("calendar"), Some(FelKind::Calendar));
        assert_eq!(FelKind::parse("HEAP"), Some(FelKind::Heap));
        assert_eq!(FelKind::parse(" Calendar \n"), Some(FelKind::Calendar));
        assert_eq!(FelKind::parse(""), None);
        assert_eq!(FelKind::parse("splay"), None);
        assert_eq!(FelKind::parse("heap,calendar"), None);
    }
}
