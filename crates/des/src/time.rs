//! Simulation time types.
//!
//! Time is an integer count of nanoseconds since the start of the
//! simulation. Integer time keeps the event queue exactly ordered (no
//! floating-point drift) and makes runs reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulation time (nanoseconds since simulation start).
///
/// `SimTime` is an absolute point on the simulation clock; the corresponding
/// span type is [`SimDuration`]. Subtracting two `SimTime`s yields a
/// `SimDuration`; adding a `SimDuration` to a `SimTime` yields a later
/// `SimTime`.
///
/// ```
/// use bgpsim_des::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(25);
/// assert_eq!(t1 - t0, SimDuration::from_millis(25));
/// assert!(t1 > t0);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
///
/// ```
/// use bgpsim_des::SimDuration;
///
/// let d = SimDuration::from_secs_f64(0.5);
/// assert_eq!(d.as_nanos(), 500_000_000);
/// assert_eq!(d * 3, SimDuration::from_millis(1500));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Constructs an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Constructs an instant from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Constructs a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "duration of {secs} seconds overflows SimDuration"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Raw nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span in fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Whether this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(
            SimDuration::from_millis(25).as_nanos(),
            25 * NANOS_PER_MILLI
        );
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_secs_f64(), 0.5);
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.as_nanos(), NANOS_PER_SEC);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(
            t - SimDuration::from_millis(500),
            SimTime::from_nanos(NANOS_PER_SEC / 2)
        );
        let mut u = t;
        u += SimDuration::from_secs(1);
        assert_eq!(u, SimTime::from_secs(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d + d, SimDuration::from_millis(200));
        assert_eq!(
            d - SimDuration::from_millis(40),
            SimDuration::from_millis(60)
        );
        assert_eq!(d.mul_f64(0.75), SimDuration::from_millis(75));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(1).max(SimTime::from_secs(2)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    #[should_panic(expected = "subtracting a later SimTime")]
    fn subtracting_later_time_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
