//! Internal event-queue entries and event identifiers.

use std::cmp::Ordering;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, used to cancel it before it fires.
///
/// Returned by [`Scheduler::schedule`](crate::Scheduler::schedule). Ids are
/// unique for the lifetime of a scheduler and are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number backing this id (monotone in schedule order).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw sequence number.
    ///
    /// The inverse of [`as_u64`](EventId::as_u64), for callers that ship id
    /// numbers across threads (the sharded commit's parallel apply streams)
    /// and hand them back via
    /// [`insert_allocated`](crate::Scheduler::insert_allocated). The number
    /// must come from a previous [`alloc_id`](crate::Scheduler::alloc_id) /
    /// `schedule` on the same list; fabricated ids break the determinism
    /// contract.
    pub fn from_u64(raw: u64) -> EventId {
        EventId(raw)
    }
}

/// A heap entry: ordered by time, then by insertion sequence so that events
/// scheduled for the same instant fire in FIFO order.
#[derive(Clone)]
pub(crate) struct Entry<E> {
    pub(crate) at: SimTime,
    pub(crate) id: EventId,
    pub(crate) payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event
        // (smallest time, then smallest sequence number) on top.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_earliest_then_fifo() {
        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            at: SimTime::from_secs(2),
            id: EventId(0),
            payload: "late",
        });
        heap.push(Entry {
            at: SimTime::from_secs(1),
            id: EventId(1),
            payload: "first",
        });
        heap.push(Entry {
            at: SimTime::from_secs(1),
            id: EventId(2),
            payload: "second",
        });
        assert_eq!(heap.pop().unwrap().payload, "first");
        assert_eq!(heap.pop().unwrap().payload, "second");
        assert_eq!(heap.pop().unwrap().payload, "late");
    }
}
