//! # bgpsim-des — deterministic discrete-event simulation engine
//!
//! This crate is the simulation substrate for the `bgpsim` workspace, a
//! reproduction of *"Improving BGP Convergence Delay for Large-Scale
//! Failures"* (Sahoo, Kant, Mohapatra — DSN 2006). The paper used the Java
//! SSFNet simulator; this crate provides the equivalent core facilities in
//! Rust:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulation time, so
//!   event ordering is exact and runs are bit-for-bit reproducible.
//! * [`Scheduler`] — a stable future-event list: events scheduled for the
//!   same instant are delivered in insertion order, and events can be
//!   cancelled via their [`EventId`].
//! * [`CalendarQueue`] — an API-compatible calendar-queue alternative
//!   (Brown 1988), property-tested to deliver the exact same order; the
//!   benches compare the two.
//! * [`FutureEventList`] / [`Fel`] — the shared FEL contract and a
//!   runtime-selected backend enum, so a simulation can swap heap for
//!   calendar (env knob `BGPSIM_FEL`) without code changes.
//! * [`rng`] — deterministic per-component random-number streams derived
//!   from a single root seed, plus the RFC 1771 timer-jitter helper.
//!
//! # Example
//!
//! ```
//! use bgpsim_des::{Scheduler, SimDuration};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_after(SimDuration::from_millis(25), "arrive");
//! sched.schedule_after(SimDuration::from_millis(10), "depart");
//! let (t, ev) = sched.next().expect("two events are pending");
//! assert_eq!(ev, "depart");
//! assert_eq!(t, bgpsim_des::SimTime::ZERO + SimDuration::from_millis(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod event;
mod fel;
pub mod rng;
mod sched;
mod time;

pub use calendar::CalendarQueue;
pub use event::EventId;
pub use fel::{Fel, FelKind, FutureEventList};
pub use rng::RngStreams;
pub use sched::Scheduler;
pub use time::{SimDuration, SimTime};
