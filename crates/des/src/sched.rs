//! The future-event list.

use std::collections::BinaryHeap;

use crate::event::{Entry, EventId};
use crate::time::{SimDuration, SimTime};

/// A deterministic future-event list.
///
/// Events are delivered in non-decreasing time order; events scheduled for
/// the same instant are delivered in the order they were scheduled (stable
/// FIFO). Cancellation is lazy: cancelled events stay in the heap but are
/// skipped when popped.
///
/// The scheduler is the single source of "now" for a simulation: [`next`]
/// advances the clock to the popped event's timestamp.
///
/// # Example
///
/// ```
/// use bgpsim_des::{Scheduler, SimDuration, SimTime};
///
/// let mut sched: Scheduler<u32> = Scheduler::new();
/// sched.schedule(SimTime::from_secs(2), 2);
/// let id = sched.schedule(SimTime::from_secs(1), 1);
/// sched.cancel(id);
/// assert_eq!(sched.next(), Some((SimTime::from_secs(2), 2)));
/// assert_eq!(sched.next(), None);
/// ```
///
/// [`next`]: Scheduler::next
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Cancel tombstones as a bitset windowed at `tomb_base`: bit
    /// `id - tomb_base` is set iff `id` is cancelled. Event ids are a dense
    /// monotone counter, so a windowed bitset gives O(1) set/test/clear
    /// with no hashing — the pop hot path pays only a `tomb_live == 0`
    /// branch when nothing is cancelled (the common case).
    tomb_bits: Vec<u64>,
    /// Ids below this are settled: delivered or retired by a purge.
    /// `cancel` on them returns `false` without touching the bitset.
    tomb_base: u64,
    /// Number of set bits in `tomb_bits`.
    tomb_live: usize,
    now: SimTime,
    next_id: u64,
    scheduled: u64,
    delivered: u64,
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("scheduled", &self.scheduled)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// Cloning a scheduler captures its complete state — pending events, the
/// clock, cancel tombstones, the id counter, and the lifetime counters —
/// so a simulation can be snapshotted at a quiescent point and forked:
/// the clone delivers exactly the events (and event ids) the original
/// would, byte for byte. This is the capture/restore primitive behind the
/// warm-start sweep engine in `bgpsim::warm`.
impl<E: Clone> Clone for Scheduler<E> {
    fn clone(&self) -> Self {
        Scheduler {
            heap: self.heap.clone(),
            tomb_bits: self.tomb_bits.clone(),
            tomb_base: self.tomb_base,
            tomb_live: self.tomb_live,
            now: self.now,
            next_id: self.next_id,
            scheduled: self.scheduled,
            delivered: self.delivered,
        }
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            tomb_bits: Vec::new(),
            tomb_base: 0,
            tomb_live: 0,
            now: SimTime::ZERO,
            next_id: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently delivered
    /// event (or [`SimTime::ZERO`] before the first delivery).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns an [`EventId`] that can be passed to [`cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`] — the simulation cannot
    /// schedule into its own past.
    ///
    /// [`cancel`]: Scheduler::cancel
    /// [`now`]: Scheduler::now
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        let id = self.alloc_id();
        self.heap.push(Entry { at, id, payload });
        id
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule(self.now + delay, payload)
    }

    /// Schedules `payload` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule(self.now, payload)
    }

    /// Allocates the next [`EventId`] without enqueueing anything, counting
    /// it as scheduled.
    ///
    /// This is the id-assignment half of [`schedule`], split out for the
    /// sharded event loop: during an epoch's commit phase, intra-epoch
    /// events were already executed on a shard worker, but they must still
    /// consume ids in serial order so that every later id — and therefore
    /// every same-instant tie-break — is byte-identical to a serial run.
    ///
    /// [`schedule`]: Scheduler::schedule
    pub fn alloc_id(&mut self) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.scheduled += 1;
        id
    }

    /// Advances the clock to `at` and counts one delivery, without popping.
    ///
    /// The delivery-accounting half of [`next`], split out for the sharded
    /// event loop: the commit phase replays events that were drained (or
    /// created) during the epoch and must leave `now`/`delivered` exactly
    /// as a serial run would.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`].
    ///
    /// [`next`]: Scheduler::next
    pub fn mark_delivered(&mut self, at: SimTime) {
        assert!(at >= self.now, "delivery clock cannot go backwards");
        self.now = at;
        self.delivered += 1;
    }

    /// Advances the clock to `at` and counts `n` deliveries at once.
    ///
    /// Equivalent to `n` [`mark_delivered`](Scheduler::mark_delivered)
    /// calls ending at `at`: the sharded commit walks a whole epoch in
    /// order and settles the delivery accounting in one step, with `at`
    /// the timestamp of the epoch's last event. A no-op when `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 0` and `at` is earlier than [`now`](Scheduler::now).
    pub fn mark_delivered_many(&mut self, at: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        assert!(at >= self.now, "delivery clock cannot go backwards");
        self.now = at;
        self.delivered += n;
    }

    /// Enqueues `payload` at `at` under an id already handed out by
    /// [`alloc_id`](Scheduler::alloc_id), without counting it as scheduled
    /// again.
    ///
    /// The enqueue half of [`schedule`](Scheduler::schedule), for the
    /// sharded engine: ids are allocated in serial order during the epoch
    /// walk, the payloads are built on parallel apply streams, and each
    /// destination shard's FEL receives them here. Delivery order is
    /// unaffected by insertion order — entries are totally ordered by
    /// `(time, id)` — and the id may come from a *different* scheduler's
    /// counter (the shard-owned FELs never allocate ids themselves; the
    /// central walk does). This scheduler's own counter is bumped past
    /// `id` so a later local allocation can never collide with it.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Scheduler::now).
    pub fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        self.next_id = self.next_id.max(id.0 + 1);
        self.heap.push(Entry { at, id, payload });
    }

    /// Removes and returns every live event strictly before `bound`, in
    /// delivery order, without advancing the clock or the delivered count.
    ///
    /// Cancelled entries encountered on the way are retired. An event
    /// scheduled exactly at `bound` stays queued — the epoch window is
    /// half-open, matching the serial engine's delivery order for events
    /// that land precisely on an epoch boundary.
    pub fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)> {
        let mut out = Vec::new();
        while let Some(head) = self.heap.peek() {
            if head.at >= bound {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            if self.tomb_live > 0 && self.take_tombstone(entry.id) {
                continue;
            }
            out.push((entry.at, entry.id, entry.payload));
        }
        out
    }

    /// Removes and returns every live event in **arbitrary order**, without
    /// advancing the clock or the delivered count.
    ///
    /// The partition step of the sharded engine: at pump start the central
    /// FEL is emptied wholesale and every event is re-inserted into its
    /// owning shard's FEL (via [`insert_allocated`]), so inserts and drains
    /// become shard-local for the rest of the pump. Cancelled entries are
    /// retired on the way out, never returned. Callers must not rely on
    /// the ordering — re-insertion re-establishes the `(time, id)` total
    /// order wherever the events land.
    ///
    /// [`insert_allocated`]: Scheduler::insert_allocated
    pub fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)> {
        let entries = std::mem::take(&mut self.heap);
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            if self.tomb_live > 0 && self.take_tombstone(entry.id) {
                continue;
            }
            out.push((entry.at, entry.id, entry.payload));
        }
        out
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id || id.0 < self.tomb_base {
            // Never handed out, or already settled (delivered / retired by
            // a purge — every live heap entry has id >= tomb_base).
            return false;
        }
        let idx = (id.0 - self.tomb_base) as usize;
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if word >= self.tomb_bits.len() {
            self.tomb_bits.resize(word + 1, 0);
        }
        if self.tomb_bits[word] & bit != 0 {
            return false;
        }
        self.tomb_bits[word] |= bit;
        self.tomb_live += 1;
        self.maybe_purge();
        true
    }

    /// Whether `id` carries a live tombstone.
    fn is_tombstoned(&self, id: EventId) -> bool {
        if id.0 < self.tomb_base {
            return false;
        }
        let idx = (id.0 - self.tomb_base) as usize;
        self.tomb_bits
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// Clears `id`'s tombstone if set; returns whether it was set.
    fn take_tombstone(&mut self, id: EventId) -> bool {
        if id.0 < self.tomb_base {
            return false;
        }
        let idx = (id.0 - self.tomb_base) as usize;
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        match self.tomb_bits.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.tomb_live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of live tombstones (cancelled ids not yet retired).
    pub fn tombstone_count(&self) -> usize {
        self.tomb_live
    }

    /// Rebuilds the heap without tombstoned entries once the cancelled set
    /// outgrows the live events.
    ///
    /// Cancellation is lazy, and a cancelled id whose entry was already
    /// popped (or one that is never popped because the simulation drains
    /// first) would otherwise pin its tombstone forever. Rebuilding is
    /// `O(heap)`, amortized against having let at least as many
    /// cancellations accumulate; delivery order is unaffected because
    /// entries are totally ordered by `(time, id)`. The tombstone window
    /// rebases to the smallest surviving id, so the bitset stays small.
    fn maybe_purge(&mut self) {
        const MIN_TOMBSTONES: usize = 64;
        if self.tomb_live < MIN_TOMBSTONES || self.tomb_live * 2 <= self.heap.len() {
            return;
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| !self.is_tombstoned(e.id));
        // Every tombstone either matched an entry just dropped or was
        // already stale (its event popped before the cancel); either way
        // it is spent now. Ids below the smallest survivor are settled.
        self.tomb_base = entries.iter().map(|e| e.id.0).min().unwrap_or(self.next_id);
        self.tomb_bits.clear();
        self.tomb_live = 0;
        self.heap = BinaryHeap::from(entries);
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no live events remain (the simulation has
    /// quiesced).
    // Not an `Iterator`: popping mutates the clock and needs `&mut self`
    // with a lifetime-free item; the inherent name matches DES convention.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.tomb_live > 0 && self.take_tombstone(entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.delivered += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.tomb_live > 0 && self.is_tombstoned(entry.id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.take_tombstone(entry.id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (not yet fired, not cancelled) events.
    ///
    /// Saturating: a cancellation that raced an already-delivered event
    /// leaves a tombstone with no matching heap entry until the next
    /// purge, and must not make the count wrap.
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.tomb_live)
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the scheduler's lifetime.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered (popped live) over the scheduler's lifetime.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Advances the clock to `t` without delivering anything.
    ///
    /// Useful to stamp a known epoch (e.g. a failure-injection instant) when
    /// the queue is momentarily empty.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or earlier than a pending event.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance clock backwards");
        if let Some(head) = self.peek_time() {
            assert!(
                t <= head,
                "cannot advance clock past the next pending event at {head}"
            );
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_secs(3), 3);
        s.schedule(SimTime::from_secs(1), 1);
        s.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let a = s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(2), "b");
        assert!(s.cancel(a));
        assert!(!s.cancel(a), "double-cancel reports false");
        assert_eq!(s.next().map(|(_, e)| e), Some("b"));
        assert!(s.next().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(!s.cancel(EventId(42)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule(SimTime::from_secs(1), 0);
        s.schedule(SimTime::from_secs(2), 1);
        assert_eq!(s.len(), 2);
        s.cancel(a);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        s.next();
        assert!(s.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule(SimTime::from_secs(1), 0);
        s.schedule(SimTime::from_secs(2), 1);
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(s.tombstone_count(), 0, "peek retired the tombstone");
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_secs(10), 0);
        s.next();
        s.schedule_after(SimDuration::from_secs(5), 1);
        assert_eq!(s.next(), Some((SimTime::from_secs(15), 1)));
    }

    #[test]
    fn schedule_now_runs_after_pending_same_instant() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::ZERO, 0);
        s.schedule_now(1);
        assert_eq!(s.next().unwrap().1, 0);
        assert_eq!(s.next().unwrap().1, 1);
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let a = s.schedule(SimTime::from_secs(1), 0);
        s.schedule(SimTime::from_secs(2), 1);
        s.cancel(a);
        while s.next().is_some() {}
        assert_eq!(s.scheduled_count(), 2);
        assert_eq!(s.delivered_count(), 1);
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.advance_to(SimTime::from_secs(7));
        assert_eq!(s.now(), SimTime::from_secs(7));
        s.schedule_after(SimDuration::from_secs(1), 9);
        assert_eq!(s.next(), Some((SimTime::from_secs(8), 9)));
    }

    #[test]
    fn purge_drops_tombstones_when_they_outgrow_live_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let ids: Vec<EventId> = (0..200u64)
            .map(|i| s.schedule(SimTime::from_secs(i + 1), i as u32))
            .collect();
        for id in &ids[..150] {
            assert!(s.cancel(*id));
        }
        assert!(
            s.tombstone_count() < 150,
            "purge ran and retired tombstones (left: {})",
            s.tombstone_count()
        );
        assert!(s.heap.len() < 200, "purge dropped cancelled heap entries");
        assert_eq!(s.len(), 50);
        let order: Vec<u32> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            (150..200).collect::<Vec<_>>(),
            "delivery order survives purges"
        );
    }

    #[test]
    fn purge_retires_stale_tombstones() {
        // Cancelling ids that already fired leaves tombstones with no
        // matching heap entry; the purge must still retire them.
        let mut s: Scheduler<u32> = Scheduler::new();
        let ids: Vec<EventId> = (0..100u64)
            .map(|i| s.schedule(SimTime::from_secs(i + 1), i as u32))
            .collect();
        while s.next().is_some() {}
        for id in &ids {
            s.cancel(*id);
        }
        assert!(
            s.tombstone_count() < ids.len(),
            "stale tombstones were purged"
        );
        assert_eq!(s.len(), 0, "no live events, however many tombstones linger");
        assert!(s.is_empty());
    }

    #[test]
    fn cancel_below_purge_window_reports_dead() {
        // After a purge rebases the tombstone window, ids below the base
        // are settled: cancelling them is a no-op, while still-live events
        // above the base stay cancellable.
        let mut s: Scheduler<u32> = Scheduler::new();
        let ids: Vec<EventId> = (0..200u64)
            .map(|i| s.schedule(SimTime::from_secs(i + 1), i as u32))
            .collect();
        for id in &ids[..150] {
            assert!(s.cancel(*id));
        }
        assert!(s.tombstone_count() < 150, "a purge fired and rebased");
        assert!(!s.cancel(ids[0]), "retired id is settled");
        assert!(s.cancel(ids[170]), "live id above the window base");
        let order: Vec<u32> = std::iter::from_fn(|| s.next().map(|(_, e)| e)).collect();
        let expected: Vec<u32> = (150..200).filter(|&i| i != 170).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn clone_captures_full_state_and_forks_identically() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..50u64 {
            s.schedule(SimTime::from_secs(i + 1), i as u32);
        }
        let cancel_me = s.schedule(SimTime::from_secs(100), 999);
        s.cancel(cancel_me);
        for _ in 0..10 {
            s.next();
        }
        let mut fork = s.clone();
        assert_eq!(fork.now(), s.now());
        assert_eq!(fork.len(), s.len());
        assert_eq!(fork.scheduled_count(), s.scheduled_count());
        assert_eq!(fork.delivered_count(), s.delivered_count());
        // Ids continue from the same counter in both, so later schedules
        // interleave identically with pending events.
        let a = s.schedule(SimTime::from_secs(30), 7777);
        let b = fork.schedule(SimTime::from_secs(30), 7777);
        assert_eq!(a, b, "forked schedulers hand out the same event ids");
        let rest: Vec<(SimTime, u32)> = std::iter::from_fn(|| s.next()).collect();
        let fork_rest: Vec<(SimTime, u32)> = std::iter::from_fn(|| fork.next()).collect();
        assert_eq!(rest, fork_rest, "fork must deliver the identical tail");
        assert_eq!(s.delivered_count(), fork.delivered_count());
    }

    #[test]
    fn purge_mid_run_preserves_order_under_cancellation_heavy_load() {
        // Regression for the cancel-tombstone purge: heavy cancellation of
        // far-future events while the simulation is already draining, so a
        // purge fires mid-run (not just up front). Delivery order of the
        // survivors and the live-event count must be unaffected, and the
        // purge must physically shrink the heap.
        let mut s: Scheduler<u32> = Scheduler::new();
        let ids: Vec<EventId> = (0..600u64)
            .map(|i| s.schedule(SimTime::from_secs(i + 1), i as u32))
            .collect();
        let mut gone = std::collections::HashSet::new();
        let mut delivered = Vec::new();

        // Drain the first 50, then cancel most of the far future (285
        // events): enough tombstones to outgrow the live heap and trip the
        // purge mid-wave.
        for _ in 0..50 {
            delivered.push(s.next().expect("events pending").1);
        }
        for (i, &id) in ids.iter().enumerate().take(600).skip(300) {
            if i % 20 != 0 {
                assert!(s.cancel(id), "event {i} is pending");
                gone.insert(i as u32);
            }
        }
        assert!(
            s.heap.len() < 600 - delivered.len(),
            "purge never fired: heap still holds {} entries",
            s.heap.len()
        );
        assert_eq!(s.len(), 600 - delivered.len() - gone.len());

        // Keep draining and cancel a second wave in the middle range.
        for _ in 0..50 {
            delivered.push(s.next().expect("events pending").1);
        }
        for i in (100..300).step_by(2) {
            assert!(s.cancel(ids[i]), "event {i} is pending");
            gone.insert(i as u32);
        }

        delivered.extend(std::iter::from_fn(|| s.next().map(|(_, p)| p)));
        let expected: Vec<u32> = (0..600u32).filter(|p| !gone.contains(p)).collect();
        assert_eq!(delivered, expected, "purges must not perturb delivery");
        assert_eq!(s.len(), 0);
        assert_eq!(
            s.tombstone_count(),
            0,
            "all tombstones were spent (left: {})",
            s.tombstone_count()
        );
    }

    #[test]
    fn drain_until_is_strict_and_preserves_clock() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_millis(10), 0);
        s.schedule(SimTime::from_millis(20), 1);
        let boundary = s.schedule(SimTime::from_millis(25), 2);
        s.schedule(SimTime::from_millis(30), 3);
        let drained = s.drain_until(SimTime::from_millis(25));
        assert_eq!(
            drained
                .iter()
                .map(|&(at, id, p)| (at, id.as_u64(), p))
                .collect::<Vec<_>>(),
            vec![
                (SimTime::from_millis(10), 0, 0),
                (SimTime::from_millis(20), 1, 1),
            ],
            "an event exactly on the bound stays queued"
        );
        assert_eq!(s.now(), SimTime::ZERO, "drain does not advance the clock");
        assert_eq!(s.delivered_count(), 0, "drained events are not delivered");
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek_time(), Some(SimTime::from_millis(25)));
        let _ = boundary;
    }

    #[test]
    fn drain_until_retires_tombstones() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.schedule(SimTime::from_millis(1), 0);
        s.schedule(SimTime::from_millis(2), 1);
        s.cancel(a);
        let drained = s.drain_until(SimTime::from_millis(10));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].2, 1);
        assert_eq!(s.tombstone_count(), 0);
    }

    #[test]
    fn alloc_id_and_mark_delivered_match_serial_accounting() {
        // Replaying `schedule` + `next` through the split APIs must leave
        // identical observable state.
        let mut serial: Scheduler<u32> = Scheduler::new();
        serial.schedule(SimTime::from_millis(5), 10);
        serial.schedule(SimTime::from_millis(7), 11);
        serial.next();
        serial.next();
        let after = serial.schedule(SimTime::from_millis(9), 12);

        let mut split: Scheduler<u32> = Scheduler::new();
        split.schedule(SimTime::from_millis(5), 10);
        split.schedule(SimTime::from_millis(7), 11);
        for (at, _id, _p) in split.drain_until(SimTime::from_millis(8)) {
            split.mark_delivered(at);
        }
        let alloc = split.alloc_id();
        assert_eq!(alloc, after, "alloc_id tracks the serial id counter");
        assert_eq!(split.now(), serial.now());
        assert_eq!(split.delivered_count(), serial.delivered_count());
        assert_eq!(split.scheduled_count(), serial.scheduled_count());
    }

    #[test]
    fn insert_allocated_matches_schedule_order_and_counts() {
        // alloc first, insert later, in arbitrary insertion order — the
        // delivery order and lifetime counters must match a plain
        // `schedule` sequence with the same (time, id) pairs.
        let mut serial: Scheduler<u32> = Scheduler::new();
        serial.schedule(SimTime::from_millis(5), 0);
        serial.schedule(SimTime::from_millis(5), 1);
        serial.schedule(SimTime::from_millis(3), 2);

        let mut split: Scheduler<u32> = Scheduler::new();
        let a = split.alloc_id();
        let b = split.alloc_id();
        let c = split.alloc_id();
        // Insert out of id order: total (time, id) order still governs.
        split.insert_allocated(SimTime::from_millis(3), c, 2);
        split.insert_allocated(SimTime::from_millis(5), b, 1);
        split.insert_allocated(SimTime::from_millis(5), a, 0);
        assert_eq!(split.scheduled_count(), serial.scheduled_count());
        assert_eq!(split.len(), serial.len());
        let x: Vec<_> = std::iter::from_fn(|| split.next()).collect();
        let y: Vec<_> = std::iter::from_fn(|| serial.next()).collect();
        assert_eq!(x, y, "insert_allocated must not perturb delivery order");
    }

    #[test]
    fn mark_delivered_many_batches_accounting() {
        let mut one: Scheduler<u8> = Scheduler::new();
        for i in 1..=5u64 {
            one.mark_delivered(SimTime::from_millis(i));
        }
        let mut many: Scheduler<u8> = Scheduler::new();
        many.mark_delivered_many(SimTime::from_millis(5), 5);
        assert_eq!(many.now(), one.now());
        assert_eq!(many.delivered_count(), one.delivered_count());
        many.mark_delivered_many(SimTime::from_millis(4), 0); // no-op, no panic
        assert_eq!(many.now(), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_secs(5), 0);
        s.next();
        s.schedule(SimTime::from_secs(1), 1);
    }

    #[test]
    #[should_panic(expected = "past the next pending event")]
    fn advance_past_pending_event_panics() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_secs(1), 0);
        s.advance_to(SimTime::from_secs(2));
    }
}
