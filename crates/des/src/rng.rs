//! Deterministic random-number streams and BGP timer jitter.
//!
//! Every stochastic component of a simulation (each router, the topology
//! generator, the workload) draws from its own stream derived from a single
//! root seed, so adding a component or reordering draws in one component
//! never perturbs another — a standard variance-reduction/reproducibility
//! technique in discrete-event simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Factory for independent, reproducible RNG streams.
///
/// ```
/// use bgpsim_des::RngStreams;
/// use rand::Rng;
///
/// let streams = RngStreams::new(42);
/// let mut a = streams.stream("router", 7);
/// let mut b = streams.stream("router", 8);
/// let mut a2 = RngStreams::new(42).stream("router", 7);
/// let x: u64 = a.gen();
/// assert_eq!(x, a2.gen::<u64>(), "same (seed, label, index) ⇒ same stream");
/// assert_ne!(x, b.gen::<u64>(), "different index ⇒ different stream");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngStreams {
    root: u64,
}

impl RngStreams {
    /// Creates a stream factory from a root seed.
    pub fn new(root_seed: u64) -> RngStreams {
        RngStreams { root: root_seed }
    }

    /// The root seed this factory was built from.
    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// Derives the RNG stream for component `label` number `index`.
    ///
    /// The same `(root seed, label, index)` triple always yields the same
    /// stream; distinct triples yield statistically independent streams.
    pub fn stream(&self, label: &str, index: u64) -> SmallRng {
        let mut h = self.root;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ index);
        SmallRng::seed_from_u64(h)
    }
}

/// SplitMix64 — the standard seed-scrambling finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies RFC 1771 timer jitter: the configured interval is multiplied by a
/// uniform random factor in `[0.75, 1.0)`, i.e. reduced by up to 25%.
///
/// This is how SSFNet (and the paper, §3.2: "All the timers were jittered as
/// specified in RFC 1771 resulting in a reduction of up to 25%") randomizes
/// the MRAI and other BGP timers to avoid synchronization.
///
/// ```
/// use bgpsim_des::{rng::jittered, SimDuration};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let base = SimDuration::from_secs(30);
/// let j = jittered(base, &mut rng);
/// assert!(j <= base && j >= base.mul_f64(0.75));
/// ```
pub fn jittered<R: Rng + ?Sized>(base: SimDuration, rng: &mut R) -> SimDuration {
    base.mul_f64(rng.gen_range(0.75..1.0))
}

/// Draws a duration uniformly from `[lo, hi]`.
///
/// Used for the paper's per-update processing delay, uniform on 1–30 ms.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform_duration<R: Rng + ?Sized>(
    lo: SimDuration,
    hi: SimDuration,
    rng: &mut R,
) -> SimDuration {
    assert!(
        lo <= hi,
        "uniform_duration bounds out of order: {lo} > {hi}"
    );
    if lo == hi {
        return lo;
    }
    SimDuration::from_nanos(rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn streams_are_reproducible() {
        let a = RngStreams::new(7).stream("node", 3).gen::<u64>();
        let b = RngStreams::new(7).stream("node", 3).gen::<u64>();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label_and_index() {
        let s = RngStreams::new(7);
        let by_label = (
            s.stream("node", 0).gen::<u64>(),
            s.stream("link", 0).gen::<u64>(),
        );
        assert_ne!(by_label.0, by_label.1);
        let by_index = (
            s.stream("node", 0).gen::<u64>(),
            s.stream("node", 1).gen::<u64>(),
        );
        assert_ne!(by_index.0, by_index.1);
    }

    #[test]
    fn streams_differ_by_root_seed() {
        let a = RngStreams::new(1).stream("node", 0).gen::<u64>();
        let b = RngStreams::new(2).stream("node", 0).gen::<u64>();
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_stays_in_rfc_band() {
        let mut rng = SmallRng::seed_from_u64(99);
        let base = SimDuration::from_secs_f64(2.25);
        for _ in 0..10_000 {
            let j = jittered(base, &mut rng);
            assert!(j >= base.mul_f64(0.75), "jitter reduced more than 25%");
            assert!(j <= base, "jitter increased the timer");
        }
    }

    #[test]
    fn jitter_covers_the_band() {
        let mut rng = SmallRng::seed_from_u64(5);
        let base = SimDuration::from_secs(1);
        let draws: Vec<f64> = (0..10_000)
            .map(|_| jittered(base, &mut rng).as_secs_f64())
            .collect();
        let min = draws.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = draws.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.76, "band lower edge unexplored: min={min}");
        assert!(max > 0.99, "band upper edge unexplored: max={max}");
    }

    #[test]
    fn uniform_duration_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let lo = SimDuration::from_millis(1);
        let hi = SimDuration::from_millis(30);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let d = uniform_duration(lo, hi, &mut rng);
            assert!(d >= lo && d <= hi);
            sum += d.as_millis_f64();
        }
        let mean = sum / 10_000.0;
        assert!((mean - 15.5).abs() < 0.5, "mean {mean} far from 15.5 ms");
    }

    #[test]
    fn uniform_duration_degenerate_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = SimDuration::from_millis(5);
        assert_eq!(uniform_duration(d, d, &mut rng), d);
    }

    #[test]
    #[should_panic(expected = "bounds out of order")]
    fn uniform_duration_bad_bounds_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = uniform_duration(
            SimDuration::from_millis(30),
            SimDuration::from_millis(1),
            &mut rng,
        );
    }
}
