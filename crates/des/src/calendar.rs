//! A calendar-queue future-event list.
//!
//! The classic discrete-event alternative to a binary heap (Brown 1988):
//! events hash into fixed-width time buckets ("days"); the dequeue scans
//! the current day and wraps around the "year". For workloads whose events
//! cluster within a known horizon — like BGP's MRAI/processing timers,
//! which live within a few seconds of *now* — enqueue and dequeue are O(1)
//! amortized instead of the heap's O(log n).
//!
//! [`CalendarQueue`] is API-compatible with [`Scheduler`](crate::Scheduler)
//! (schedule / cancel / next / peek) and delivers events in exactly the
//! same order: non-decreasing time, FIFO within a timestamp. A property
//! test in the workspace drives both with identical inputs and asserts
//! equal outputs; the Criterion benches compare their throughput.

use std::collections::VecDeque;

use crate::event::EventId;
use crate::time::{SimDuration, SimTime};

/// One stored event.
#[derive(Clone)]
struct Entry<E> {
    at: SimTime,
    id: EventId,
    payload: Option<E>, // None = cancelled (lazy deletion)
}

/// A calendar-queue scheduler, API-compatible with
/// [`Scheduler`](crate::Scheduler).
///
/// ```
/// use bgpsim_des::{CalendarQueue, SimDuration, SimTime};
///
/// let mut q: CalendarQueue<&'static str> = CalendarQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// let id = q.schedule(SimTime::from_secs(1), "cancelled");
/// q.cancel(id);
/// assert_eq!(q.next(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.next(), None);
/// ```
pub struct CalendarQueue<E> {
    /// Buckets, each FIFO-ordered by insertion (we insert in arrival order
    /// and scan in timestamp order).
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Width of one bucket in nanoseconds.
    bucket_width: u64,
    /// Index of the bucket the clock currently points into.
    cursor: usize,
    /// Start time of the cursor bucket.
    cursor_start: u64,
    now: SimTime,
    next_id: u64,
    live: usize,
    delivered: u64,
    scheduled: u64,
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("buckets", &self.buckets.len())
            .field("bucket_width_ns", &self.bucket_width)
            .finish()
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

/// Cloning captures complete state (pending events, clock, counters), so a
/// calendar-backed simulation snapshots and forks exactly like a heap-backed
/// one — the warm-start engine requires this from any future-event list.
impl<E: Clone> Clone for CalendarQueue<E> {
    fn clone(&self) -> Self {
        CalendarQueue {
            buckets: self.buckets.clone(),
            bucket_width: self.bucket_width,
            cursor: self.cursor,
            cursor_start: self.cursor_start,
            now: self.now,
            next_id: self.next_id,
            live: self.live,
            delivered: self.delivered,
            scheduled: self.scheduled,
        }
    }
}

impl<E> CalendarQueue<E> {
    /// Creates a queue tuned for BGP-timer workloads: 1024 buckets of
    /// 16 ms (a ~16 s year — beyond one year ahead, events land in their
    /// target bucket modulo the year and are filtered by timestamp).
    pub fn new() -> CalendarQueue<E> {
        CalendarQueue::with_shape(1024, SimDuration::from_millis(16))
    }

    /// Creates a queue with an explicit bucket count and width.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `width` is zero.
    pub fn with_shape(buckets: usize, width: SimDuration) -> CalendarQueue<E> {
        assert!(buckets > 0, "calendar needs at least one bucket");
        assert!(!width.is_zero(), "bucket width must be positive");
        CalendarQueue {
            buckets: (0..buckets).map(|_| VecDeque::new()).collect(),
            bucket_width: width.as_nanos(),
            cursor: 0,
            cursor_start: 0,
            now: SimTime::ZERO,
            next_id: 0,
            live: 0,
            delivered: 0,
            scheduled: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Total events scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_nanos() / self.bucket_width) % self.buckets.len() as u64) as usize
    }

    /// Schedules `payload` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`now`](CalendarQueue::now).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        let id = self.alloc_id();
        self.insert_sorted(at, id, payload);
        id
    }

    /// Places an entry into its bucket, keeping the bucket sorted by
    /// `(time, id)`: the insertion point is found from the back (most
    /// events arrive in near-FIFO order).
    fn insert_sorted(&mut self, at: SimTime, id: EventId, payload: E) {
        self.live += 1;
        let bucket = self.bucket_of(at);
        let deque = &mut self.buckets[bucket];
        let mut idx = deque.len();
        while idx > 0 {
            let prev = &deque[idx - 1];
            if (prev.at, prev.id) <= (at, id) {
                break;
            }
            idx -= 1;
        }
        deque.insert(
            idx,
            Entry {
                at,
                id,
                payload: Some(payload),
            },
        );
    }

    /// Enqueues `payload` at `at` under an id already handed out by
    /// [`alloc_id`](CalendarQueue::alloc_id), without counting it as
    /// scheduled again — see
    /// [`Scheduler::insert_allocated`](crate::Scheduler::insert_allocated).
    ///
    /// As on the heap scheduler, `id` may come from a different queue's
    /// counter (shard-owned FELs receive ids allocated by the central
    /// walk); the local counter is bumped past it so a later local
    /// allocation can never collide.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](CalendarQueue::now).
    pub fn insert_allocated(&mut self, at: SimTime, id: EventId, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        self.next_id = self.next_id.max(id.as_u64() + 1);
        self.insert_sorted(at, id, payload);
    }

    /// Schedules `payload` after `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule(self.now + delay, payload)
    }

    /// Allocates the next [`EventId`] without enqueueing anything, counting
    /// it as scheduled — see [`Scheduler::alloc_id`](crate::Scheduler::alloc_id).
    pub fn alloc_id(&mut self) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.scheduled += 1;
        id
    }

    /// Advances the clock to `at` and counts one delivery, without popping —
    /// see [`Scheduler::mark_delivered`](crate::Scheduler::mark_delivered).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](CalendarQueue::now).
    pub fn mark_delivered(&mut self, at: SimTime) {
        assert!(at >= self.now, "delivery clock cannot go backwards");
        self.now = at;
        self.delivered += 1;
    }

    /// Advances the clock to `at` and counts `n` deliveries at once — see
    /// [`Scheduler::mark_delivered_many`](crate::Scheduler::mark_delivered_many).
    ///
    /// # Panics
    ///
    /// Panics if `n > 0` and `at` is earlier than
    /// [`now`](CalendarQueue::now).
    pub fn mark_delivered_many(&mut self, at: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        assert!(at >= self.now, "delivery clock cannot go backwards");
        self.now = at;
        self.delivered += n;
    }

    /// Removes and returns every live event strictly before `bound`, in
    /// delivery order, without advancing the clock or the delivered count —
    /// see [`Scheduler::drain_until`](crate::Scheduler::drain_until).
    pub fn drain_until(&mut self, bound: SimTime) -> Vec<(SimTime, EventId, E)> {
        let mut out = Vec::new();
        while let Some((at, b, i)) = self.min_entry() {
            if at >= bound {
                break;
            }
            let entry = self.buckets[b].remove(i).expect("entry exists");
            self.live -= 1;
            while matches!(self.buckets[b].front(), Some(e) if e.payload.is_none()) {
                self.buckets[b].pop_front();
            }
            self.cursor = self.bucket_of(at);
            self.cursor_start = (at.as_nanos() / self.bucket_width) * self.bucket_width;
            out.push((at, entry.id, entry.payload.expect("min entry is live")));
        }
        out
    }

    /// Removes and returns every live event in **arbitrary order**, without
    /// advancing the clock or the delivered count — see
    /// [`Scheduler::drain_all`](crate::Scheduler::drain_all).
    pub fn drain_all(&mut self) -> Vec<(SimTime, EventId, E)> {
        let mut out = Vec::with_capacity(self.live);
        for deque in &mut self.buckets {
            for entry in deque.drain(..) {
                if let Some(payload) = entry.payload {
                    out.push((entry.at, entry.id, payload));
                }
            }
        }
        self.live = 0;
        out
    }

    /// Cancels a pending event; returns whether it was live.
    ///
    /// Unlike the heap scheduler this is O(bucket size): the entry is
    /// located and tombstoned in place.
    pub fn cancel(&mut self, id: EventId) -> bool {
        for deque in &mut self.buckets {
            for entry in deque.iter_mut() {
                if entry.id == id {
                    if entry.payload.is_some() {
                        entry.payload = None;
                        self.live -= 1;
                        return true;
                    }
                    return false;
                }
            }
        }
        false
    }

    /// Pops the next live event, advancing the clock.
    // Not an `Iterator`: popping mutates the clock and needs `&mut self`
    // with a lifetime-free item; the inherent name matches DES convention.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (at, payload) = self.pop_min()?;
        self.now = at;
        self.delivered += 1;
        Some((at, payload))
    }

    /// Timestamp of the next live event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_entry().map(|(at, _, _)| at)
    }

    /// Finds the (time, bucket, index) of the earliest live entry by a
    /// year-bounded scan from the cursor, falling back to a full scan when
    /// the earliest event is beyond one year ahead.
    fn min_entry(&self) -> Option<(SimTime, usize, usize)> {
        if self.live == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let year = self.bucket_width * nb as u64;
        // Pass 1: within one year of the cursor, the first live entry whose
        // timestamp falls inside its bucket's current-lap window wins.
        for step in 0..nb {
            let b = (self.cursor + step) % nb;
            let lap_start = self.cursor_start + step as u64 * self.bucket_width;
            let lap_end = lap_start + self.bucket_width;
            if let Some((i, entry)) = self.buckets[b]
                .iter()
                .enumerate()
                .find(|(_, e)| e.payload.is_some())
            {
                let t = entry.at.as_nanos();
                if t < lap_end && t >= lap_start.saturating_sub(0) {
                    return Some((entry.at, b, i));
                }
            }
            let _ = year;
        }
        // Pass 2: everything is far away; take the global minimum.
        let mut best: Option<(SimTime, usize, usize)> = None;
        for (b, deque) in self.buckets.iter().enumerate() {
            if let Some((i, entry)) = deque.iter().enumerate().find(|(_, e)| e.payload.is_some()) {
                if best.map(|(t, _, _)| entry.at < t).unwrap_or(true) {
                    best = Some((entry.at, b, i));
                }
            }
        }
        best
    }

    fn pop_min(&mut self) -> Option<(SimTime, E)> {
        let (at, b, i) = self.min_entry()?;
        let entry = self.buckets[b].remove(i).expect("entry exists");
        self.live -= 1;
        // Drop any tombstones now exposed at the bucket head.
        while matches!(self.buckets[b].front(), Some(e) if e.payload.is_none()) {
            self.buckets[b].pop_front();
        }
        self.cursor = self.bucket_of(at);
        self.cursor_start = (at.as_nanos() / self.bucket_width) * self.bucket_width;
        Some((at, entry.payload.expect("min entry is live")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order_fifo_within_timestamp() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(1), 2);
        q.schedule(SimTime::from_secs(2), 9);
        let order: Vec<u32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 9, 3]);
    }

    #[test]
    fn far_future_events_beyond_one_year() {
        // 4 buckets × 1 ms = 4 ms year; schedule 10 s out.
        let mut q: CalendarQueue<u32> = CalendarQueue::with_shape(4, SimDuration::from_millis(1));
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_millis(1), 0);
        assert_eq!(q.next().unwrap().1, 0);
        assert_eq!(q.next(), Some((SimTime::from_secs(10), 1)));
    }

    #[test]
    fn cancel_tombstones() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.next().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.cancel(a);
        while q.next().is_some() {}
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.delivered_count(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn rejects_past_events() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.next();
        q.schedule(SimTime::from_secs(1), 2);
    }

    #[test]
    fn drain_until_matches_heap_semantics() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(SimTime::from_millis(10), 0);
        q.schedule(SimTime::from_millis(20), 1);
        q.schedule(SimTime::from_millis(25), 2);
        let cancelled = q.schedule(SimTime::from_millis(15), 9);
        q.cancel(cancelled);
        let drained = q.drain_until(SimTime::from_millis(25));
        assert_eq!(
            drained.iter().map(|&(_, _, p)| p).collect::<Vec<_>>(),
            vec![0, 1],
            "strict bound, cancelled entries skipped"
        );
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.delivered_count(), 0);
        assert_eq!(q.len(), 1);
        q.mark_delivered(SimTime::from_millis(20));
        assert_eq!(q.now(), SimTime::from_millis(20));
        assert_eq!(q.delivered_count(), 1);
    }

    #[test]
    fn insert_allocated_and_mark_delivered_many_match_heap() {
        // Drive both backends through the split alloc/insert APIs with the
        // same inputs; delivery order and counters must agree.
        use crate::sched::Scheduler;
        let mut heap: Scheduler<u32> = Scheduler::new();
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        let ha: Vec<EventId> = (0..3).map(|_| heap.alloc_id()).collect();
        let ca: Vec<EventId> = (0..3).map(|_| cal.alloc_id()).collect();
        assert_eq!(ha, ca, "id counters agree");
        // Insert out of id order: same-instant ids 0 and 1 last.
        for (at, i, p) in [
            (SimTime::from_millis(9), 2, 22u32),
            (SimTime::from_millis(4), 0, 20),
            (SimTime::from_millis(4), 1, 21),
        ] {
            heap.insert_allocated(at, ha[i], p);
            cal.insert_allocated(at, ca[i], p);
        }
        heap.mark_delivered_many(SimTime::from_millis(2), 3);
        cal.mark_delivered_many(SimTime::from_millis(2), 3);
        let h: Vec<_> = std::iter::from_fn(|| heap.next()).collect();
        let c: Vec<_> = std::iter::from_fn(|| cal.next()).collect();
        assert_eq!(h, c, "backends disagree after insert_allocated");
        assert_eq!(
            h.iter().map(|&(_, p)| p).collect::<Vec<_>>(),
            vec![20, 21, 22],
            "(time, id) order governs, not insertion order"
        );
        assert_eq!(heap.delivered_count(), cal.delivered_count());
        assert_eq!(heap.scheduled_count(), cal.scheduled_count());
    }

    #[test]
    fn insert_allocated_out_of_id_order_across_buckets_matches_heap() {
        // The shard-owned FELs feed `insert_allocated` ids minted by the
        // central walk, arriving in per-source-shard chunks that are id-
        // ascending but interleave arbitrarily across chunks — and the
        // timestamps straddle bucket boundaries (and the year wrap). The
        // bucket-local back-scan must still produce exactly the heap's
        // global (time, id) delivery order.
        use crate::sched::Scheduler;
        let mut heap: Scheduler<u32> = Scheduler::new();
        // 4 buckets × 1 ms: events 1 ms apart land in adjacent buckets,
        // events 4 ms apart collide in the same bucket across year laps.
        let mut cal: CalendarQueue<u32> = CalendarQueue::with_shape(4, SimDuration::from_millis(1));
        let entries = [
            // (time ms, id, payload) — ids deliberately not in time order,
            // and no id was allocated by either queue's own counter.
            (9u64, 4u64, 104u32), // bucket 1, second lap
            (1, 7, 107),          // bucket 1, first lap — same bucket, earlier time, later id
            (5, 2, 102),          // bucket 1, second lap wrap, earlier than 9 ms
            (0, 9, 109),          // bucket 0
            (1, 3, 103),          // bucket 1, same instant as id 7 — id breaks the tie
            (3, 0, 100),          // bucket 3
            (2, 6, 106),          // bucket 2
        ];
        for &(ms, id, p) in &entries {
            heap.insert_allocated(SimTime::from_millis(ms), EventId::from_u64(id), p);
            cal.insert_allocated(SimTime::from_millis(ms), EventId::from_u64(id), p);
        }
        let bound = SimTime::from_millis(100);
        let h = heap.drain_until(bound);
        let c = cal.drain_until(bound);
        assert_eq!(h, c, "calendar drain order diverges from the heap");
        assert_eq!(
            h.iter().map(|&(_, _, p)| p).collect::<Vec<_>>(),
            vec![109, 103, 107, 106, 100, 102, 104],
            "global (time, id) order, independent of insertion order"
        );
        // Both counters were bumped past the foreign ids: fresh local
        // allocations cannot collide with what was inserted.
        assert_eq!(heap.alloc_id(), EventId::from_u64(10));
        assert_eq!(cal.alloc_id(), EventId::from_u64(10));
    }

    #[test]
    fn drain_all_empties_and_skips_cancelled() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(SimTime::from_millis(30), 0);
        let dead = q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        q.cancel(dead);
        let mut all = q.drain_all();
        all.sort_by_key(|&(at, id, _)| (at, id));
        assert_eq!(
            all.iter().map(|&(_, _, p)| p).collect::<Vec<_>>(),
            vec![2, 0],
            "cancelled entries are retired, live ones all come out"
        );
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.delivered_count(), 0);
    }

    #[test]
    fn clone_forks_identically() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        for i in 0..40u64 {
            q.schedule(SimTime::from_millis(i * 7 % 90), i as u32);
        }
        q.next();
        let mut fork = q.clone();
        let a = q.schedule(SimTime::from_millis(50), 777);
        let b = fork.schedule(SimTime::from_millis(50), 777);
        assert_eq!(a, b, "forked queues hand out the same event ids");
        let rest: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.next()).collect();
        let fork_rest: Vec<(SimTime, u32)> = std::iter::from_fn(|| fork.next()).collect();
        assert_eq!(rest, fork_rest);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut expected = Vec::new();
        for i in 0..50u64 {
            q.schedule(SimTime::from_nanos(i * 7_000_003 % 100_000_000), i);
        }
        while let Some((t, e)) = q.next() {
            expected.push((t, e));
            if expected.len() == 25 {
                // Schedule more mid-drain, after `now`.
                for j in 100..110u64 {
                    q.schedule_after(SimDuration::from_millis(j), j);
                }
            }
        }
        assert_eq!(expected.len(), 60);
        assert!(
            expected.windows(2).all(|w| w[0].0 <= w[1].0),
            "order violated"
        );
    }
}
