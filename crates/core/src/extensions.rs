//! Extension experiments beyond the paper's 13 figures.
//!
//! The paper's discussion sections sketch several follow-ups; each function
//! here regenerates one of them as a [`FigureData`] so they plug into the
//! same reporting pipeline:
//!
//! * [`ext_size_sensitivity`] — the §4 verification note: the trends hold
//!   for 60- and 240-node networks, not just 120.
//! * [`ext_detector_comparison`] — §4.3 reports trying a processor-
//!   utilization detector ("promising") and an update-count detector
//!   ("not very successful"); compare all three.
//! * [`ext_oracle`] — §5 future work: an oracle that instantly knows the
//!   failure size and sets the optimal MRAI; the upper bound for any
//!   failure-size-estimation scheme.
//! * [`ext_expedite`] — the Deshpande & Sikdar timer-cancelling scheme the
//!   paper cites as related work \[12\]: less delay, many more messages.
//! * [`ext_mrai_scope`] — per-peer vs the RFC-literal per-destination MRAI
//!   (§2 calls the latter the unscalable ideal).
//! * [`ext_batching_variants`] — §5 future work on improving batching:
//!   oldest-destination-first vs largest-backlog-first, plus the TCP-batch
//!   baseline.
//! * [`ext_ablations`] — jitter off, WRATE on, delayed failure detection:
//!   the model knobs DESIGN.md calls out.

use bgpsim_des::SimDuration;
use bgpsim_topology::region::FailureSpec;

use crate::experiment::{run_all_parallel, Experiment, TopologySpec};
use crate::figures::{FigOpts, FigureData, FigureFn, Metric, Series};
use crate::scheme::Scheme;

/// Failure sizes used by the extension sweeps (a subset of the paper's).
pub const EXT_FRACTIONS: [f64; 4] = [0.01, 0.05, 0.10, 0.20];

fn sweep(
    id: &str,
    title: &str,
    metric: Metric,
    entries: &[(Scheme, TopologySpec)],
    fractions: &[f64],
    opts: FigOpts,
) -> FigureData {
    let mut points: Vec<Experiment> = Vec::new();
    for (scheme, topology) in entries {
        for &f in fractions {
            points.push(Experiment {
                topology: topology.clone(),
                scheme: scheme.clone(),
                failure: FailureSpec::CenterFraction(f),
                trials: opts.trials,
                base_seed: opts.base_seed,
            });
        }
    }
    let aggs = run_all_parallel(&points, opts.threads);
    let series = entries
        .iter()
        .enumerate()
        .map(|(si, (scheme, _))| Series {
            name: scheme.name.clone(),
            points: fractions
                .iter()
                .enumerate()
                .map(|(fi, &f)| (f * 100.0, metric.value(&aggs[si * fractions.len() + fi])))
                .collect(),
        })
        .collect();
    FigureData {
        id: id.into(),
        title: title.into(),
        x_label: "failure size (% of nodes)".into(),
        y_label: metric.label().into(),
        series,
    }
}

/// Network-size sensitivity: the same scheme on 60-, 120- and 240-node
/// 70-30 topologies (the paper verified its 120-node trends at both other
/// sizes; §3.1 explains why 120 was the workhorse).
pub fn ext_size_sensitivity(opts: FigOpts) -> FigureData {
    let entries: Vec<(Scheme, TopologySpec)> = [60usize, 120, 240]
        .iter()
        .map(|&n| {
            (
                Scheme::constant_mrai(1.25).named(&format!("{n} nodes")),
                TopologySpec::seventy_thirty(n),
            )
        })
        .collect();
    sweep(
        "ext-size",
        "Network-size sensitivity (MRAI = 1.25 s)",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// The three overload detectors for the dynamic scheme.
pub fn ext_detector_comparison(opts: FigOpts) -> FigureData {
    use crate::scheme::{MraiAssignment, SimOverrides};
    use bgpsim_bgp::config::MraiPolicy;
    use bgpsim_bgp::dynmrai::{Detector, DynamicMraiConfig};
    use bgpsim_bgp::queue::QueueDiscipline;

    let levels = vec![
        SimDuration::from_millis(500),
        SimDuration::from_millis(1250),
        SimDuration::from_millis(2250),
    ];
    let mk = |name: &str, detector: Detector| Scheme {
        name: name.into(),
        mrai: MraiAssignment::Uniform(MraiPolicy::Dynamic(DynamicMraiConfig {
            levels: levels.clone(),
            detector,
        })),
        queue: QueueDiscipline::Fifo,
        overrides: SimOverrides::default(),
    };
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (
            mk(
                "unfinished work",
                Detector::UnfinishedWork {
                    up: SimDuration::from_millis(650),
                    down: SimDuration::from_millis(50),
                    mean_processing: SimDuration::from_micros(15_500),
                },
            ),
            topo.clone(),
        ),
        (
            mk(
                "utilization",
                Detector::Utilization {
                    up: 0.8,
                    down: 0.15,
                },
            ),
            topo.clone(),
        ),
        (
            mk("update count", Detector::UpdateCount { up: 40, down: 4 }),
            topo.clone(),
        ),
        (Scheme::constant_mrai(0.5), topo),
    ];
    sweep(
        "ext-detectors",
        "Dynamic-MRAI overload detectors",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// The failure-size oracle vs the dynamic scheme and the constants.
pub fn ext_oracle(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (
            Scheme::oracle(&[(0.025, 0.5), (0.075, 1.25), (1.0, 2.25)]),
            topo.clone(),
        ),
        (Scheme::dynamic_default().named("dynamic"), topo.clone()),
        (Scheme::constant_mrai(0.5), topo.clone()),
        (Scheme::constant_mrai(2.25), topo),
    ];
    sweep(
        "ext-oracle",
        "Failure-size-aware oracle MRAI (paper §5 future work)",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Deshpande & Sikdar's timer-cancelling scheme: delay (left metric) — use
/// [`ext_expedite_messages`] for the message-count side of the trade-off.
pub fn ext_expedite(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(2.25), topo.clone()),
        (
            Scheme::constant_mrai(2.25).with_expedited_improvements(),
            topo.clone(),
        ),
        (Scheme::constant_mrai(0.5), topo),
    ];
    sweep(
        "ext-expedite",
        "Expedited improvements (Deshpande & Sikdar [12]): delay",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// The message-count cost of expedited improvements (the paper notes the
/// related-work schemes raise the update count "considerably").
pub fn ext_expedite_messages(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(2.25), topo.clone()),
        (
            Scheme::constant_mrai(2.25).with_expedited_improvements(),
            topo,
        ),
    ];
    sweep(
        "ext-expedite-msgs",
        "Expedited improvements: message cost",
        Metric::Messages,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Per-peer vs per-destination MRAI scope.
pub fn ext_mrai_scope(opts: FigOpts) -> FigureData {
    use bgpsim_bgp::mrai::MraiScope;
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(2.25).named("per-peer"), topo.clone()),
        (
            Scheme::constant_mrai(2.25)
                .with_mrai_scope(MraiScope::PerDestination)
                .named("per-destination"),
            topo,
        ),
    ];
    sweep(
        "ext-scope",
        "MRAI scope: per-peer vs per-destination (RFC-literal)",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Batching variants: oldest-first (the paper's), largest-backlog-first
/// (future-work improvement), and the TCP-buffer baseline.
pub fn ext_batching_variants(opts: FigOpts) -> FigureData {
    use bgpsim_bgp::queue::QueueDiscipline;
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let mut largest = Scheme::batching(0.5).named("batching (largest-first)");
    largest.queue = QueueDiscipline::BatchedLargestFirst;
    let entries = vec![
        (
            Scheme::batching(0.5).named("batching (oldest-first)"),
            topo.clone(),
        ),
        (largest, topo.clone()),
        (Scheme::tcp_batch(0.5, 32), topo.clone()),
        (Scheme::constant_mrai(0.5).named("fifo"), topo),
    ];
    sweep(
        "ext-batching",
        "Batching variants (paper §5 future work)",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Model ablations: jitter off, WRATE on, 2 s failure-detection delay.
pub fn ext_ablations(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(1.25).named("baseline"), topo.clone()),
        (
            Scheme::constant_mrai(1.25)
                .with_jitter(false)
                .named("no jitter"),
            topo.clone(),
        ),
        (
            Scheme::constant_mrai(1.25)
                .with_wrate(true)
                .named("WRATE on"),
            topo.clone(),
        ),
        (
            Scheme::constant_mrai(1.25)
                .with_detection_delay(SimDuration::from_secs(2))
                .named("2 s detection"),
            topo,
        ),
    ];
    sweep(
        "ext-ablations",
        "Model ablations (MRAI = 1.25 s)",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Policy impact (Labovitz et al. \[6\], the paper's related work): the same
/// failure sweep with and without Gao–Rexford policies. Valley-free export
/// prunes the alternate paths BGP hunts through, cutting both messages and
/// delay — at the price of reduced reachability.
pub fn ext_policy(opts: FigOpts) -> FigureData {
    // A hierarchical (Tier-1 clique) topology so valley-free reachability
    // is total and the comparison isolates path-exploration pruning.
    let topo = TopologySpec::hierarchical(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(0.5).named("no policy"), topo.clone()),
        (
            Scheme::constant_mrai(0.5)
                .with_policy()
                .named("Gao-Rexford"),
            topo.clone(),
        ),
        (
            Scheme::constant_mrai(2.25).named("no policy (2.25)"),
            topo.clone(),
        ),
        (
            Scheme::constant_mrai(2.25)
                .with_policy()
                .named("Gao-Rexford (2.25)"),
            topo,
        ),
    ];
    sweep(
        "ext-policy",
        "Policy impact on convergence (Labovitz et al. [6])",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Failure detection: the paper's instant link-layer notification vs BGP
/// hold-timer expiry (RFC 1771 default 90 s, and a tuned 9 s variant).
/// With the deployed default, *detection* dwarfs re-convergence for all
/// but the largest failures — the justification for the paper's implicit
/// fast-detection assumption.
pub fn ext_detection(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (
            Scheme::constant_mrai(1.25).named("instant detection"),
            topo.clone(),
        ),
        (
            Scheme::constant_mrai(1.25)
                .with_hold_timer(SimDuration::from_secs(9))
                .named("hold timer 9 s"),
            topo.clone(),
        ),
        (
            Scheme::constant_mrai(1.25)
                .with_hold_timer(SimDuration::from_secs(90))
                .named("hold timer 90 s"),
            topo,
        ),
    ];
    sweep(
        "ext-detection",
        "Failure-detection models",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Destination-count scaling (paper §5: the Internet's ~200k destinations
/// mean a large failure "will generate a huge number of updates"): the
/// same failure sweep with 1, 4 and 8 prefixes per AS, with and without
/// batching.
pub fn ext_destinations(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let mut entries = Vec::new();
    for k in [1usize, 4, 8] {
        entries.push((
            Scheme::constant_mrai(0.5)
                .with_prefixes_per_as(k)
                .named(&format!("fifo, {k} pfx/AS")),
            topo.clone(),
        ));
    }
    entries.push((
        Scheme::batching(0.5)
            .with_prefixes_per_as(8)
            .named("batching, 8 pfx/AS"),
        topo,
    ));
    sweep(
        "ext-destinations",
        "Destination-count scaling (paper §5)",
        Metric::DelaySecs,
        &entries,
        &[0.01, 0.05, 0.10],
        opts,
    )
}

/// Failure vs recovery convergence (the Tup/Tdown asymmetry of Labovitz
/// et al. \[5\], which the paper builds on): for each failure size, measure
/// the re-convergence after the failure (Tdown, with path hunting) and
/// after the failed routers come back (Tup, monotone new information).
pub fn ext_updown(opts: FigOpts) -> FigureData {
    use crate::network::{Network, SimConfig};
    use bgpsim_des::RngStreams;
    use bgpsim_topology::region::FailureSpec;
    use rand::Rng;

    let mut down_series = Series {
        name: "failure (Tdown)".into(),
        points: Vec::new(),
    };
    let mut up_series = Series {
        name: "recovery (Tup)".into(),
        points: Vec::new(),
    };
    for &f in &EXT_FRACTIONS {
        let (mut down_sum, mut up_sum) = (0.0, 0.0);
        for trial in 0..opts.trials {
            let streams = RngStreams::new(opts.base_seed);
            let mut topo_rng = streams.stream("topology", u64::from(trial));
            let topo = TopologySpec::seventy_thirty(opts.nodes).generate(&mut topo_rng);
            let seed: u64 = streams.stream("sim-seed", u64::from(trial)).gen();
            let cfg = SimConfig::from_scheme(&Scheme::constant_mrai(1.25), seed);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            let failed = net.inject_failure(&FailureSpec::CenterFraction(f));
            let down = net.run_to_quiescence();
            net.revive_routers(&failed);
            let up = net.run_to_quiescence();
            down_sum += down.convergence_delay.as_secs_f64();
            up_sum += up.convergence_delay.as_secs_f64();
        }
        down_series
            .points
            .push((f * 100.0, down_sum / f64::from(opts.trials)));
        up_series
            .points
            .push((f * 100.0, up_sum / f64::from(opts.trials)));
    }
    FigureData {
        id: "ext-updown".into(),
        title: "Failure vs recovery convergence (Tdown vs Tup, Labovitz [5])".into(),
        x_label: "failure size (% of nodes)".into(),
        y_label: "convergence delay (s)".into(),
        series: vec![down_series, up_series],
    }
}

/// Router-region failures (the paper's model) vs link-only failures of
/// the same central region (the scenario §3.2 sets aside as unlikely):
/// link failures keep every prefix alive, so the re-convergence is pure
/// rerouting without the withdrawal storms of dead destinations.
pub fn ext_link_failures(opts: FigOpts) -> FigureData {
    use crate::network::{Network, SimConfig};
    use bgpsim_des::RngStreams;
    use bgpsim_topology::region::{central_link_fraction, FailureSpec};
    use rand::Rng;

    let mut routers_series = Series {
        name: "router failures".into(),
        points: Vec::new(),
    };
    let mut links_series = Series {
        name: "link failures".into(),
        points: Vec::new(),
    };
    for &f in &EXT_FRACTIONS {
        let (mut router_sum, mut link_sum) = (0.0, 0.0);
        for trial in 0..opts.trials {
            let streams = RngStreams::new(opts.base_seed);
            let mut topo_rng = streams.stream("topology", u64::from(trial));
            let topo = TopologySpec::seventy_thirty(opts.nodes).generate(&mut topo_rng);
            let seed: u64 = streams.stream("sim-seed", u64::from(trial)).gen();
            let cfg = SimConfig::from_scheme(&Scheme::constant_mrai(1.25), seed);

            let mut net = Network::new(topo.clone(), cfg.clone());
            router_sum += net
                .run_failure_experiment(&FailureSpec::CenterFraction(f))
                .convergence_delay
                .as_secs_f64();

            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            let links = central_link_fraction(net.topology(), f);
            net.inject_link_failure(&links);
            link_sum += net.run_to_quiescence().convergence_delay.as_secs_f64();
        }
        routers_series
            .points
            .push((f * 100.0, router_sum / f64::from(opts.trials)));
        links_series
            .points
            .push((f * 100.0, link_sum / f64::from(opts.trials)));
    }
    FigureData {
        id: "ext-links".into(),
        title: "Router-region vs link-only failures (paper §3.2)".into(),
        x_label: "failed fraction (% of routers / % of links)".into(),
        y_label: "convergence delay (s)".into(),
        series: vec![routers_series, links_series],
    }
}

/// Route-flap damping vs the paper's schemes. Damping is the other
/// deployed answer to update storms; Mao et al. (SIGCOMM 2002) showed it
/// *exacerbates* post-failure convergence because legitimate path-hunting
/// alternates get suppressed. Compare undamped BGP, damped BGP, and the
/// paper's batching under the same failures.
pub fn ext_damping(opts: FigOpts) -> FigureData {
    use bgpsim_bgp::damping::DampingConfig;
    let topo = TopologySpec::seventy_thirty(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(2.25), topo.clone()),
        (
            Scheme::constant_mrai(2.25).with_damping(DampingConfig::paper_scale()),
            topo.clone(),
        ),
        (Scheme::batching(0.5).named("batching"), topo),
    ];
    sweep(
        "ext-damping",
        "Route-flap damping (RFC 2439) vs the paper's schemes",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// iBGP full mesh (the paper's implicit model) vs per-AS route reflectors
/// (RFC 4456) on the realistic multi-router topologies: reflection scales
/// the session count but adds an intra-AS hop and a single point of
/// failure per AS.
pub fn ext_ibgp(opts: FigOpts) -> FigureData {
    let topo = TopologySpec::realistic(opts.nodes);
    let entries = vec![
        (Scheme::constant_mrai(0.5).named("full mesh"), topo.clone()),
        (
            Scheme::constant_mrai(0.5)
                .with_route_reflection()
                .named("route reflectors"),
            topo,
        ),
    ];
    sweep(
        "ext-ibgp",
        "iBGP full mesh vs route reflection (RFC 4456)",
        Metric::DelaySecs,
        &entries,
        &EXT_FRACTIONS,
        opts,
    )
}

/// Every extension experiment, with its regenerating function.
pub fn all_extensions() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("ext-size", ext_size_sensitivity),
        ("ext-detectors", ext_detector_comparison),
        ("ext-oracle", ext_oracle),
        ("ext-expedite", ext_expedite),
        ("ext-expedite-msgs", ext_expedite_messages),
        ("ext-scope", ext_mrai_scope),
        ("ext-batching", ext_batching_variants),
        ("ext-ablations", ext_ablations),
        ("ext-policy", ext_policy),
        ("ext-detection", ext_detection),
        ("ext-destinations", ext_destinations),
        ("ext-updown", ext_updown),
        ("ext-links", ext_link_failures),
        ("ext-damping", ext_damping),
        ("ext-ibgp", ext_ibgp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigOpts {
        FigOpts {
            nodes: 24,
            trials: 1,
            base_seed: 3,
            threads: None,
        }
    }

    #[test]
    fn all_extensions_enumerate() {
        assert_eq!(all_extensions().len(), 15);
    }

    #[test]
    fn ibgp_extension_runs() {
        let data = ext_ibgp(tiny());
        assert_eq!(data.series.len(), 2);
    }

    #[test]
    fn damping_extension_runs() {
        let data = ext_damping(tiny());
        assert_eq!(data.series.len(), 3);
        assert!(data.series[1].name.contains("damping"));
    }

    #[test]
    fn link_failure_extension_runs() {
        let data = ext_link_failures(tiny());
        assert_eq!(data.series.len(), 2);
        assert!(data
            .series
            .iter()
            .all(|s| s.points.len() == EXT_FRACTIONS.len()));
    }

    #[test]
    fn updown_extension_shows_asymmetry() {
        let data = ext_updown(tiny());
        assert_eq!(data.series.len(), 2);
        let down: f64 = data.series[0].points.iter().map(|&(_, y)| y).sum();
        let up: f64 = data.series[1].points.iter().map(|&(_, y)| y).sum();
        assert!(up < down, "Tup ({up:.1}) must beat Tdown ({down:.1})");
    }

    #[test]
    fn detection_extension_runs() {
        let data = ext_detection(tiny());
        assert_eq!(data.series.len(), 3);
        // Hold-timer delays must exceed instant-detection delays.
        let instant: f64 = data.series[0].points.iter().map(|&(_, y)| y).sum();
        let held: f64 = data.series[2].points.iter().map(|&(_, y)| y).sum();
        assert!(held > instant);
    }

    #[test]
    fn destinations_extension_runs() {
        let data = ext_destinations(tiny());
        assert_eq!(data.series.len(), 4);
    }

    #[test]
    fn policy_extension_runs() {
        let data = ext_policy(tiny());
        assert_eq!(data.series.len(), 4);
        assert!(data.series[1].name.contains("Gao"));
    }

    #[test]
    fn oracle_runs_and_produces_series() {
        let data = ext_oracle(tiny());
        assert_eq!(data.series.len(), 4);
        assert_eq!(data.series[0].name, "oracle");
        assert!(data.series[0].points.iter().all(|&(_, y)| y >= 0.0));
    }

    #[test]
    fn expedite_runs() {
        let data = ext_expedite(tiny());
        assert_eq!(data.series.len(), 3);
        assert!(data.series[1].name.contains("expedite"));
    }

    #[test]
    fn batching_variants_run() {
        let data = ext_batching_variants(tiny());
        assert_eq!(data.series.len(), 4);
    }
}
