//! Warm-start sweep engine: snapshot/fork of converged networks.
//!
//! Every figure in the paper sweeps a failure (or scheme) parameter against
//! a fixed `(topology, seed, scheme)` triple, yet a cold
//! [`Experiment::run_trial`](crate::experiment::Experiment::run_trial)
//! rebuilds the network and re-runs
//! [`Network::run_initial_convergence`](crate::network::Network::run_initial_convergence)
//! from scratch for every single point — pure redundant work, since the
//! pre-failure converged state is identical across all points sharing the
//! triple. This module captures that converged state once per triple into a
//! [`NetworkSnapshot`] and hands out cheap forks for each failure point.
//!
//! # Fork semantics and determinism
//!
//! A snapshot is a deep [`Clone`] of the quiesced [`Network`]: every BGP
//! node (Adj-RIB-In, Loc-RIB, Adj-RIB-Out, MRAI timers, dynamic-MRAI
//! level, processing queue, statistics counters, per-node RNG state), the
//! scheduler (pending events, clock, cancel tombstones, id and delivery
//! counters), and the interning caches. Thanks to the `Arc<[AsId]>`-interned
//! AS paths, cloning is mostly refcount bumps rather than deep path copies,
//! and the per-node prepend caches stay valid across the clone because their
//! keys are the shared path allocations themselves.
//!
//! Forking is deterministic by construction: the scheduler's event order is
//! total (time, then id) and survives cloning; failure injection derives
//! fresh RNG streams from the simulation seed rather than consuming shared
//! stream state. A forked run therefore produces **bit-identical**
//! [`RunStats`](crate::metrics::RunStats) to a cold run — locked by the
//! `warm_start_prop` property test over all three scheme families.
//!
//! Sharded runs snapshot identically: pumps only move pending events into
//! shard-owned FELs *during* a drain (DESIGN.md §13) and return them fully
//! consumed, with the central scheduler's clock, id and delivery counters
//! advanced exactly as a serial drain would have — so a snapshot taken at
//! quiescence never sees shard-local state, whatever the shard count.
//!
//! # Trace state across forks
//!
//! A snapshot carries the prototype's [`TraceSink`](crate::trace::TraceSink)
//! with the sink's own clone semantics: `Off` stays off, a `Memory` ring
//! is deep-copied (each fork owns the buffered prefix and continues the
//! sequence numbering independently), and a `Jsonl` stream degrades to
//! `Off` — two simulations must not interleave one byte stream. Node-level
//! recording flags are re-synced to the sink when a fork next runs, so a
//! fork of a JSONL-traced network simply runs untraced; attach a fresh
//! sink per fork to stream it.
//!
//! # Cache keying
//!
//! [`SnapshotCache`] keys snapshots by the serialized
//! `(TopologySpec, Scheme)` pair plus `(base_seed, trial)` — see
//! [`SnapshotKey`]. Those spec types carry `f64` fields and so cannot
//! implement `Eq`/`Hash` directly; their canonical JSON encoding can, and
//! two points share a converged prototype exactly when their JSON encodings
//! match. Entries live for the cache's lifetime (one sweep), trading memory
//! for the dominant redundant-convergence cost.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::network::Network;

/// Identity of a converged prototype: everything that determines the
/// pre-failure state of a trial.
///
/// Two experiment points that agree on this key (same topology family,
/// scheme, base seed and trial number — differing only in what fails
/// afterwards) are guaranteed the same converged network, so a single
/// snapshot serves them all.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    /// Canonical JSON of the `(TopologySpec, Scheme)` pair. JSON stands in
    /// for `Hash`/`Eq`, which the spec types cannot derive (`f64` fields).
    pub prototype: String,
    /// The experiment's base seed.
    pub base_seed: u64,
    /// The trial index within the experiment.
    pub trial: u32,
}

/// A converged network captured at a quiescent point, forkable once per
/// failure point.
///
/// Obtained from [`Network::snapshot`] or [`NetworkSnapshot::capture`].
/// [`fork`](NetworkSnapshot::fork) hands out an independent simulation that
/// continues bit-identically to the captured original.
#[derive(Clone)]
pub struct NetworkSnapshot {
    prototype: Network,
}

impl NetworkSnapshot {
    /// Captures the complete state of `net`. The snapshot is independent of
    /// the original: either side can keep simulating without affecting the
    /// other.
    pub fn capture(net: &Network) -> NetworkSnapshot {
        NetworkSnapshot {
            prototype: net.clone(),
        }
    }

    /// Forks an independent simulation from the captured state.
    pub fn fork(&self) -> Network {
        self.prototype.clone()
    }

    /// Consumes the snapshot, yielding the captured network without a
    /// clone — the cheap path for a snapshot's final use.
    pub fn into_network(self) -> Network {
        self.prototype
    }
}

/// Counters a [`SnapshotCache`] keeps about its own effectiveness,
/// reported through
/// [`ParallelReport::warm`](crate::experiment::ParallelReport) and the
/// `hotpath` bench's warm-start section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WarmStats {
    /// Snapshots built (cache misses that ran initial convergence).
    pub builds: u64,
    /// Forks handed out (every warm trial takes exactly one).
    pub forks: u64,
    /// Lookups that found an existing snapshot.
    pub hits: u64,
    /// Lookups that had to build (equals `builds`).
    pub misses: u64,
    /// Wall-clock seconds spent building snapshots (topology generation +
    /// initial convergence + capture), summed across workers.
    pub build_wall_secs: f64,
    /// Wall-clock seconds spent forking, summed across workers.
    pub fork_wall_secs: f64,
}

/// Entry state. `snapshot` is `None` while unbuilt, `Some` once the first
/// worker to claim the key finishes converging. Workers fork under the
/// entry lock, so a build is never duplicated — later arrivals block
/// until the prototype exists, then fork it. `remaining`, when set via
/// [`SnapshotCache::expect_forks`], counts forks still owed: the last one
/// *moves* the prototype out instead of cloning it, and the entry is
/// evicted, so a sweep's cache drains as it progresses instead of pinning
/// every converged network until the batch ends.
#[derive(Default)]
struct SlotState {
    snapshot: Option<NetworkSnapshot>,
    remaining: Option<u64>,
}

type Slot = Arc<Mutex<SlotState>>;

/// A concurrent cache of converged prototypes, shared by the workers of a
/// parallel sweep.
///
/// `Network` is `Send` but not `Sync` (the per-node prepend caches are
/// `RefCell`s), so snapshots cannot be shared as `Arc<Network>` across
/// threads; instead each key owns a `Mutex` slot and every fork — a cheap,
/// mostly-refcount clone — happens under that per-key lock. The first
/// worker to reach a key builds the prototype while later arrivals for the
/// same key block, then fork; workers on other keys proceed unhindered.
#[derive(Default)]
pub struct SnapshotCache {
    slots: Mutex<HashMap<SnapshotKey, Slot>>,
    stats: Mutex<WarmStats>,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> SnapshotCache {
        SnapshotCache::default()
    }

    /// Declares that `count` further [`fork_or_build`](SnapshotCache::fork_or_build)
    /// calls will arrive for `key`. Once the declared demand is consumed,
    /// the final call moves the prototype out instead of cloning it and
    /// the entry is evicted — a batch runner that knows its task list
    /// up front (see `run_all_parallel_timed`) uses this to drain the
    /// cache as the sweep progresses rather than pinning every converged
    /// network until the end. Without a declaration the entry lives for
    /// the cache's lifetime and every request clones.
    pub fn expect_forks(&self, key: SnapshotKey, count: u64) {
        let slot = {
            let mut slots = self.slots.lock().expect("snapshot cache not poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut entry = slot.lock().expect("snapshot slot not poisoned");
        entry.remaining = Some(entry.remaining.unwrap_or(0) + count);
    }

    /// Returns a simulation warm-started from the snapshot under `key`,
    /// building the snapshot via `build` if this is the first request for
    /// the key. `build` must return the network *converged* (initial
    /// convergence already run); the cache captures it verbatim.
    pub fn fork_or_build(&self, key: SnapshotKey, build: impl FnOnce() -> Network) -> Network {
        let slot = {
            let mut slots = self.slots.lock().expect("snapshot cache not poisoned");
            Arc::clone(slots.entry(key.clone()).or_default())
        };
        let mut entry = slot.lock().expect("snapshot slot not poisoned");
        if entry.snapshot.is_none() {
            let started = Instant::now();
            let snapshot = NetworkSnapshot::capture(&build());
            let build_secs = started.elapsed().as_secs_f64();
            entry.snapshot = Some(snapshot);
            let mut stats = self.stats.lock().expect("warm stats not poisoned");
            stats.builds += 1;
            stats.misses += 1;
            stats.build_wall_secs += build_secs;
        } else {
            let mut stats = self.stats.lock().expect("warm stats not poisoned");
            stats.hits += 1;
        }
        let started = Instant::now();
        let last = entry.remaining == Some(1);
        let fork = if last {
            // Final declared use: hand the prototype itself over.
            entry.remaining = Some(0);
            entry
                .snapshot
                .take()
                .expect("snapshot built or found above")
                .into_network()
        } else {
            if let Some(remaining) = &mut entry.remaining {
                *remaining = remaining.saturating_sub(1);
            }
            entry
                .snapshot
                .as_ref()
                .expect("snapshot built or found above")
                .fork()
        };
        let fork_secs = started.elapsed().as_secs_f64();
        drop(entry);
        if last {
            self.slots
                .lock()
                .expect("snapshot cache not poisoned")
                .remove(&key);
        }
        {
            let mut stats = self.stats.lock().expect("warm stats not poisoned");
            stats.forks += 1;
            stats.fork_wall_secs += fork_secs;
        }
        fork
    }

    /// A copy of the effectiveness counters accumulated so far.
    pub fn stats(&self) -> WarmStats {
        *self.stats.lock().expect("warm stats not poisoned")
    }

    /// Number of distinct keys with a built or in-flight snapshot.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("snapshot cache not poisoned")
            .len()
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimConfig;
    use crate::scheme::Scheme;
    use bgpsim_topology::region::FailureSpec;

    fn converged_net(seed: u64) -> Network {
        use bgpsim_topology::degree::DegreeSpec;
        use bgpsim_topology::generators::topology_from_spec;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let topo = topology_from_spec(
            20,
            &DegreeSpec::Skewed(bgpsim_topology::degree::SkewedSpec::seventy_thirty()),
            &mut rng,
        )
        .expect("topology");
        let cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), seed);
        let mut net = Network::new(topo, cfg);
        net.run_initial_convergence();
        net
    }

    fn key(tag: &str) -> SnapshotKey {
        SnapshotKey {
            prototype: tag.to_string(),
            base_seed: 7,
            trial: 0,
        }
    }

    #[test]
    fn forks_share_allocations_with_the_original() {
        // The arena claim of DESIGN.md §12: forking is a refcount
        // transaction, not a deep copy. Every fork shares the interned
        // node-config allocations and the `Arc<[AsId]>` path storage with
        // the network it was captured from — witnessed by pointer
        // equality, not just value equality.
        let net = converged_net(21);
        let fork = net.snapshot().fork();
        let mut routes = 0usize;
        for r in net.topology().router_ids() {
            let (a, b) = (net.node(r).unwrap(), fork.node(r).unwrap());
            assert!(
                a.shares_config_allocation(b),
                "fork deep-copied the config of {r}"
            );
            for (prefix, sel) in a.loc_rib().iter() {
                let other = b.loc_rib().get(prefix).expect("fork lost a route");
                assert!(
                    sel.path.ptr_eq(&other.path),
                    "fork deep-copied the path for {prefix} at {r}"
                );
                routes += 1;
            }
        }
        assert!(routes > 0, "converged network must hold routes");
    }

    #[test]
    fn fork_continues_bit_identically_to_original() {
        let mut cold = converged_net(11);
        let snapshot = cold.snapshot();
        let failure = FailureSpec::CenterFraction(0.1);

        cold.inject_failure(&failure);
        let cold_stats = cold.run_to_quiescence();

        let mut warm = snapshot.fork();
        warm.inject_failure(&failure);
        let warm_stats = warm.run_to_quiescence();

        assert_eq!(cold_stats, warm_stats);
    }

    #[test]
    fn forks_carry_memory_traces_and_drop_jsonl_sinks() {
        use crate::trace::{to_jsonl, TraceSink};

        // Memory sinks: each fork owns the buffered prefix and two forks
        // of one traced prototype record identical continuations.
        let mut traced = converged_net(16);
        traced.set_trace_sink(TraceSink::memory(1 << 20));
        let snapshot = traced.snapshot();
        let run = || {
            let mut n = snapshot.fork();
            n.inject_failure(&FailureSpec::CenterFraction(0.1));
            n.run_to_quiescence();
            to_jsonl(&n.take_trace_events())
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty());
        assert_eq!(a, b, "memory-traced forks must trace identically");

        // JSONL sinks: the fork degrades to Off (a byte stream must not be
        // written by two networks), node flags re-sync on the next run,
        // and the untraced fork still converges identically to a cold run.
        let mut streamed = converged_net(16);
        streamed.set_trace_sink(TraceSink::jsonl(Box::new(std::io::sink())));
        let fork_snapshot = streamed.snapshot();
        let mut fork = fork_snapshot.fork();
        assert!(fork.trace_sink().is_off(), "JSONL sink must not be cloned");
        fork.inject_failure(&FailureSpec::CenterFraction(0.1));
        let forked_stats = fork.run_to_quiescence();
        assert!(fork.take_trace_events().is_empty());

        let mut cold = converged_net(16);
        cold.inject_failure(&FailureSpec::CenterFraction(0.1));
        assert_eq!(forked_stats, cold.run_to_quiescence());
    }

    #[test]
    fn one_snapshot_serves_many_forks() {
        let snapshot = NetworkSnapshot::capture(&converged_net(12));
        let a = {
            let mut n = snapshot.fork();
            n.inject_failure(&FailureSpec::CenterFraction(0.05));
            n.run_to_quiescence()
        };
        let b = {
            let mut n = snapshot.fork();
            n.inject_failure(&FailureSpec::CenterFraction(0.2));
            n.run_to_quiescence()
        };
        assert!(a.failed_routers < b.failed_routers);
    }

    #[test]
    fn declared_demand_drains_the_cache_and_stays_identical() {
        let cache = SnapshotCache::new();
        let k = key("a");
        cache.expect_forks(k.clone(), 3);
        let mut builds = 0u32;
        let runs: Vec<_> = (0..3)
            .map(|_| {
                let mut n = cache.fork_or_build(k.clone(), || {
                    builds += 1;
                    converged_net(15)
                });
                n.inject_failure(&FailureSpec::CenterFraction(0.1));
                n.run_to_quiescence()
            })
            .collect();
        assert_eq!(builds, 1);
        assert!(cache.is_empty(), "last declared fork evicts the entry");
        // The moved-out final prototype behaves exactly like the clones.
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        // An undeclared extra request rebuilds rather than failing.
        let _ = cache.fork_or_build(k, || {
            builds += 1;
            converged_net(15)
        });
        assert_eq!(builds, 2);
    }

    #[test]
    fn cache_builds_once_per_key_and_counts() {
        let cache = SnapshotCache::new();
        let mut builds = 0u32;
        for _ in 0..3 {
            let _ = cache.fork_or_build(key("a"), || {
                builds += 1;
                converged_net(13)
            });
        }
        let _ = cache.fork_or_build(key("b"), || {
            builds += 1;
            converged_net(14)
        });
        assert_eq!(builds, 2);
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.forks, 4);
        assert!(stats.build_wall_secs > 0.0);
    }
}
