//! Structured convergence tracing and per-node time-series metrics.
//!
//! [`RunStats`](crate::RunStats) summarizes a run after the fact; this
//! module records *how it got there*. When a [`TraceSink`] is attached to
//! a [`Network`](crate::network::Network), every node handler's
//! observations ([`NodeEvent`]: updates sent/received/processed, stale
//! deletions, decision runs, MRAI timer starts/expiries, dynamic-MRAI
//! level transitions with the detector reading behind them, queue depth,
//! best-path changes) are stamped with global `(time, node, seq)`
//! coordinates into a [`TraceEvent`] stream.
//!
//! ## Determinism
//!
//! The stream is a pure function of the simulation: the serial loop
//! stamps each handler's events at delivery, and the sharded loop's
//! Phase B walk replays the epoch in the same global `(time, id)` order
//! (see the `shard` module) — shard-owned FELs move *where* events wait,
//! never the walk order that emission follows. With the parallel commit
//! the per-event trace batches travel through the
//! destination-partitioned commit streams tagged with their walk
//! position, and the deterministic merge emits them back in exactly
//! that order — so a trace taken at `BGPSIM_SHARDS=N` is
//! **byte-identical** to the serial one for any shard *and*
//! commit-stream count. Recording never touches node RNGs
//! or timers, so a traced run also produces bit-identical
//! [`RunStats`](crate::RunStats) to an untraced one.
//!
//! ## Sinks
//!
//! * [`TraceSink::Off`] — the default; hook sites cost one branch.
//! * [`TraceSink::Memory`] — a bounded ring buffer for in-process
//!   analysis ([`Timeline`]).
//! * [`TraceSink::Jsonl`] — streams one JSON object per event to a
//!   writer, for offline tooling and the CI determinism check.
//!
//! ## Timelines
//!
//! [`Timeline::from_events`] reconstructs per-destination settle times,
//! counts transient-route episodes (routes installed and later replaced
//! or withdrawn — the invalid intermediate routes the paper's batching
//! scheme suppresses, §5), and collects per-node queue-depth /
//! unfinished-work and MRAI-level series, exportable as CSV.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use bgpsim_bgp::trace::NodeEvent;
use bgpsim_bgp::Prefix;
use bgpsim_des::{SimDuration, SimTime};
use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

/// One stamped trace record: a [`NodeEvent`] plus its global coordinates.
///
/// `seq` is a global, gap-free emission counter — the total order of the
/// stream. Two runs of the same simulation produce identical sequences
/// regardless of shard count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Position in the global emission order (0-based, gap-free).
    pub seq: u64,
    /// Simulation time of the handler that recorded the event.
    pub time: SimTime,
    /// The router that recorded the event.
    pub node: RouterId,
    /// The observation itself.
    pub event: NodeEvent,
}

/// A bounded in-memory trace buffer (ring: oldest events drop first).
#[derive(Clone, Debug, Default)]
pub struct MemoryTrace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl MemoryTrace {
    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A streaming JSONL writer shared behind a lock.
///
/// The lock exists because [`Network`](crate::network::Network) is
/// `Clone`; the stream itself is only ever written by the serial commit
/// path, so there is no contention.
pub struct JsonlTrace {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
    seq: u64,
    io_errors: u64,
}

impl std::fmt::Debug for JsonlTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlTrace")
            .field("seq", &self.seq)
            .field("io_errors", &self.io_errors)
            .finish_non_exhaustive()
    }
}

/// Where trace events go. Defaults to [`TraceSink::Off`].
#[derive(Debug, Default)]
pub enum TraceSink {
    /// Tracing disabled — zero events recorded, hook sites cost a branch.
    #[default]
    Off,
    /// Ring-buffered in memory, for in-process analysis.
    Memory(MemoryTrace),
    /// Streamed as one JSON object per line.
    Jsonl(JsonlTrace),
}

/// Cloning a network must not duplicate a byte stream: a [`Memory`] sink
/// deep-clones (the fork replays the prototype's history exactly, so the
/// carried prefix stays bit-accurate), while a [`Jsonl`] sink clones to
/// [`Off`] — two writers interleaving one stream would corrupt it. See
/// `warm::NetworkSnapshot` for the fork semantics.
///
/// [`Memory`]: TraceSink::Memory
/// [`Jsonl`]: TraceSink::Jsonl
/// [`Off`]: TraceSink::Off
impl Clone for TraceSink {
    fn clone(&self) -> TraceSink {
        match self {
            TraceSink::Off => TraceSink::Off,
            TraceSink::Memory(m) => TraceSink::Memory(m.clone()),
            TraceSink::Jsonl(_) => TraceSink::Off,
        }
    }
}

/// Default [`TraceSink::memory`] capacity: 2^22 events (~hundreds of MB
/// worst case, far above any CI scenario; big sweeps should size it).
pub const DEFAULT_MEMORY_CAPACITY: usize = 1 << 22;

impl TraceSink {
    /// A ring-buffered in-memory sink holding at most `capacity` events.
    pub fn memory(capacity: usize) -> TraceSink {
        TraceSink::Memory(MemoryTrace {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            seq: 0,
            dropped: 0,
        })
    }

    /// A JSONL sink over an arbitrary writer.
    pub fn jsonl(writer: Box<dyn Write + Send>) -> TraceSink {
        TraceSink::Jsonl(JsonlTrace {
            writer: Arc::new(Mutex::new(writer)),
            seq: 0,
            io_errors: 0,
        })
    }

    /// A JSONL sink writing to `path` (buffered; call
    /// [`flush`](TraceSink::flush) or drop the network to sync).
    pub fn jsonl_file(path: impl AsRef<Path>) -> io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::jsonl(Box::new(io::BufWriter::new(file))))
    }

    /// Whether this sink discards everything.
    pub fn is_off(&self) -> bool {
        matches!(self, TraceSink::Off)
    }

    /// Events stamped so far (the next event's `seq`).
    pub fn seq(&self) -> u64 {
        match self {
            TraceSink::Off => 0,
            TraceSink::Memory(m) => m.seq,
            TraceSink::Jsonl(j) => j.seq,
        }
    }

    /// Stamps and records one event.
    pub fn record(&mut self, time: SimTime, node: RouterId, event: NodeEvent) {
        match self {
            TraceSink::Off => {}
            TraceSink::Memory(m) => {
                let seq = m.seq;
                m.seq += 1;
                m.events.push_back(TraceEvent {
                    seq,
                    time,
                    node,
                    event,
                });
                if m.events.len() > m.capacity {
                    m.events.pop_front();
                    m.dropped += 1;
                }
            }
            TraceSink::Jsonl(j) => {
                let seq = j.seq;
                j.seq += 1;
                let ev = TraceEvent {
                    seq,
                    time,
                    node,
                    event,
                };
                let line = serde_json::to_string(&ev).expect("trace events serialize");
                let mut w = j.writer.lock().expect("trace writer lock");
                if w.write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .is_err()
                {
                    j.io_errors += 1;
                }
            }
        }
    }

    /// The memory buffer, when this is a [`TraceSink::Memory`].
    pub fn memory_events(&self) -> Option<&MemoryTrace> {
        match self {
            TraceSink::Memory(m) => Some(m),
            _ => None,
        }
    }

    /// Drains a [`TraceSink::Memory`] buffer (the seq counter keeps
    /// running, so later events continue the global order).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Memory(m) => m.events.drain(..).collect(),
            _ => Vec::new(),
        }
    }

    /// Write errors swallowed by a [`TraceSink::Jsonl`] sink so far.
    pub fn io_errors(&self) -> u64 {
        match self {
            TraceSink::Jsonl(j) => j.io_errors,
            _ => 0,
        }
    }

    /// Flushes a [`TraceSink::Jsonl`] writer (no-op otherwise).
    pub fn flush(&mut self) -> io::Result<()> {
        match self {
            TraceSink::Jsonl(j) => j.writer.lock().expect("trace writer lock").flush(),
            _ => Ok(()),
        }
    }
}

/// One queue-depth observation of a node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueuePoint {
    /// When the depth was observed.
    pub time: SimTime,
    /// Updates waiting (not in service).
    pub queued: u32,
    /// Updates in the batch in service.
    pub in_service: u32,
}

impl QueuePoint {
    /// The paper's unfinished-work signal at this point:
    /// `(queued + in_service) × mean_processing`, in seconds.
    pub fn unfinished_work_secs(&self, mean_processing: SimDuration) -> f64 {
        (mean_processing * u64::from(self.queued + self.in_service)).as_secs_f64()
    }
}

/// One dynamic-MRAI level transition of a node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelPoint {
    /// When the controller moved.
    pub time: SimTime,
    /// Level index before the move.
    pub from: usize,
    /// Level index after the move.
    pub to: usize,
    /// The detector reading that caused it.
    pub reading: f64,
}

/// Per-(node, prefix) best-route churn bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
struct ChurnState {
    installs: u64,
    last_was_install: bool,
}

/// The analysis pass over a trace: per-destination settle times,
/// transient-route episode counts, and per-node time series.
///
/// Built once from an event stream (typically everything recorded after
/// failure injection); the CSV exporters slice it for plotting.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Last best-path change per destination, across all nodes — when the
    /// network "settled" on that destination.
    pub settled_at: BTreeMap<Prefix, SimTime>,
    /// Transient-route episodes per destination: best routes some node
    /// installed and later replaced or withdrew (the invalid intermediate
    /// routes of §5). The final installed route of each (node, prefix)
    /// pair is not transient.
    pub transient_by_prefix: BTreeMap<Prefix, u64>,
    /// Queue-depth series per node, in observation order.
    pub queue_series: BTreeMap<RouterId, Vec<QueuePoint>>,
    /// Dynamic-MRAI level transitions per node, in observation order.
    pub level_series: BTreeMap<RouterId, Vec<LevelPoint>>,
    /// Total best-path changes observed.
    pub best_changes: u64,
    /// Total stale updates deleted unprocessed.
    pub stale_deleted: u64,
    /// Total updates sent.
    pub sent: u64,
    /// Total updates received.
    pub received: u64,
    /// Total updates processed.
    pub processed: u64,
    /// Total MRAI timers started.
    pub mrai_starts: u64,
    /// Total live MRAI expiries.
    pub mrai_expiries: u64,
}

impl Timeline {
    /// Replays an event stream into a timeline. Events must be in stream
    /// order (ascending `seq`), which every sink preserves.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Timeline {
        let mut tl = Timeline::default();
        let mut churn: BTreeMap<(RouterId, Prefix), ChurnState> = BTreeMap::new();
        for ev in events {
            match &ev.event {
                NodeEvent::Sent { .. } => tl.sent += 1,
                NodeEvent::Received { .. } => tl.received += 1,
                NodeEvent::Processed { .. } => tl.processed += 1,
                NodeEvent::StaleDeleted { count } => tl.stale_deleted += count,
                NodeEvent::Decision { .. } => {}
                NodeEvent::BestChanged { prefix, path_len } => {
                    tl.best_changes += 1;
                    tl.settled_at.insert(*prefix, ev.time);
                    let state = churn.entry((ev.node, *prefix)).or_default();
                    if path_len.is_some() {
                        state.installs += 1;
                        state.last_was_install = true;
                    } else {
                        state.last_was_install = false;
                    }
                }
                NodeEvent::MraiStarted { .. } => tl.mrai_starts += 1,
                NodeEvent::MraiExpired { .. } => tl.mrai_expiries += 1,
                NodeEvent::MraiLevel { from, to, reading } => {
                    tl.level_series
                        .entry(ev.node)
                        .or_default()
                        .push(LevelPoint {
                            time: ev.time,
                            from: *from,
                            to: *to,
                            reading: *reading,
                        });
                }
                NodeEvent::QueueDepth { queued, in_service } => {
                    tl.queue_series
                        .entry(ev.node)
                        .or_default()
                        .push(QueuePoint {
                            time: ev.time,
                            queued: *queued,
                            in_service: *in_service,
                        });
                }
            }
        }
        for ((_, prefix), state) in churn {
            let transient = state.installs - u64::from(state.last_was_install);
            if transient > 0 {
                *tl.transient_by_prefix.entry(prefix).or_default() += transient;
            }
        }
        tl
    }

    /// Total transient-route episodes across destinations.
    pub fn transient_routes(&self) -> u64 {
        self.transient_by_prefix.values().sum()
    }

    /// Per-destination settle delays relative to `t0` (typically the
    /// failure time). Destinations whose last change predates `t0` are
    /// reported as settled at zero.
    pub fn settle_since(&self, t0: SimTime) -> BTreeMap<Prefix, SimDuration> {
        self.settled_at
            .iter()
            .map(|(&p, &at)| (p, at.saturating_since(t0)))
            .collect()
    }

    /// The latest settle delay relative to `t0` (the trace-level view of
    /// the run's convergence delay), or zero for an empty timeline.
    pub fn last_settle_since(&self, t0: SimTime) -> SimDuration {
        self.settled_at
            .values()
            .map(|&at| at.saturating_since(t0))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// CSV of per-destination settle delay (relative to `t0`) and
    /// transient-route episodes: `prefix,settle_secs,transient_routes`.
    pub fn settle_csv(&self, t0: SimTime) -> String {
        let mut out = String::from("prefix,settle_secs,transient_routes\n");
        for (p, d) in self.settle_since(t0) {
            let transient = self.transient_by_prefix.get(&p).copied().unwrap_or(0);
            let _ = writeln!(out, "{},{:.6},{}", p.index(), d.as_secs_f64(), transient);
        }
        out
    }

    /// CSV of the per-node queue/unfinished-work series:
    /// `time_secs,node,queued,in_service,unfinished_work_secs`. Rows are
    /// grouped per node in time order; `mean_processing` converts depth
    /// into the paper's unfinished-work seconds (15.5 ms for U(1, 30) ms).
    pub fn unfinished_work_csv(&self, mean_processing: SimDuration) -> String {
        let mut out = String::from("time_secs,node,queued,in_service,unfinished_work_secs\n");
        for (node, series) in &self.queue_series {
            for p in series {
                let _ = writeln!(
                    out,
                    "{:.6},{},{},{},{:.6}",
                    p.time.as_secs_f64(),
                    node.index(),
                    p.queued,
                    p.in_service,
                    p.unfinished_work_secs(mean_processing)
                );
            }
        }
        out
    }

    /// CSV of the per-node MRAI level transitions:
    /// `time_secs,node,from_level,to_level,reading`.
    pub fn level_csv(&self) -> String {
        let mut out = String::from("time_secs,node,from_level,to_level,reading\n");
        for (node, series) in &self.level_series {
            for p in series {
                let _ = writeln!(
                    out,
                    "{:.6},{},{},{},{:.6}",
                    p.time.as_secs_f64(),
                    node.index(),
                    p.from,
                    p.to,
                    p.reading
                );
            }
        }
        out
    }
}

/// Serializes events as the JSONL byte stream a [`TraceSink::Jsonl`]
/// sink would have produced — used to compare a [`TraceSink::Memory`]
/// buffer byte-for-byte against a streamed trace.
pub fn to_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("trace events serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, time_ms: u64, node: u32, event: NodeEvent) -> TraceEvent {
        TraceEvent {
            seq,
            time: SimTime::from_millis(time_ms),
            node: RouterId::new(node),
            event,
        }
    }

    #[test]
    fn memory_sink_stamps_and_bounds() {
        let mut sink = TraceSink::memory(2);
        for i in 0..4u32 {
            sink.record(
                SimTime::from_millis(u64::from(i)),
                RouterId::new(i),
                NodeEvent::StaleDeleted { count: 1 },
            );
        }
        let m = sink.memory_events().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.dropped(), 2);
        assert_eq!(sink.seq(), 4);
        let seqs: Vec<u64> = m.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3], "ring keeps the newest events");
    }

    #[test]
    fn jsonl_sink_matches_memory_serialization() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut jsonl = TraceSink::jsonl(Box::new(Shared(buf.clone())));
        let mut memory = TraceSink::memory(16);
        for (t, n) in [(5u64, 0u32), (7, 3)] {
            let e = NodeEvent::Sent {
                to: RouterId::new(9),
                prefix: Prefix::new(1),
                advertise: true,
            };
            jsonl.record(SimTime::from_millis(t), RouterId::new(n), e.clone());
            memory.record(SimTime::from_millis(t), RouterId::new(n), e);
        }
        jsonl.flush().unwrap();
        let streamed = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let buffered = to_jsonl(memory.memory_events().unwrap().events());
        assert_eq!(streamed, buffered);
        assert_eq!(jsonl.io_errors(), 0);
    }

    #[test]
    fn trace_event_round_trips_through_json() {
        let e = ev(
            3,
            1500,
            7,
            NodeEvent::MraiLevel {
                from: 0,
                to: 1,
                reading: 0.75,
            },
        );
        let s = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn cloning_jsonl_disables_cloning_memory_carries() {
        let sink = TraceSink::jsonl(Box::new(io::sink()));
        assert!(
            sink.clone().is_off(),
            "a byte stream must not be duplicated"
        );
        let mut mem = TraceSink::memory(8);
        mem.record(
            SimTime::ZERO,
            RouterId::new(0),
            NodeEvent::StaleDeleted { count: 2 },
        );
        let cloned = mem.clone();
        assert_eq!(cloned.seq(), 1);
        assert_eq!(cloned.memory_events().unwrap().len(), 1);
    }

    #[test]
    fn timeline_settles_and_counts_transients() {
        // Node 1 installs p0 twice then withdraws it; node 2 installs p1
        // once and keeps it.
        let events = vec![
            ev(
                0,
                100,
                1,
                NodeEvent::BestChanged {
                    prefix: Prefix::new(0),
                    path_len: Some(2),
                },
            ),
            ev(
                1,
                200,
                1,
                NodeEvent::BestChanged {
                    prefix: Prefix::new(0),
                    path_len: Some(3),
                },
            ),
            ev(
                2,
                300,
                1,
                NodeEvent::BestChanged {
                    prefix: Prefix::new(0),
                    path_len: None,
                },
            ),
            ev(
                3,
                250,
                2,
                NodeEvent::BestChanged {
                    prefix: Prefix::new(1),
                    path_len: Some(1),
                },
            ),
        ];
        let tl = Timeline::from_events(&events);
        assert_eq!(tl.best_changes, 4);
        // p0: both installs ended up replaced/withdrawn → 2 transients.
        assert_eq!(tl.transient_by_prefix.get(&Prefix::new(0)), Some(&2));
        // p1: final install is not transient.
        assert_eq!(tl.transient_by_prefix.get(&Prefix::new(1)), None);
        assert_eq!(tl.transient_routes(), 2);
        assert_eq!(
            tl.settled_at.get(&Prefix::new(0)),
            Some(&SimTime::from_millis(300))
        );
        let settle = tl.settle_since(SimTime::from_millis(100));
        assert_eq!(
            settle.get(&Prefix::new(1)),
            Some(&SimDuration::from_millis(150))
        );
        assert_eq!(
            tl.last_settle_since(SimTime::ZERO),
            SimDuration::from_millis(300)
        );
    }

    #[test]
    fn timeline_series_and_csv() {
        let events = vec![
            ev(
                0,
                1000,
                4,
                NodeEvent::QueueDepth {
                    queued: 10,
                    in_service: 2,
                },
            ),
            ev(
                1,
                2000,
                4,
                NodeEvent::QueueDepth {
                    queued: 0,
                    in_service: 1,
                },
            ),
            ev(
                2,
                1500,
                4,
                NodeEvent::MraiLevel {
                    from: 0,
                    to: 1,
                    reading: 1.55,
                },
            ),
            ev(3, 1600, 4, NodeEvent::StaleDeleted { count: 5 }),
        ];
        let tl = Timeline::from_events(&events);
        assert_eq!(tl.stale_deleted, 5);
        let series = &tl.queue_series[&RouterId::new(4)];
        assert_eq!(series.len(), 2);
        // 12 pending × 15.5 ms = 186 ms of unfinished work.
        let mean = SimDuration::from_micros(15_500);
        assert!((series[0].unfinished_work_secs(mean) - 0.186).abs() < 1e-9);
        let csv = tl.unfinished_work_csv(mean);
        assert!(csv.starts_with("time_secs,node,queued,in_service,unfinished_work_secs\n"));
        assert!(csv.contains("1.000000,4,10,2,0.186000"));
        let lcsv = tl.level_csv();
        assert!(lcsv.contains("1.500000,4,0,1,1.550000"));
    }
}
