//! The sharded deterministic event loop — conservative PDES with
//! link-delay lookahead.
//!
//! Every inter-node interaction in this model crosses a link with a fixed
//! one-way delay (`SimConfig::link_delay`, the paper's 25 ms), so an event
//! executed at time `t` can only create events at *other* nodes at
//! `t + link_delay` or later. That delay is the classic conservative-PDES
//! *lookahead*: all events inside a half-open window
//! `[t0, t0 + link_delay)` that touch different nodes are causally
//! independent and may run concurrently.
//!
//! The loop therefore runs in synchronous epochs:
//!
//! 1. **Drain.** Pop every pending event strictly before
//!    `epoch_end = t0 + link_delay` from the global future-event list
//!    (`t0` = earliest pending time), keeping each event's real
//!    `(time, id)` key.
//! 2. **Execute (parallel).** Partition the drained events by owning
//!    router onto N shard workers. Each worker runs its routers' handlers
//!    in local `(time, key)` order, feeding handler-created *same-node*
//!    events that land inside the epoch (ProcDone, MRAI/reuse expiries)
//!    back into its local heap with keys above [`LOCAL_KEY_BASE`], and
//!    records one action trace per handled event. Cross-node sends always
//!    land at `t + link_delay >= epoch_end`, i.e. outside the epoch — the
//!    lookahead argument — so workers never need to talk to each other.
//! 3. **Commit (serial).** Replay the epoch's events in global
//!    `(time, id)` order through the authoritative scheduler: advance the
//!    clock, consume the matching recorded trace, bump message counters
//!    and the activity clock, schedule cross-epoch events, and allocate
//!    *real* event ids for intra-epoch creations in exactly the order a
//!    serial run would.
//!
//! ## Why this is bit-identical to the serial loop
//!
//! The serial engine delivers in `(time, id)` order, where ids are a
//! global insertion counter; ids are the tie-break for same-instant
//! events, so reproducing serial behavior means reproducing exact id
//! assignment, not just timestamps.
//!
//! *Per-node order.* For one router, a worker's `(time, key)` order
//! equals the serial `(time, id)` order: drained events carry their real
//! ids in both; intra-epoch self-events sort after every drained event at
//! the same instant in both (worker keys start at [`LOCAL_KEY_BASE`],
//! real ids of intra-epoch creations exceed every pre-epoch id); and two
//! self-events of the same node tie-break by creation order in both.
//! Handler inputs are thus identical event-by-event, and node state
//! (including the node's private RNG stream) evolves identically.
//!
//! *Cross-node order.* Routers share no mutable state during an epoch —
//! aliveness, dead links, sessions, topology, and policy tiers are all
//! frozen while the queue drains — so cross-node interleaving inside an
//! epoch is unobservable to the nodes. Every *global* side effect
//! (message counters, `last_activity`, scheduling, id allocation, the
//! delivered count) is applied exclusively by the serial commit phase, in
//! serial order, using the recorded traces. The scheduler state at every
//! epoch boundary is therefore byte-identical to a serial run's, which
//! carries the invariant into the next epoch — and makes `RunStats`,
//! goldens, and warm-start snapshots independent of the shard count.
//!
//! *Mailbox merge rule.* Cross-shard (= cross-node) messages surface in
//! the commit phase's replay heap and the global scheduler, both ordered
//! by `(time, id)` — the deterministic merge the mailboxes need. An event
//! landing exactly on an epoch boundary is *not* drained (the window is
//! half-open) and is delivered at the start of the next epoch, exactly
//! where the serial order puts it.
//!
//! The loop falls back to serial for `shards <= 1`, zero link delay (no
//! lookahead), and sampling runs (samples read global state mid-epoch).

use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::mpsc;

use bgpsim_bgp::node::Action;
use bgpsim_bgp::policy::relationship_by_tier;
use bgpsim_bgp::trace::NodeEvent;
use bgpsim_bgp::BgpNode;
use bgpsim_des::SimTime;
use bgpsim_topology::{RouterId, Topology};

use crate::network::{link_key, Ev, Network};

/// Worker-local sort keys for intra-epoch self-events start here — above
/// any real event id, so a drained event always outranks a same-instant
/// self-event, exactly like real id assignment would order them.
const LOCAL_KEY_BASE: u64 = 1 << 63;

/// Min-heap entry ordered by `(at, key)`.
struct Pending<T> {
    at: SimTime,
    key: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.key) == (other.at, other.key)
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// What the commit phase must do for one replayed event — a compact
/// stand-in for the event that avoids cloning message payloads.
#[derive(Clone, Copy)]
enum CommitKind {
    /// Originate / Deliver / ProcDone: handled iff the node is alive;
    /// marks activity whenever handled.
    Activity,
    /// MraiExpiry / ReuseExpiry: handled iff alive; marks activity only
    /// when the handler produced actions.
    Timer,
    /// PeerDown: handled iff alive; never marks activity by itself.
    Silent,
    /// PeerUp: handled iff the session to `peer` is up; marks activity.
    PeerUp {
        /// The session peer being (re-)established.
        peer: RouterId,
    },
}

/// One commit-phase replay entry.
struct CommitEv {
    node: RouterId,
    kind: CommitKind,
}

/// The router whose handler an event invokes.
fn owner(ev: &Ev) -> RouterId {
    match ev {
        Ev::Originate { node, .. }
        | Ev::ProcDone { node }
        | Ev::MraiExpiry { node, .. }
        | Ev::PeerDown { node, .. }
        | Ev::PeerUp { node, .. }
        | Ev::ReuseExpiry { node, .. } => *node,
        Ev::Deliver { to, .. } => *to,
    }
}

/// The commit-phase semantics of an event (mirrors `Network::handle`).
fn commit_kind(ev: &Ev) -> CommitKind {
    match ev {
        Ev::Originate { .. } | Ev::Deliver { .. } | Ev::ProcDone { .. } => CommitKind::Activity,
        Ev::MraiExpiry { .. } | Ev::ReuseExpiry { .. } => CommitKind::Timer,
        Ev::PeerDown { .. } => CommitKind::Silent,
        Ev::PeerUp { peer, .. } => CommitKind::PeerUp { peer: *peer },
    }
}

/// The same-node follow-up event an action asks the driver to schedule
/// (`None` for sends, which cross a link and leave the epoch).
fn follow_up(origin: RouterId, t: SimTime, action: &Action) -> Option<(SimTime, Ev)> {
    match action {
        Action::Send { .. } => None,
        Action::StartProcessing { duration } => {
            Some((t + *duration, Ev::ProcDone { node: origin }))
        }
        Action::StartMrai {
            peer,
            prefix,
            delay,
            gen,
        } => Some((
            t + *delay,
            Ev::MraiExpiry {
                node: origin,
                peer: *peer,
                prefix: *prefix,
                gen: *gen,
            },
        )),
        Action::StartReuse {
            peer,
            prefix,
            delay,
            gen,
        } => Some((
            t + *delay,
            Ev::ReuseExpiry {
                node: origin,
                peer: *peer,
                prefix: *prefix,
                gen: *gen,
            },
        )),
    }
}

/// Read-only world state shared by every shard worker. Everything here is
/// frozen while the queue drains, which is what makes the parallel phase
/// safe.
#[derive(Clone, Copy)]
struct ShardCtx<'a> {
    topo: &'a Topology,
    policy: bool,
    tiers: Option<&'a [usize]>,
    alive: &'a [bool],
    dead_links: &'a HashSet<(u32, u32)>,
}

impl ShardCtx<'_> {
    fn session_alive(&self, a: RouterId, b: RouterId) -> bool {
        self.alive[a.index()] && self.alive[b.index()] && !self.dead_links.contains(&link_key(a, b))
    }
}

/// Runs one event's node handler, mirroring the dispatch arms of
/// `Network::handle` without any of their global side effects. Returns
/// `None` when the serial engine would have dropped the event (dead node
/// or dead session).
fn dispatch(
    ctx: &ShardCtx<'_>,
    nodes: &mut [Option<BgpNode>],
    base: usize,
    t: SimTime,
    ev: Ev,
) -> Option<(RouterId, Vec<Action>)> {
    match ev {
        Ev::Originate { node, prefix } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.originate(t, prefix)))
        }
        Ev::Deliver { to, from, msg } => {
            let n = nodes[to.index() - base].as_mut()?;
            Some((to, n.on_update(t, from, msg)))
        }
        Ev::ProcDone { node } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_proc_done(t)))
        }
        Ev::MraiExpiry {
            node,
            peer,
            prefix,
            gen,
        } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_mrai_expiry(t, peer, prefix, gen)))
        }
        Ev::PeerDown { node, peer } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_peer_down(t, peer)))
        }
        Ev::ReuseExpiry {
            node,
            peer,
            prefix,
            gen,
        } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_reuse_expiry(t, peer, prefix, gen)))
        }
        Ev::PeerUp { node, peer } => {
            if !ctx.session_alive(node, peer) {
                return None;
            }
            let ibgp = !ctx.topo.is_inter_as(node, peer);
            let rel = if ctx.policy && !ibgp {
                let tiers = ctx.tiers.expect("policy runs carry tiers");
                Some(relationship_by_tier(
                    tiers[ctx.topo.router(node).as_id.index()],
                    tiers[ctx.topo.router(peer).as_id.index()],
                ))
            } else {
                None
            };
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_peer_up(t, peer, ibgp, rel)))
        }
    }
}

/// One epoch of work for a shard: the epoch's end bound plus the shard's
/// drained events as `(time, key, event)`.
type EpochBatch = (SimTime, Vec<(SimTime, u64, Ev)>);
/// A shard's reply: per event it handled, in its execution order, the
/// actions the handler returned and the trace events it buffered (always
/// empty with tracing off).
type EpochTrace = Vec<(RouterId, Vec<Action>, Vec<NodeEvent>)>;

/// A shard worker's main loop: per epoch, run the local `(time, key)`
/// order to exhaustion and send the action traces back. Exits when the
/// work channel hangs up.
fn run_worker(
    ctx: &ShardCtx<'_>,
    base: usize,
    nodes: &mut [Option<BgpNode>],
    rx: &mpsc::Receiver<EpochBatch>,
    tx: &mpsc::Sender<EpochTrace>,
) {
    let mut local: BinaryHeap<Pending<Ev>> = BinaryHeap::new();
    while let Ok((epoch_end, batch)) = rx.recv() {
        let mut next_key = LOCAL_KEY_BASE;
        for (at, key, ev) in batch {
            local.push(Pending { at, key, item: ev });
        }
        let mut trace: EpochTrace = Vec::new();
        while let Some(Pending {
            at: t, item: ev, ..
        }) = local.pop()
        {
            let Some((node, actions)) = dispatch(ctx, nodes, base, t, ev) else {
                continue;
            };
            // The trace buffer the handler just filled travels with its
            // actions so the commit phase can emit it in global order.
            let events = nodes[node.index() - base]
                .as_mut()
                .map(BgpNode::take_trace)
                .unwrap_or_default();
            for action in &actions {
                if let Some((at2, ev2)) = follow_up(node, t, action) {
                    if at2 < epoch_end {
                        local.push(Pending {
                            at: at2,
                            key: next_key,
                            item: ev2,
                        });
                        next_key += 1;
                    }
                }
            }
            trace.push((node, actions, events));
        }
        if tx.send(trace).is_err() {
            return;
        }
    }
}

/// Drains the event queue with `net.shards` workers; externally
/// indistinguishable from `Network::pump`'s serial drain.
pub(crate) fn pump_sharded(net: &mut Network) {
    let debug_pump = std::env::var_os("BGPSIM_DEBUG_PUMP").is_some();
    let n = net.topo.num_routers();
    let shards = net.shards.min(n.max(1));
    let lookahead = net.cfg.link_delay;
    debug_assert!(!lookahead.is_zero(), "sharded loop needs lookahead");

    // World state frozen for the duration of the pump.
    let alive: Vec<bool> = net.nodes.iter().map(Option::is_some).collect();
    let tiers: Option<Vec<usize>> = if net.cfg.policy {
        Some(net.policy_tier_vec())
    } else {
        None
    };
    let ctx = ShardCtx {
        topo: &net.topo,
        policy: net.cfg.policy,
        tiers: tiers.as_deref(),
        alive: &alive,
        dead_links: &net.dead_links,
    };

    // Contiguous block partition of routers onto shards.
    let bounds: Vec<usize> = (0..=shards).map(|s| s * n / shards).collect();
    let mut shard_of = vec![0usize; n];
    for s in 0..shards {
        for node in &mut shard_of[bounds[s]..bounds[s + 1]] {
            *node = s;
        }
    }
    let mut chunks: Vec<Vec<Option<BgpNode>>> = Vec::with_capacity(shards);
    {
        let mut rest = std::mem::take(&mut net.nodes);
        for s in (0..shards).rev() {
            chunks.push(rest.split_off(bounds[s]));
        }
        chunks.reverse();
        debug_assert!(rest.is_empty());
    }

    let mut work_txs: Vec<mpsc::Sender<EpochBatch>> = Vec::with_capacity(shards);
    let mut trace_rxs: Vec<mpsc::Receiver<EpochTrace>> = Vec::with_capacity(shards);
    let mut worker_ends: Vec<(mpsc::Receiver<EpochBatch>, mpsc::Sender<EpochTrace>)> =
        Vec::with_capacity(shards);
    for _ in 0..shards {
        let (wtx, wrx) = mpsc::channel();
        let (ttx, trx) = mpsc::channel();
        work_txs.push(wtx);
        trace_rxs.push(trx);
        worker_ends.push((wrx, ttx));
    }

    let link_delay = net.cfg.link_delay;
    let result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (s, ((wrx, ttx), mut chunk)) in worker_ends.into_iter().zip(chunks).enumerate() {
            let base = bounds[s];
            handles.push(scope.spawn(move |_| {
                run_worker(&ctx, base, &mut chunk, &wrx, &ttx);
                chunk
            }));
        }

        // Reused across epochs; both are fully drained by each commit.
        let mut traces: Vec<VecDeque<(Vec<Action>, Vec<NodeEvent>)>> =
            (0..n).map(|_| VecDeque::new()).collect();
        let mut replay: BinaryHeap<Pending<CommitEv>> = BinaryHeap::new();
        let mut engaged = vec![false; shards];

        while let Some(t0) = net.sched.peek_time() {
            let epoch_end = t0 + lookahead;
            let drained = net.sched.drain_until(epoch_end);
            debug_assert!(!drained.is_empty(), "peeked event must drain");

            // Fan the epoch's events out to their owners' shards, seeding
            // the commit replay with their real (time, id) keys.
            let mut batches: Vec<Vec<(SimTime, u64, Ev)>> = vec![Vec::new(); shards];
            for (at, id, ev) in drained {
                let node = owner(&ev);
                let kind = commit_kind(&ev);
                let key = id.as_u64();
                debug_assert!(key < LOCAL_KEY_BASE);
                replay.push(Pending {
                    at,
                    key,
                    item: CommitEv { node, kind },
                });
                batches[shard_of[node.index()]].push((at, key, ev));
            }
            for (s, batch) in batches.into_iter().enumerate() {
                engaged[s] = !batch.is_empty();
                if engaged[s] {
                    work_txs[s]
                        .send((epoch_end, batch))
                        .expect("shard worker alive");
                }
            }
            // Barrier: collect every engaged shard's traces, grouped per
            // node (a shard reports its nodes' traces in execution order,
            // so per-node FIFO order is preserved).
            for s in 0..shards {
                if !engaged[s] {
                    continue;
                }
                let trace = trace_rxs[s].recv().expect("shard worker alive");
                for (node, actions, events) in trace {
                    traces[node.index()].push_back((actions, events));
                }
            }

            // Serial commit: replay the epoch in global (time, id) order,
            // applying exactly the side effects Network::handle/exec
            // would, with real ids allocated in serial order.
            while let Some(Pending {
                at: t,
                item: CommitEv { node, kind },
                ..
            }) = replay.pop()
            {
                net.sched.mark_delivered(t);
                if debug_pump && net.sched.delivered_count().is_multiple_of(1_000_000) {
                    eprintln!(
                        "[pump] events={} simtime={t} pending={}",
                        net.sched.delivered_count(),
                        net.sched.len()
                    );
                }
                let handled = match kind {
                    CommitKind::Activity | CommitKind::Timer | CommitKind::Silent => {
                        alive[node.index()]
                    }
                    CommitKind::PeerUp { peer } => ctx.session_alive(node, peer),
                };
                if !handled {
                    continue;
                }
                let (actions, events) = traces[node.index()]
                    .pop_front()
                    .expect("worker trace aligns with commit order");
                // Emit the handler's trace events at commit time, before
                // its actions' global effects — the exact point the serial
                // loop records them — so the stream is byte-identical to a
                // serial run's.
                for ev in events {
                    net.trace.record(t, node, ev);
                }
                match kind {
                    CommitKind::Activity | CommitKind::PeerUp { .. } => net.last_activity = t,
                    CommitKind::Timer if !actions.is_empty() => net.last_activity = t,
                    _ => {}
                }
                for action in actions {
                    if let Action::Send { to, msg } = action {
                        if msg.action.is_advertise() {
                            net.announcements += 1;
                        } else {
                            net.withdrawals += 1;
                        }
                        net.last_activity = t;
                        // Messages towards failed routers are lost with
                        // the link.
                        if alive[to.index()] {
                            let at2 = t + link_delay;
                            debug_assert!(at2 >= epoch_end, "send inside lookahead window");
                            net.sched.schedule(
                                at2,
                                Ev::Deliver {
                                    to,
                                    from: node,
                                    msg,
                                },
                            );
                        }
                    } else {
                        let (at2, ev2) =
                            follow_up(node, t, &action).expect("non-send actions follow up");
                        if at2 < epoch_end {
                            // Already executed on the worker; allocate its
                            // real id and keep replaying.
                            let id = net.sched.alloc_id();
                            replay.push(Pending {
                                at: at2,
                                key: id.as_u64(),
                                item: CommitEv {
                                    node,
                                    kind: commit_kind(&ev2),
                                },
                            });
                        } else {
                            net.sched.schedule(at2, ev2);
                        }
                    }
                }
            }
            debug_assert!(
                traces.iter().all(VecDeque::is_empty),
                "every recorded trace was consumed"
            );
        }

        // Hang up; workers drain and hand their router chunks back.
        drop(work_txs);
        let mut nodes: Vec<Option<BgpNode>> = Vec::with_capacity(n);
        for h in handles {
            nodes.extend(h.join().expect("shard worker panicked"));
        }
        nodes
    });
    match result {
        Ok(nodes) => net.nodes = nodes,
        Err(_) => panic!("sharded event loop worker panicked"),
    }
}

#[cfg(test)]
mod tests {
    use crate::network::{Network, SimConfig};
    use crate::scheme::Scheme;
    use bgpsim_des::SimDuration;
    use bgpsim_topology::degree::SkewedSpec;
    use bgpsim_topology::generators::skewed_topology;
    use bgpsim_topology::region::FailureSpec;
    use bgpsim_topology::{AsId, Point, Router, RouterId, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_topo(seed: u64, n: usize) -> Topology {
        let mut rng = SmallRng::seed_from_u64(seed);
        skewed_topology(n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
    }

    /// Full failure experiment under a given shard count; returns the
    /// stats and the final network for state comparison.
    fn run_with_shards(shards: usize) -> (crate::RunStats, Network) {
        let topo = small_topo(42, 30);
        let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
        cfg.shards = Some(shards);
        let mut net = Network::new(topo, cfg);
        let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
        (stats, net)
    }

    fn assert_networks_identical(a: &Network, b: &Network, what: &str) {
        assert_eq!(a.now(), b.now(), "{what}: clock diverged");
        assert_eq!(
            a.sched.delivered_count(),
            b.sched.delivered_count(),
            "{what}: delivered count diverged"
        );
        assert_eq!(
            a.sched.scheduled_count(),
            b.sched.scheduled_count(),
            "{what}: scheduled count diverged"
        );
        for r in a.topology().router_ids() {
            match (a.node(r), b.node(r)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.loc_rib(), y.loc_rib(), "{what}: Loc-RIB of {r} diverged");
                    assert_eq!(x.stats(), y.stats(), "{what}: node stats of {r} diverged");
                }
                _ => panic!("{what}: aliveness of {r} diverged"),
            }
        }
    }

    #[test]
    fn sharded_matches_serial_across_shard_counts() {
        let (serial_stats, serial_net) = run_with_shards(1);
        for shards in [2, 3, 7] {
            let (stats, net) = run_with_shards(shards);
            assert_eq!(stats, serial_stats, "RunStats diverged at {shards} shards");
            assert_networks_identical(&net, &serial_net, &format!("{shards} shards"));
        }
    }

    #[test]
    fn epoch_boundary_deliveries_match_serial() {
        // Regression: with a zero origination window, every message lands
        // exactly on an epoch boundary (t0 + link_delay == epoch_end), the
        // half-open-window edge case — it must be queued into the next
        // epoch and delivered in serial order, including the event-id
        // tie-break between same-instant deliveries from different peers.
        let build = |shards: usize| {
            let routers = (0..4)
                .map(|i| Router {
                    as_id: AsId::new(i),
                    pos: Point::new(i as f64, 0.0),
                })
                .collect();
            // A diamond 0–{1,2}–3: router 3 hears every prefix from both 1
            // and 2 at the same instant.
            let topo = Topology::new(
                routers,
                vec![
                    (RouterId::new(0), RouterId::new(1)),
                    (RouterId::new(0), RouterId::new(2)),
                    (RouterId::new(1), RouterId::new(3)),
                    (RouterId::new(2), RouterId::new(3)),
                ],
            )
            .unwrap();
            let mut cfg = SimConfig::new(99);
            cfg.origination_window = SimDuration::ZERO;
            cfg.shards = Some(shards);
            Network::new(topo, cfg)
        };
        let mut serial = build(1);
        serial.run_initial_convergence();
        for shards in [2, 4] {
            let mut net = build(shards);
            net.run_initial_convergence();
            assert_networks_identical(&net, &serial, &format!("{shards} shards"));
        }
    }

    #[test]
    fn link_failure_and_revival_match_serial() {
        // Covers the PeerDown/PeerUp commit arms: fail a link, quiesce,
        // then revive a router region.
        let run = |shards: usize| {
            let topo = small_topo(7, 24);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 31);
            cfg.shards = Some(shards);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            let edges: Vec<_> = net.topology().edges()[..3].to_vec();
            net.inject_link_failure(&edges);
            let s1 = net.run_to_quiescence();
            let failed = net.inject_failure(&FailureSpec::CenterFraction(0.10));
            let s2 = net.run_to_quiescence();
            net.revive_routers(&failed);
            let s3 = net.run_to_quiescence();
            (s1, s2, s3, net)
        };
        let (a1, a2, a3, serial) = run(1);
        let (b1, b2, b3, sharded) = run(3);
        assert_eq!(a1, b1, "link-failure stats diverged");
        assert_eq!(a2, b2, "region-failure stats diverged");
        assert_eq!(a3, b3, "revival stats diverged");
        assert_networks_identical(&sharded, &serial, "3 shards");
    }

    #[test]
    fn traces_byte_identical_across_shard_counts() {
        // The tentpole claim of the trace layer: the JSONL byte stream is
        // a pure function of the simulation, independent of shard count.
        let run = |shards: usize| {
            let topo = small_topo(42, 30);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
            cfg.shards = Some(shards);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            net.inject_failure(&FailureSpec::CenterFraction(0.10));
            net.set_trace_sink(crate::trace::TraceSink::memory(1 << 22));
            let stats = net.run_to_quiescence();
            let events = net.take_trace_events();
            assert!(!events.is_empty(), "re-convergence must record events");
            (stats, crate::trace::to_jsonl(&events))
        };
        let (serial_stats, serial_jsonl) = run(1);
        for shards in [2, 3] {
            let (stats, jsonl) = run(shards);
            assert_eq!(stats, serial_stats, "RunStats diverged at {shards} shards");
            assert_eq!(
                jsonl, serial_jsonl,
                "trace bytes diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn shard_count_resolution() {
        let topo = small_topo(1, 10);
        let mut cfg = SimConfig::new(1);
        cfg.shards = Some(4);
        assert_eq!(Network::new(topo, cfg).shard_count(), 4);
    }
}
