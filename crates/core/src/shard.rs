//! The sharded deterministic event loop — conservative PDES with
//! link-delay lookahead, **shard-owned future-event lists**, and a
//! destination-partitioned parallel commit (DESIGN.md §13).
//!
//! Every inter-node interaction in this model crosses a link with a fixed
//! one-way delay (`SimConfig::link_delay`, the paper's 25 ms), so an event
//! executed at time `t` can only create events at *other* nodes at
//! `t + link_delay` or later. That delay is the classic conservative-PDES
//! *lookahead*: all events inside a half-open window
//! `[t0, t0 + link_delay)` that touch different nodes are causally
//! independent and may run concurrently.
//!
//! There is no central event list while the loop runs. At pump start the
//! network's FEL is **partitioned**: drained wholesale and every event
//! re-inserted (under its existing `(time, id)` key) into its owning
//! shard's private [`Fel`] of the same backend. From then on inserts and
//! the per-epoch drain are shard-local; the only cross-shard traffic is
//! fixed-order mailbox chunks exchanged at the epoch barrier. Each epoch:
//!
//! 1. **Execute (parallel, Phase A).** Every *engaged* shard — one with
//!    an event or pending mail before `epoch_end = t0 + lookahead` —
//!    first files its mailbox chunks into its FEL, drains its FEL to
//!    `epoch_end`, then runs its routers' handlers in local `(time, key)`
//!    order, feeding handler-created *same-node* events that land inside
//!    the epoch (ProcDone, MRAI/reuse expiries) back into a local heap
//!    with keys above [`LOCAL_KEY_BASE`], and records one action trace
//!    per handled event plus one `(time, id, walk-entry)` index row per
//!    drained event. Cross-node sends always land at
//!    `t + link_delay >= epoch_end`, i.e. outside the epoch — the
//!    lookahead argument — so shards never need to talk mid-epoch. Jobs
//!    run on the process-wide parked worker pool ([`crate::pool`]); small
//!    epochs (predicted from the previous epoch's size, see
//!    [`PHASE_A_PAR_MIN_OPS`]) run inline on the coordinator instead.
//! 2. **Walk (serial, Phase B).** Merge the shards' index rows into one
//!    replay heap and walk the epoch in global `(time, id)` order — but
//!    apply only the side effects that *need* the order: advance the
//!    clock and delivered count, consume the matching recorded trace,
//!    allocate *real* event ids for every action in exactly the order a
//!    serial run would, track the activity clock, and bin each event's
//!    recorded actions into per-destination commit streams (keyed by the
//!    BGP prefix the event concerns; destinations are causally
//!    independent within an epoch). The walk touches no message payloads
//!    — it is the irreducible serial fraction.
//! 3. **Apply (parallel) + exchange (serial).** Each commit stream
//!    independently expands its binned actions into per-destination-shard
//!    mail chunks (`Deliver` at `t + link_delay`, cross-epoch timer
//!    expiries) under the pre-allocated ids, bumps private message
//!    counters, and collects its trace events. Streams run on the worker
//!    pool when the epoch is large enough to pay for the fan-out, inline
//!    otherwise — the outputs are identical either way. The exchange then
//!    sums the counters, emits trace events in commit order, and routes
//!    each stream's chunks into the destination shards' mailboxes —
//!    replacing PR 6's serial k-way merge back into a global heap with
//!    O(streams × shards) pointer moves.
//!
//! ## Why this is bit-identical to the serial loop
//!
//! The serial engine delivers in `(time, id)` order, where ids are a
//! global insertion counter; ids are the tie-break for same-instant
//! events, so reproducing serial behavior means reproducing exact id
//! assignment, not just timestamps.
//!
//! *Per-node order.* For one router, a worker's `(time, key)` order
//! equals the serial `(time, id)` order: drained events carry their real
//! ids in both; intra-epoch self-events sort after every drained event at
//! the same instant in both (worker keys start at [`LOCAL_KEY_BASE`],
//! real ids of intra-epoch creations exceed every pre-epoch id); and two
//! self-events of the same node tie-break by creation order in both.
//! Handler inputs are thus identical event-by-event, and node state
//! (including the node's private RNG stream) evolves identically.
//!
//! *Cross-node order.* Routers share no mutable state during an epoch —
//! aliveness, dead links, sessions, topology, and policy tiers are all
//! frozen while the queues drain — so cross-node interleaving inside an
//! epoch is unobservable to the nodes. Every *global* side effect is
//! either applied by the serial walk in serial order (clock, delivered
//! count, id allocation, activity clock) or is order-independent and
//! reconciled by the exchange (counter sums; mailbox inserts under
//! pre-assigned `(time, id)` keys — a FEL's delivery order is a pure
//! function of those keys, not of insertion order, so neither the chunk
//! routing order nor which FEL an event sits in is observable; trace
//! emission, restored to commit order by the plan-index merge). The union
//! of the shard FELs and mailboxes at every epoch boundary is therefore
//! the exact event set a serial run's scheduler would hold, with the same
//! keys, which carries the invariant into the next epoch — and makes
//! `RunStats`, goldens, warm-start snapshots and trace streams
//! independent of both the shard count and the commit-stream count. At
//! pump exit the shard FELs are empty, the walk has settled all clock and
//! counter accounting on the (now empty) central FEL, and the network is
//! indistinguishable from one a serial pump quiesced.
//!
//! *Why destinations.* A BGP update concerns exactly one prefix, and
//! within an epoch the actions recorded for different prefixes never
//! read each other's state — the per-destination logical queues of the
//! batching scheme make the same independence explicit at the node
//! level. Binning by destination therefore yields streams whose applies
//! commute; events with no prefix (ProcDone, PeerDown/Up, per-peer MRAI)
//! bin by owning router instead, which is equally order-free at this
//! stage because *all* ordered effects already happened in the walk.
//!
//! *Mailbox ordering rule.* A mailbox chunk is one commit stream's mail
//! for one destination shard, id-ascending within the chunk; chunks are
//! routed in stream-major order and filed into the destination FEL before
//! that shard's next drain. None of those orders matter for correctness —
//! only the `(time, id)` keys do — but fixing them keeps the engine's
//! internal traversal deterministic too. An event landing exactly on an
//! epoch boundary is *not* drained (the window is half-open) and is
//! delivered at the start of the next epoch, exactly where the serial
//! order puts it; the epoch start `t0` is the minimum over the shards'
//! FEL heads *and* undelivered mailbox chunks, so mail can never be
//! skipped past.
//!
//! The loop falls back to serial for `shards <= 1`, zero link delay (no
//! lookahead), and sampling runs (samples read global state mid-epoch).

use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use bgpsim_bgp::node::Action;
use bgpsim_bgp::policy::relationship_by_tier;
use bgpsim_bgp::trace::NodeEvent;
use bgpsim_bgp::BgpNode;
use bgpsim_des::{EventId, Fel, SimDuration, SimTime};
use bgpsim_topology::{RouterId, Topology};

use crate::network::{link_key, Ev, Network};

/// Worker-local sort keys for intra-epoch self-events start here — above
/// any real event id, so a drained event always outranks a same-instant
/// self-event, exactly like real id assignment would order them.
const LOCAL_KEY_BASE: u64 = 1 << 63;

/// Epochs with fewer committed ops than this apply their commit streams
/// inline: even a parked-pool wake costs more than the work. Deliberately
/// low so modest test topologies still exercise the parallel path; the
/// outputs are identical either way.
const COMMIT_PAR_MIN_OPS: usize = 16;

/// Epochs *predicted* to drain fewer events than this run Phase A on the
/// coordinator thread instead of the worker pool — waking workers costs
/// more than executing a handful of handlers directly. The predictor is
/// the previous epoch's drained count (the drain is now shard-local, so
/// the coordinator no longer sees the count before fan-out); epoch sizes
/// are strongly autocorrelated, and a misprediction costs only wall
/// clock, never correctness. Mirrors [`COMMIT_PAR_MIN_OPS`], and like it
/// is deliberately low so modest test topologies still exercise the
/// fan-out path; the outputs are identical either way (the shared
/// [`run_shard_epoch`] body runs on either thread).
const PHASE_A_PAR_MIN_OPS: usize = 16;

/// Cumulative wall-clock the sharded event loop spent per stage, exposed
/// through [`Network::shard_phase_timings`]. Instrumentation only — never
/// part of `RunStats`, so bit-identity comparisons are unaffected.
///
/// The Amdahl read: `phase_b_secs` (the serial walk) plus `drain_secs`
/// and `mailbox_exchange_secs` (the serial partition/steering remainder)
/// bound the speedup shards can buy; `phase_a_secs` and the parallel part
/// of `merge_secs` scale with cores.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardPhaseTimings {
    /// Epochs the loop ran.
    pub epochs: u64,
    /// Epochs whose commit streams ran on the worker pool (the rest
    /// applied inline — too few ops, or one stream configured).
    pub parallel_commit_epochs: u64,
    /// Epochs whose Phase A ran on the coordinator thread (predicted
    /// smaller than [`PHASE_A_PAR_MIN_OPS`] — a pool wake would cost more
    /// than the handlers).
    pub inline_phase_a_epochs: u64,
    /// Serial FEL bookkeeping outside the phases: the pump-start
    /// partition of the central FEL onto the shards, plus the per-epoch
    /// `t0`/engagement scan over the shards' cached heads.
    pub drain_secs: f64,
    /// Mail filing + shard-local drain + parallel node execution +
    /// barrier (Phase A).
    pub phase_a_secs: f64,
    /// The serial order walk: id allocation, delivery accounting,
    /// activity clock, commit-stream binning (Phase B).
    pub phase_b_secs: f64,
    /// Commit-stream apply (parallel or inline) + counter sums + trace
    /// emission in commit order.
    pub merge_secs: f64,
    /// Routing each stream's mail chunks into the destination shards'
    /// mailboxes at the epoch barrier — the serial step that replaced
    /// PR 6's id-ordered k-way merge back into a central heap.
    pub mailbox_exchange_secs: f64,
}

impl ShardPhaseTimings {
    /// Accumulates another timing block into this one.
    pub(crate) fn add(&mut self, other: &ShardPhaseTimings) {
        self.epochs += other.epochs;
        self.parallel_commit_epochs += other.parallel_commit_epochs;
        self.inline_phase_a_epochs += other.inline_phase_a_epochs;
        self.drain_secs += other.drain_secs;
        self.phase_a_secs += other.phase_a_secs;
        self.phase_b_secs += other.phase_b_secs;
        self.merge_secs += other.merge_secs;
        self.mailbox_exchange_secs += other.mailbox_exchange_secs;
    }

    /// Total instrumented wall-clock across all stages.
    pub fn total_secs(&self) -> f64 {
        self.drain_secs
            + self.phase_a_secs
            + self.phase_b_secs
            + self.merge_secs
            + self.mailbox_exchange_secs
    }

    /// The serial fraction of the instrumented wall-clock: everything the
    /// coordinator must do alone (partition/steering, the order walk, the
    /// exchange) over the total. The Amdahl bound on shard speedup.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.total_secs();
        if total == 0.0 {
            return 0.0;
        }
        (self.drain_secs + self.phase_b_secs + self.mailbox_exchange_secs) / total
    }
}

/// Min-heap entry ordered by `(at, key)`.
struct Pending<T> {
    at: SimTime,
    key: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.key) == (other.at, other.key)
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// What the walk must do for one replayed event — a compact stand-in for
/// the event that avoids cloning message payloads.
#[derive(Clone, Copy)]
enum CommitKind {
    /// Originate / Deliver / ProcDone: handled iff the node is alive;
    /// marks activity whenever handled.
    Activity,
    /// MraiExpiry / ReuseExpiry: handled iff alive; marks activity only
    /// when the handler produced actions.
    Timer,
    /// PeerDown: handled iff alive; never marks activity by itself.
    Silent,
    /// PeerUp: handled iff the session to `peer` is up; marks activity.
    PeerUp {
        /// The session peer being (re-)established.
        peer: RouterId,
    },
}

/// One walk replay entry.
struct CommitEv {
    node: RouterId,
    kind: CommitKind,
    /// Destination key binning this event's actions onto a commit stream:
    /// the prefix the event concerns, or the owning router for events
    /// with no prefix. Any deterministic mapping preserves bit-identity;
    /// prefix-major is what makes the streams load-balance.
    dest: u32,
}

/// The router whose handler an event invokes.
fn owner(ev: &Ev) -> RouterId {
    match ev {
        Ev::Originate { node, .. }
        | Ev::WithdrawOrigin { node, .. }
        | Ev::ProcDone { node }
        | Ev::MraiExpiry { node, .. }
        | Ev::PeerDown { node, .. }
        | Ev::PeerUp { node, .. }
        | Ev::ReuseExpiry { node, .. } => *node,
        Ev::Deliver { to, .. } => *to,
    }
}

/// The walk semantics of an event (mirrors `Network::handle`).
fn commit_kind(ev: &Ev) -> CommitKind {
    match ev {
        Ev::Originate { .. }
        | Ev::WithdrawOrigin { .. }
        | Ev::Deliver { .. }
        | Ev::ProcDone { .. } => CommitKind::Activity,
        Ev::MraiExpiry { .. } | Ev::ReuseExpiry { .. } => CommitKind::Timer,
        Ev::PeerDown { .. } => CommitKind::Silent,
        Ev::PeerUp { peer, .. } => CommitKind::PeerUp { peer: *peer },
    }
}

/// The destination stream key of an event: its prefix where it has one,
/// its owning router otherwise.
fn commit_dest(ev: &Ev) -> u32 {
    match ev {
        Ev::Originate { prefix, .. } | Ev::WithdrawOrigin { prefix, .. } => prefix.index() as u32,
        Ev::Deliver { msg, .. } => msg.prefix.index() as u32,
        Ev::ReuseExpiry { prefix, .. } => prefix.index() as u32,
        Ev::MraiExpiry { node, prefix, .. } => {
            prefix.map_or(node.index() as u32, |p| p.index() as u32)
        }
        Ev::ProcDone { node } | Ev::PeerDown { node, .. } | Ev::PeerUp { node, .. } => {
            node.index() as u32
        }
    }
}

/// The commit stream a destination key bins into.
///
/// A plain `dest % streams` aliases badly on full-table workloads: prefix
/// slots are handed out in contiguous per-AS blocks, so the prefixes a
/// single origin withdraws in one burst are *strided* — whenever the block
/// size shares a factor with the stream count, whole bursts land in one or
/// two streams and the parallel commit degenerates to serial. A
/// multiply-shift mix (Fibonacci hashing; the constant is
/// `2^64 / golden ratio`) decorrelates the low bits first. The binning is
/// unobservable in simulator output — stream ops are replayed in
/// `plan_idx` order keyed by pre-allocated `(time, id)` — so this choice
/// only affects load balance, never results (the byte-identity suite pins
/// that).
fn stream_of(dest: u32, streams: usize) -> usize {
    (((dest as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % streams
}

/// The same-node follow-up event an action asks the driver to schedule
/// (`None` for sends, which cross a link and leave the epoch).
fn follow_up(origin: RouterId, t: SimTime, action: &Action) -> Option<(SimTime, Ev)> {
    match action {
        Action::Send { .. } => None,
        Action::StartProcessing { duration } => {
            Some((t + *duration, Ev::ProcDone { node: origin }))
        }
        Action::StartMrai {
            peer,
            prefix,
            delay,
            gen,
        } => Some((
            t + *delay,
            Ev::MraiExpiry {
                node: origin,
                peer: *peer,
                prefix: *prefix,
                gen: *gen,
            },
        )),
        Action::StartReuse {
            peer,
            prefix,
            delay,
            gen,
        } => Some((
            t + *delay,
            Ev::ReuseExpiry {
                node: origin,
                peer: *peer,
                prefix: *prefix,
                gen: *gen,
            },
        )),
    }
}

/// When a non-send action's follow-up event fires — `follow_up` without
/// building the event, for the walk's intra-epoch test.
fn follow_at(t: SimTime, action: &Action) -> SimTime {
    match action {
        Action::StartProcessing { duration } => t + *duration,
        Action::StartMrai { delay, .. } | Action::StartReuse { delay, .. } => t + *delay,
        Action::Send { .. } => unreachable!("sends have no same-node follow-up"),
    }
}

/// Walk semantics and destination key of a non-send action's follow-up.
fn follow_commit(origin: RouterId, action: &Action) -> (CommitKind, u32) {
    match action {
        Action::StartProcessing { .. } => (CommitKind::Activity, origin.index() as u32),
        Action::StartMrai { prefix, .. } => (
            CommitKind::Timer,
            prefix.map_or(origin.index() as u32, |p| p.index() as u32),
        ),
        Action::StartReuse { prefix, .. } => (CommitKind::Timer, prefix.index() as u32),
        Action::Send { .. } => unreachable!("sends have no same-node follow-up"),
    }
}

/// Read-only world state shared by every shard worker. Everything here is
/// frozen while the queue drains, which is what makes the parallel phases
/// safe.
#[derive(Clone, Copy)]
struct ShardCtx<'a> {
    topo: &'a Topology,
    policy: bool,
    tiers: Option<&'a [usize]>,
    alive: &'a [bool],
    dead_links: &'a HashSet<(u32, u32)>,
}

impl ShardCtx<'_> {
    fn session_alive(&self, a: RouterId, b: RouterId) -> bool {
        self.alive[a.index()] && self.alive[b.index()] && !self.dead_links.contains(&link_key(a, b))
    }
}

/// Runs one event's node handler, mirroring the dispatch arms of
/// `Network::handle` without any of their global side effects. Returns
/// `None` when the serial engine would have dropped the event (dead node
/// or dead session).
fn dispatch(
    ctx: &ShardCtx<'_>,
    nodes: &mut [Option<BgpNode>],
    base: usize,
    t: SimTime,
    ev: Ev,
) -> Option<(RouterId, Vec<Action>)> {
    match ev {
        Ev::Originate { node, prefix } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.originate(t, prefix)))
        }
        Ev::WithdrawOrigin { node, prefix } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.withdraw_origin(t, prefix)))
        }
        Ev::Deliver { to, from, msg } => {
            let n = nodes[to.index() - base].as_mut()?;
            Some((to, n.on_update(t, from, msg)))
        }
        Ev::ProcDone { node } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_proc_done(t)))
        }
        Ev::MraiExpiry {
            node,
            peer,
            prefix,
            gen,
        } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_mrai_expiry(t, peer, prefix, gen)))
        }
        Ev::PeerDown { node, peer } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_peer_down(t, peer)))
        }
        Ev::ReuseExpiry {
            node,
            peer,
            prefix,
            gen,
        } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_reuse_expiry(t, peer, prefix, gen)))
        }
        Ev::PeerUp { node, peer } => {
            if !ctx.session_alive(node, peer) {
                return None;
            }
            let ibgp = !ctx.topo.is_inter_as(node, peer);
            let rel = if ctx.policy && !ibgp {
                let tiers = ctx.tiers.expect("policy runs carry tiers");
                Some(relationship_by_tier(
                    tiers[ctx.topo.router(node).as_id.index()],
                    tiers[ctx.topo.router(peer).as_id.index()],
                ))
            } else {
                None
            };
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_peer_up(t, peer, ibgp, rel)))
        }
    }
}

/// A shard's Phase A trace: per event it handled, in its execution order,
/// the actions the handler returned and the trace events it buffered
/// (always empty with tracing off).
type EpochTrace = Vec<(RouterId, Vec<Action>, Vec<NodeEvent>)>;
/// One scheduler entry in flight between shards: `(time, id, event)`.
type MailEntry = (SimTime, u64, Ev);

/// One committed event's share of the epoch commit plan, produced by the
/// walk in global `(time, id)` order and consumed by a commit stream.
struct ApplyOp {
    /// Position in the walk's commit order — the key the merge uses to
    /// restore global trace order across streams.
    plan_idx: u32,
    /// Commit (delivery) time of the event.
    t: SimTime,
    /// The router whose handler produced the actions.
    node: RouterId,
    /// First event id the walk allocated for this op's actions; the
    /// stream re-derives per-action ids by replaying the walk's
    /// allocation rule (sends to dead routers consume no id).
    id_base: u64,
    /// The handler's recorded actions.
    actions: Vec<Action>,
    /// The handler's buffered trace events (empty with tracing off).
    events: Vec<NodeEvent>,
}

/// What one commit stream hands back to the exchange.
struct ApplyOut {
    /// Mail chunks per destination shard: scheduler entries under
    /// pre-allocated ids, id-ascending within each chunk.
    mail: Vec<Vec<MailEntry>>,
    /// Earliest entry time per destination shard (`None` for an empty
    /// chunk) — pre-computed here, in parallel, so the serial exchange
    /// only moves pointers.
    mail_min: Vec<Option<SimTime>>,
    /// Advertisements sent by this stream's ops.
    announcements: u64,
    /// Withdrawals sent by this stream's ops.
    withdrawals: u64,
    /// Trace events per op, `plan_idx`-ascending.
    traced: Vec<(u32, SimTime, RouterId, Vec<NodeEvent>)>,
}

impl ApplyOut {
    fn empty(shards: usize) -> ApplyOut {
        ApplyOut {
            mail: (0..shards).map(|_| Vec::new()).collect(),
            mail_min: vec![None; shards],
            announcements: 0,
            withdrawals: 0,
            traced: Vec::new(),
        }
    }
}

/// Expands one commit stream's ops into per-destination-shard mail
/// chunks, message counters and trace batches. Pure with respect to
/// global state: the same inputs give the same outputs whether this runs
/// inline or on a worker, which is what makes the stream count a
/// wall-clock-only knob.
fn apply_ops(
    alive: &[bool],
    shard_of: &[usize],
    shards: usize,
    link_delay: SimDuration,
    epoch_end: SimTime,
    ops: Vec<ApplyOp>,
) -> ApplyOut {
    let mut out = ApplyOut::empty(shards);
    let push = |out: &mut ApplyOut, node: RouterId, entry: MailEntry| {
        let s = shard_of[node.index()];
        let min = &mut out.mail_min[s];
        if min.is_none_or(|m| entry.0 < m) {
            *min = Some(entry.0);
        }
        out.mail[s].push(entry);
    };
    for op in ops {
        if !op.events.is_empty() {
            out.traced.push((op.plan_idx, op.t, op.node, op.events));
        }
        // Re-derive the per-action ids the walk allocated: consecutive
        // from id_base, skipping sends to dead routers (the serial loop
        // never schedules those).
        let mut next_id = op.id_base;
        for action in op.actions {
            if let Action::Send { to, msg } = action {
                if msg.action.is_advertise() {
                    out.announcements += 1;
                } else {
                    out.withdrawals += 1;
                }
                // Messages towards failed routers are lost with the link.
                if alive[to.index()] {
                    let at2 = op.t + link_delay;
                    debug_assert!(at2 >= epoch_end, "send inside lookahead window");
                    let ev2 = Ev::Deliver {
                        to,
                        from: op.node,
                        msg,
                    };
                    push(&mut out, to, (at2, next_id, ev2));
                    next_id += 1;
                }
            } else {
                let (at2, ev2) = follow_up(op.node, op.t, &action).expect("non-send follows up");
                let id = next_id;
                next_id += 1;
                if at2 >= epoch_end {
                    // Cross-epoch follow-up: becomes real mail for the
                    // owner's shard. (Intra-epoch ones were replayed by
                    // the walk and never reach a stream.)
                    push(&mut out, op.node, (at2, id, ev2));
                }
            }
        }
    }
    out
}

/// Executes one shard's epoch batch: run the local `(time, key)` order to
/// exhaustion, feeding intra-epoch same-node follow-ups back into the
/// heap, and record one `(node, actions, trace)` entry per handled event
/// in execution order. The handler-running half of Phase A for one shard
/// — shared verbatim by the pool jobs and the coordinator's inline path
/// for small epochs, so the two paths cannot diverge. `local` must be
/// empty on entry; the loop leaves it empty again (every intra-epoch
/// follow-up fires before `epoch_end` by construction).
fn run_epoch_batch(
    ctx: &ShardCtx<'_>,
    base: usize,
    nodes: &mut [Option<BgpNode>],
    local: &mut BinaryHeap<Pending<Ev>>,
    epoch_end: SimTime,
    batch: Vec<(SimTime, u64, Ev)>,
) -> EpochTrace {
    let mut next_key = LOCAL_KEY_BASE;
    for (at, key, ev) in batch {
        local.push(Pending { at, key, item: ev });
    }
    let mut trace: EpochTrace = Vec::new();
    while let Some(Pending {
        at: t, item: ev, ..
    }) = local.pop()
    {
        let Some((node, actions)) = dispatch(ctx, nodes, base, t, ev) else {
            continue;
        };
        // The trace buffer the handler just filled travels with its
        // actions so the commit can emit it in global order.
        let events = nodes[node.index() - base]
            .as_mut()
            .map(BgpNode::take_trace)
            .unwrap_or_default();
        for action in &actions {
            if let Some((at2, ev2)) = follow_up(node, t, action) {
                if at2 < epoch_end {
                    local.push(Pending {
                        at: at2,
                        key: next_key,
                        item: ev2,
                    });
                    next_key += 1;
                }
            }
        }
        trace.push((node, actions, events));
    }
    trace
}

/// Everything one shard owns for the duration of a pump: its private
/// future-event list, its block of routers, its Phase A scratch heap, and
/// the slot its epoch output is parked in between the Phase A barrier and
/// the coordinator's collection pass. Behind a [`Mutex`] only so pool
/// jobs and the coordinator's inline path can run the same code on it;
/// the epoch protocol guarantees every lock is uncontended (a shard is
/// touched by exactly one thread at a time, and the barrier orders the
/// hand-offs).
struct ShardSlot {
    fel: Fel<Ev>,
    base: usize,
    nodes: Vec<Option<BgpNode>>,
    local: BinaryHeap<Pending<Ev>>,
    out: Option<ShardEpochOut>,
}

/// One shard's Phase A output for one epoch.
struct ShardEpochOut {
    /// Walk index: one `(time, id, walk entry)` row per drained event, in
    /// the shard's drain (= local `(time, id)`) order.
    index: Vec<(SimTime, u64, CommitEv)>,
    /// Handler actions and trace buffers, in execution order.
    trace: EpochTrace,
    /// The shard FEL's head after the drain — cached so the coordinator's
    /// per-epoch `t0` scan never has to lock an unengaged shard (mail
    /// deliveries, the only other mutation, are tracked separately).
    next_peek: Option<SimTime>,
}

/// The whole of Phase A for one engaged shard: file the epoch's mailbox
/// chunks into the FEL, drain it to `epoch_end`, build the walk-index
/// rows, run the handlers, and park the output in the slot. Runs either
/// as a pool job or inline on the coordinator — same code, so the paths
/// cannot diverge.
fn run_shard_epoch(
    ctx: &ShardCtx<'_>,
    slot: &mut ShardSlot,
    mail: Vec<Vec<MailEntry>>,
    epoch_end: SimTime,
) {
    for chunk in mail {
        for (at, id, ev) in chunk {
            slot.fel.insert_allocated(at, EventId::from_u64(id), ev);
        }
    }
    let drained = slot.fel.drain_until(epoch_end);
    let mut index = Vec::with_capacity(drained.len());
    let mut batch = Vec::with_capacity(drained.len());
    for (at, id, ev) in drained {
        let key = id.as_u64();
        debug_assert!(key < LOCAL_KEY_BASE);
        index.push((
            at,
            key,
            CommitEv {
                node: owner(&ev),
                kind: commit_kind(&ev),
                dest: commit_dest(&ev),
            },
        ));
        batch.push((at, key, ev));
    }
    let ShardSlot {
        fel,
        base,
        nodes,
        local,
        out,
    } = slot;
    let trace = run_epoch_batch(ctx, *base, nodes, local, epoch_end, batch);
    *out = Some(ShardEpochOut {
        index,
        trace,
        next_peek: fel.peek_time(),
    });
}

/// Drains the event queue with `net.shards` shard-owned FELs on the
/// process-wide worker pool; externally indistinguishable from
/// `Network::pump`'s serial drain.
pub(crate) fn pump_sharded(net: &mut Network) {
    let debug_pump = std::env::var_os("BGPSIM_DEBUG_PUMP").is_some();
    let n = net.topo.num_routers();
    let shards = net.shards.min(n.max(1));
    let streams = net.commit_streams.clamp(1, shards);
    let lookahead = net.cfg.link_delay;
    debug_assert!(!lookahead.is_zero(), "sharded loop needs lookahead");

    // World state frozen for the duration of the pump.
    let alive: Vec<bool> = net.nodes.iter().map(Option::is_some).collect();
    let tiers: Option<Vec<usize>> = if net.cfg.policy {
        Some(net.policy_tier_vec())
    } else {
        None
    };
    let ctx = ShardCtx {
        topo: &net.topo,
        policy: net.cfg.policy,
        tiers: tiers.as_deref(),
        alive: &alive,
        dead_links: &net.dead_links,
    };

    // Contiguous block partition of routers onto shards.
    let bounds: Vec<usize> = (0..=shards).map(|s| s * n / shards).collect();
    let mut shard_of = vec![0usize; n];
    for s in 0..shards {
        for node in &mut shard_of[bounds[s]..bounds[s + 1]] {
            *node = s;
        }
    }

    // Build the shard slots — router chunks plus a private FEL each, of
    // the same backend as the network's — and partition the central FEL
    // onto them: every pending event moves to its owner's shard under its
    // existing (time, id) key. The central list stays empty until the
    // pump ends; only its id/delivery accounting advances (in the walk).
    let partition_start = Instant::now();
    let fel_kind = net.sched.kind();
    let mut slots: Vec<Mutex<ShardSlot>> = Vec::with_capacity(shards);
    {
        let mut chunks: Vec<Vec<Option<BgpNode>>> = Vec::with_capacity(shards);
        let mut rest = std::mem::take(&mut net.nodes);
        for s in (0..shards).rev() {
            chunks.push(rest.split_off(bounds[s]));
        }
        chunks.reverse();
        debug_assert!(rest.is_empty());
        for (s, nodes) in chunks.into_iter().enumerate() {
            slots.push(Mutex::new(ShardSlot {
                fel: Fel::new(fel_kind),
                base: bounds[s],
                nodes,
                local: BinaryHeap::new(),
                out: None,
            }));
        }
    }
    // Events still pending across all shard FELs and mailboxes (debug
    // visibility only — never feeds back into simulation state).
    let mut live_pending: u64 = 0;
    for (at, id, ev) in net.sched.drain_all() {
        let s = shard_of[owner(&ev).index()];
        slots[s]
            .get_mut()
            .expect("slot mutex poisoned")
            .fel
            .insert_allocated(at, id, ev);
        live_pending += 1;
    }
    // Cached FEL heads, maintained by the epoch protocol so the per-epoch
    // t0 scan is pure arithmetic: a shard's head only changes when it is
    // engaged (drain + mail filing), and engagement refreshes the cache.
    let mut peeks: Vec<Option<SimTime>> = slots
        .iter_mut()
        .map(|slot| slot.get_mut().expect("slot mutex poisoned").fel.peek_time())
        .collect();
    let mut timings = ShardPhaseTimings::default();
    timings.drain_secs += partition_start.elapsed().as_secs_f64();

    // Undelivered mailbox chunks per destination shard, with the earliest
    // contained time — the only cross-shard state between epochs.
    let mut mailboxes: Vec<Vec<Vec<MailEntry>>> = (0..shards).map(|_| Vec::new()).collect();
    let mut mail_min: Vec<Option<SimTime>> = vec![None; shards];
    // Parking slots for the parallel commit streams' outputs.
    let commit_outs: Vec<Mutex<Option<ApplyOut>>> =
        (0..streams).map(|_| Mutex::new(None)).collect();

    let link_delay = lookahead;
    let pool = crate::pool::global();
    // Phase A size predictor: the previous epoch's drained count (see
    // PHASE_A_PAR_MIN_OPS). Starts at 0 so the first epoch runs inline.
    let mut predicted_ops = 0usize;

    // One pool scope spans every epoch of the pump (and the pool itself
    // spans every pump in the process): an epoch costs condvar wakes, not
    // thread spawns or channel hops.
    pool.scope(|scope| {
        // Reused across epochs; both are fully drained by each commit.
        let mut traces: Vec<VecDeque<(Vec<Action>, Vec<NodeEvent>)>> =
            (0..n).map(|_| VecDeque::new()).collect();
        let mut replay: BinaryHeap<Pending<CommitEv>> = BinaryHeap::new();
        let mut engaged = vec![false; shards];

        loop {
            // The rump of the old serial drain: find the epoch start t0
            // over the cached FEL heads and mailbox minima, and mark the
            // shards with work before epoch_end as engaged.
            let scan_start = Instant::now();
            let mut t0: Option<SimTime> = None;
            for s in 0..shards {
                for cand in [peeks[s], mail_min[s]].into_iter().flatten() {
                    if t0.is_none_or(|t| cand < t) {
                        t0 = Some(cand);
                    }
                }
            }
            let Some(t0) = t0 else { break };
            let epoch_end = t0 + lookahead;
            for s in 0..shards {
                engaged[s] = peeks[s].is_some_and(|p| p < epoch_end)
                    || mail_min[s].is_some_and(|m| m < epoch_end);
            }
            timings.drain_secs += scan_start.elapsed().as_secs_f64();

            // Phase A: every engaged shard files its mail, drains its FEL
            // and runs its handlers — on the pool, or inline when the
            // predictor says the epoch is too small to pay for a wake.
            let epoch_start = Instant::now();
            let inline_phase_a = predicted_ops < PHASE_A_PAR_MIN_OPS;
            if inline_phase_a {
                timings.inline_phase_a_epochs += 1;
                for s in 0..shards {
                    if !engaged[s] {
                        continue;
                    }
                    let mail = std::mem::take(&mut mailboxes[s]);
                    let mut slot = slots[s].lock().expect("slot mutex poisoned");
                    run_shard_epoch(&ctx, &mut slot, mail, epoch_end);
                }
            } else {
                for (s, slot) in slots.iter().enumerate() {
                    if !engaged[s] {
                        continue;
                    }
                    let mail = std::mem::take(&mut mailboxes[s]);
                    scope.spawn(move || {
                        let mut slot = slot.lock().expect("slot mutex poisoned");
                        run_shard_epoch(&ctx, &mut slot, mail, epoch_end);
                    });
                }
                scope.wait();
            }
            // Collect in shard order: seed the walk's replay heap with
            // the index rows (real (time, id) keys), group traces per
            // node (a shard reports its nodes' traces in execution order,
            // so per-node FIFO order is preserved), refresh the cached
            // FEL heads, and retire the delivered mailboxes.
            let mut epoch_drained = 0usize;
            for s in 0..shards {
                if !engaged[s] {
                    continue;
                }
                let mut slot = slots[s].lock().expect("slot mutex poisoned");
                let out = slot
                    .out
                    .take()
                    .expect("engaged shard parked an epoch output");
                peeks[s] = out.next_peek;
                mail_min[s] = None;
                epoch_drained += out.index.len();
                for (at, key, item) in out.index {
                    replay.push(Pending { at, key, item });
                }
                for (node, actions, events) in out.trace {
                    traces[node.index()].push_back((actions, events));
                }
            }
            debug_assert!(epoch_drained > 0, "an epoch always drains its t0 event");
            live_pending -= epoch_drained as u64;
            predicted_ops = epoch_drained;
            timings.phase_a_secs += epoch_start.elapsed().as_secs_f64();
            let walk_start = Instant::now();

            // Phase B — the serial walk: replay the epoch in global
            // (time, id) order, applying only the order-dependent side
            // effects (clock, delivered count, real id allocation in
            // exactly serial order, activity clock) and binning each
            // event's recorded actions onto its destination's commit
            // stream.
            let delivered_base = net.sched.delivered_count();
            let mut stream_ops: Vec<Vec<ApplyOp>> = (0..streams).map(|_| Vec::new()).collect();
            let mut total_ops = 0usize;
            let mut plan_idx: u32 = 0;
            let mut popped: u64 = 0;
            let mut t_last = t0;
            let mut activity_at: Option<SimTime> = None;
            while let Some(Pending {
                at: t,
                item: CommitEv { node, kind, dest },
                ..
            }) = replay.pop()
            {
                popped += 1;
                t_last = t;
                if debug_pump && (delivered_base + popped).is_multiple_of(1_000_000) {
                    // The central FEL is empty while sharded; the pending
                    // count is what sits in shard FELs and mailboxes.
                    eprintln!(
                        "[pump] events={} simtime={t} pending={live_pending}",
                        delivered_base + popped,
                    );
                }
                let handled = match kind {
                    CommitKind::Activity | CommitKind::Timer | CommitKind::Silent => {
                        alive[node.index()]
                    }
                    CommitKind::PeerUp { peer } => ctx.session_alive(node, peer),
                };
                if !handled {
                    continue;
                }
                let (actions, events) = traces[node.index()]
                    .pop_front()
                    .expect("worker trace aligns with commit order");
                let mut activity = match kind {
                    CommitKind::Activity | CommitKind::PeerUp { .. } => true,
                    CommitKind::Timer => !actions.is_empty(),
                    CommitKind::Silent => false,
                };
                // Allocate this op's real ids in serial action order; the
                // commit stream re-derives them from id_base by replaying
                // the same rule.
                let mut id_base = 0u64;
                let mut id_seen = false;
                for action in &actions {
                    if let Action::Send { to, .. } = action {
                        activity = true;
                        // Sends to dead routers bump counters but never
                        // reach the scheduler — no id in serial either.
                        if alive[to.index()] {
                            let id = net.sched.alloc_id();
                            if !id_seen {
                                id_base = id.as_u64();
                                id_seen = true;
                            }
                        }
                    } else {
                        let at2 = follow_at(t, action);
                        let id = net.sched.alloc_id();
                        if !id_seen {
                            id_base = id.as_u64();
                            id_seen = true;
                        }
                        if at2 < epoch_end {
                            // Already executed on the worker; keep
                            // replaying under its real id.
                            let (kind2, dest2) = follow_commit(node, action);
                            replay.push(Pending {
                                at: at2,
                                key: id.as_u64(),
                                item: CommitEv {
                                    node,
                                    kind: kind2,
                                    dest: dest2,
                                },
                            });
                        }
                    }
                }
                if activity {
                    activity_at = Some(t);
                }
                if !actions.is_empty() || !events.is_empty() {
                    stream_ops[stream_of(dest, streams)].push(ApplyOp {
                        plan_idx,
                        t,
                        node,
                        id_base,
                        actions,
                        events,
                    });
                    total_ops += 1;
                }
                plan_idx += 1;
            }
            net.sched.mark_delivered_many(t_last, popped);
            if let Some(t) = activity_at {
                net.last_activity = t;
            }
            timings.phase_b_secs += walk_start.elapsed().as_secs_f64();
            let merge_start = Instant::now();

            // Apply the commit streams — on the worker pool when the
            // epoch is large enough to pay for the wake, inline
            // otherwise. Outputs are identical either way.
            let parallel = streams > 1 && total_ops >= COMMIT_PAR_MIN_OPS;
            let outs: Vec<ApplyOut> = if parallel {
                timings.parallel_commit_epochs += 1;
                for (k, ops) in stream_ops.into_iter().enumerate() {
                    if ops.is_empty() {
                        continue;
                    }
                    let out_slot = &commit_outs[k];
                    let alive = &alive;
                    let shard_of = &shard_of;
                    scope.spawn(move || {
                        let out = apply_ops(alive, shard_of, shards, link_delay, epoch_end, ops);
                        *out_slot.lock().expect("commit slot mutex poisoned") = Some(out);
                    });
                }
                scope.wait();
                commit_outs
                    .iter()
                    .map(|slot| {
                        slot.lock()
                            .expect("commit slot mutex poisoned")
                            .take()
                            .unwrap_or_else(|| ApplyOut::empty(shards))
                    })
                    .collect()
            } else {
                stream_ops
                    .into_iter()
                    .map(|ops| apply_ops(&alive, &shard_of, shards, link_delay, epoch_end, ops))
                    .collect()
            };

            // Deterministic merge. Counters are order-independent sums;
            // trace events go out in plan (= commit) order.
            let mut trace_iters = Vec::with_capacity(outs.len());
            let mut mails = Vec::with_capacity(outs.len());
            for out in outs {
                net.announcements += out.announcements;
                net.withdrawals += out.withdrawals;
                trace_iters.push(out.traced.into_iter().peekable());
                mails.push((out.mail, out.mail_min));
            }
            if !net.trace.is_off() {
                loop {
                    let mut best: Option<(u32, usize)> = None;
                    for (s, it) in trace_iters.iter_mut().enumerate() {
                        if let Some(&(idx, ..)) = it.peek() {
                            if best.is_none_or(|(b, _)| idx < b) {
                                best = Some((idx, s));
                            }
                        }
                    }
                    let Some((_, s)) = best else { break };
                    let (_, t, node, events) = trace_iters[s].next().expect("peeked entry exists");
                    for ev in events {
                        net.trace.record(t, node, ev);
                    }
                }
            }
            timings.merge_secs += merge_start.elapsed().as_secs_f64();

            // Mailbox exchange: route each stream's per-destination-shard
            // chunks into the destination mailboxes, stream-major. The
            // (stream, then id-ascending-within-chunk) order is fixed, so
            // the events a shard files next epoch arrive in a
            // deterministic sequence — and the walk's replay heap orders
            // them globally by (time, id) regardless. This replaces PR
            // 6's serial k-way `insert_allocated` merge into the central
            // FEL.
            let exchange_start = Instant::now();
            for (mail, mins) in mails {
                for (s, chunk) in mail.into_iter().enumerate() {
                    if chunk.is_empty() {
                        continue;
                    }
                    let m = mins[s].expect("non-empty mail chunk has a min time");
                    if mail_min[s].is_none_or(|cur| m < cur) {
                        mail_min[s] = Some(m);
                    }
                    live_pending += chunk.len() as u64;
                    mailboxes[s].push(chunk);
                }
            }
            timings.mailbox_exchange_secs += exchange_start.elapsed().as_secs_f64();
            timings.epochs += 1;
            debug_assert!(
                traces.iter().all(VecDeque::is_empty),
                "every recorded trace was consumed"
            );
        }
    });

    // Quiescent: every shard FEL and mailbox drained; reassemble the
    // node vec from the slots.
    debug_assert_eq!(live_pending, 0, "pump ends with no pending events");
    let mut nodes: Vec<Option<BgpNode>> = Vec::with_capacity(n);
    for slot in slots {
        let slot = slot.into_inner().expect("slot mutex poisoned");
        debug_assert!(
            slot.fel.is_empty() && slot.local.is_empty(),
            "shard FEL drained at quiescence"
        );
        nodes.extend(slot.nodes);
    }
    net.nodes = nodes;
    net.shard_timings.add(&timings);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, SimConfig};
    use crate::scheme::Scheme;
    use bgpsim_topology::degree::SkewedSpec;
    use bgpsim_topology::generators::skewed_topology;
    use bgpsim_topology::region::FailureSpec;
    use bgpsim_topology::{AsId, Point, Router, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_topo(seed: u64, n: usize) -> Topology {
        let mut rng = SmallRng::seed_from_u64(seed);
        skewed_topology(n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
    }

    /// Full failure experiment under a given shard count, with the
    /// parallel commit forced on (one stream per shard) so every sharded
    /// test exercises the destination-partitioned path even on one core.
    fn run_with_shards(shards: usize) -> (crate::RunStats, Network) {
        let topo = small_topo(42, 30);
        let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
        cfg.shards = Some(shards);
        cfg.commit_streams = Some(shards);
        let mut net = Network::new(topo, cfg);
        let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
        (stats, net)
    }

    fn assert_networks_identical(a: &Network, b: &Network, what: &str) {
        assert_eq!(a.now(), b.now(), "{what}: clock diverged");
        assert_eq!(
            a.sched.delivered_count(),
            b.sched.delivered_count(),
            "{what}: delivered count diverged"
        );
        assert_eq!(
            a.sched.scheduled_count(),
            b.sched.scheduled_count(),
            "{what}: scheduled count diverged"
        );
        for r in a.topology().router_ids() {
            match (a.node(r), b.node(r)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.loc_rib(), y.loc_rib(), "{what}: Loc-RIB of {r} diverged");
                    assert_eq!(x.stats(), y.stats(), "{what}: node stats of {r} diverged");
                }
                _ => panic!("{what}: aliveness of {r} diverged"),
            }
        }
    }

    #[test]
    fn sharded_matches_serial_across_shard_counts() {
        let (serial_stats, serial_net) = run_with_shards(1);
        for shards in [2, 3, 7] {
            let (stats, net) = run_with_shards(shards);
            assert_eq!(stats, serial_stats, "RunStats diverged at {shards} shards");
            assert_networks_identical(&net, &serial_net, &format!("{shards} shards"));
        }
    }

    #[test]
    fn parallel_commit_path_runs_and_matches_inline() {
        // Same workload, same shard count, different stream counts — the
        // commit-stream knob must be invisible in every observable, and
        // the multi-stream run must actually take the worker-pool path.
        let run = |streams: usize| {
            let topo = small_topo(42, 30);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
            cfg.shards = Some(4);
            cfg.commit_streams = Some(streams);
            let mut net = Network::new(topo, cfg);
            let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
            (stats, net)
        };
        let (inline_stats, inline_net) = run(1);
        assert_eq!(
            inline_net.shard_phase_timings().parallel_commit_epochs,
            0,
            "one stream must apply inline"
        );
        for streams in [2, 4] {
            let (stats, net) = run(streams);
            assert_eq!(
                stats, inline_stats,
                "RunStats diverged at {streams} streams"
            );
            assert_networks_identical(&net, &inline_net, &format!("{streams} streams"));
            let t = net.shard_phase_timings();
            assert!(
                t.parallel_commit_epochs > 0,
                "{streams} streams: no epoch took the parallel commit path"
            );
            assert!(t.epochs >= t.parallel_commit_epochs);
            assert!(t.total_secs() > 0.0, "phase timings were accumulated");
            // The serial remainder phases are measured, not just the big
            // parallel ones: partition/t0 scan and the mailbox exchange
            // both ran on every epoch of a multi-epoch convergence.
            assert!(t.drain_secs > 0.0, "drain/partition phase was timed");
            assert!(
                t.mailbox_exchange_secs > 0.0,
                "mailbox exchange phase was timed"
            );
            let f = t.serial_fraction();
            assert!((0.0..1.0).contains(&f), "serial fraction {f} out of range");
        }
    }

    #[test]
    fn epoch_boundary_deliveries_match_serial() {
        // Regression: with a zero origination window, every message lands
        // exactly on an epoch boundary (t0 + link_delay == epoch_end), the
        // half-open-window edge case — it must be queued into the next
        // epoch and delivered in serial order, including the event-id
        // tie-break between same-instant deliveries from different peers.
        let build = |shards: usize| {
            let routers = (0..4)
                .map(|i| Router {
                    as_id: AsId::new(i),
                    pos: Point::new(i as f64, 0.0),
                })
                .collect();
            // A diamond 0–{1,2}–3: router 3 hears every prefix from both 1
            // and 2 at the same instant.
            let topo = Topology::new(
                routers,
                vec![
                    (RouterId::new(0), RouterId::new(1)),
                    (RouterId::new(0), RouterId::new(2)),
                    (RouterId::new(1), RouterId::new(3)),
                    (RouterId::new(2), RouterId::new(3)),
                ],
            )
            .unwrap();
            let mut cfg = SimConfig::new(99);
            cfg.origination_window = SimDuration::ZERO;
            cfg.shards = Some(shards);
            cfg.commit_streams = Some(shards);
            Network::new(topo, cfg)
        };
        let mut serial = build(1);
        serial.run_initial_convergence();
        for shards in [2, 4] {
            let mut net = build(shards);
            net.run_initial_convergence();
            assert_networks_identical(&net, &serial, &format!("{shards} shards"));
        }
    }

    #[test]
    fn link_failure_and_revival_match_serial() {
        // Covers the PeerDown/PeerUp commit arms: fail a link, quiesce,
        // then revive a router region.
        let run = |shards: usize| {
            let topo = small_topo(7, 24);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 31);
            cfg.shards = Some(shards);
            cfg.commit_streams = Some(shards);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            let edges: Vec<_> = net.topology().edges()[..3].to_vec();
            net.inject_link_failure(&edges);
            let s1 = net.run_to_quiescence();
            let failed = net.inject_failure(&FailureSpec::CenterFraction(0.10));
            let s2 = net.run_to_quiescence();
            net.revive_routers(&failed);
            let s3 = net.run_to_quiescence();
            (s1, s2, s3, net)
        };
        let (a1, a2, a3, serial) = run(1);
        let (b1, b2, b3, sharded) = run(3);
        assert_eq!(a1, b1, "link-failure stats diverged");
        assert_eq!(a2, b2, "region-failure stats diverged");
        assert_eq!(a3, b3, "revival stats diverged");
        assert_networks_identical(&sharded, &serial, "3 shards");
    }

    #[test]
    fn traces_byte_identical_across_shard_counts() {
        // The tentpole claim of the trace layer: the JSONL byte stream is
        // a pure function of the simulation, independent of both the
        // shard count and the commit-stream count.
        let run = |shards: usize, streams: usize| {
            let topo = small_topo(42, 30);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
            cfg.shards = Some(shards);
            cfg.commit_streams = Some(streams);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            net.inject_failure(&FailureSpec::CenterFraction(0.10));
            net.set_trace_sink(crate::trace::TraceSink::memory(1 << 22));
            let stats = net.run_to_quiescence();
            let events = net.take_trace_events();
            assert!(!events.is_empty(), "re-convergence must record events");
            (stats, crate::trace::to_jsonl(&events))
        };
        let (serial_stats, serial_jsonl) = run(1, 1);
        for (shards, streams) in [(2, 1), (2, 2), (3, 3), (4, 2)] {
            let (stats, jsonl) = run(shards, streams);
            assert_eq!(
                stats, serial_stats,
                "RunStats diverged at {shards} shards / {streams} streams"
            );
            assert_eq!(
                jsonl, serial_jsonl,
                "trace bytes diverged at {shards} shards / {streams} streams"
            );
        }
    }

    #[test]
    fn small_epochs_run_phase_a_inline() {
        // The origination trickle and the post-storm tail both produce
        // epochs with a handful of events — those must take the inline
        // path, and bigger epochs must still reach the worker pool. The
        // identity of the two paths is pinned by every other test in this
        // module (they all run epochs on both sides of the threshold).
        let (_, net) = run_with_shards(2);
        let t = net.shard_phase_timings();
        assert!(
            t.inline_phase_a_epochs > 0,
            "no epoch was small enough for the inline Phase A path"
        );
        assert!(
            t.inline_phase_a_epochs < t.epochs,
            "no epoch was big enough for the worker-pool path"
        );
    }

    #[test]
    fn shard_count_resolution() {
        let topo = small_topo(1, 10);
        let mut cfg = SimConfig::new(1);
        cfg.shards = Some(4);
        assert_eq!(Network::new(topo, cfg).shard_count(), 4);
    }

    #[test]
    fn commit_dest_is_prefix_major() {
        use bgpsim_bgp::msg::Prefix;
        let r = RouterId::new(3);
        let p = Prefix::new(9);
        assert_eq!(
            commit_dest(&Ev::Originate { node: r, prefix: p }),
            9,
            "originations key by prefix"
        );
        assert_eq!(commit_dest(&Ev::ProcDone { node: r }), 3, "no prefix: node");
        assert_eq!(
            commit_dest(&Ev::MraiExpiry {
                node: r,
                peer: RouterId::new(1),
                prefix: Some(p),
                gen: 0
            }),
            9
        );
        assert_eq!(
            commit_dest(&Ev::MraiExpiry {
                node: r,
                peer: RouterId::new(1),
                prefix: None,
                gen: 0
            }),
            3,
            "per-peer MRAI keys by node"
        );
    }

    #[test]
    fn stream_binning_balances_strided_dests() {
        // Full-table bursts withdraw prefixes at a fixed stride (the per-AS
        // block size). `dest % streams` aliases whenever the stride shares a
        // factor with the stream count — e.g. stride 8 into 4 streams puts
        // *every* op in one stream. The mix must keep occupancy roughly
        // uniform for strides and stream counts with common factors.
        for &(stride, streams) in &[(8u32, 4usize), (6, 3), (10, 5), (4, 8), (37, 37)] {
            let n = 4096u32;
            let mut occ = vec![0usize; streams];
            for i in 0..n {
                occ[stream_of(i * stride, streams)] += 1;
            }
            let ideal = n as usize / streams;
            let max = *occ.iter().max().unwrap();
            let min = *occ.iter().min().unwrap();
            assert!(
                max <= ideal * 2 && min >= ideal / 2,
                "stride {stride} into {streams} streams skewed: {occ:?}"
            );
        }
    }

    #[test]
    fn stream_binning_is_total_and_stable() {
        // Every dest maps into range, and the mapping is a pure function
        // (determinism depends on it being input-only).
        for streams in 1..=7usize {
            for dest in (0..200u32).chain([u32::MAX - 3, u32::MAX]) {
                let s = stream_of(dest, streams);
                assert!(s < streams);
                assert_eq!(s, stream_of(dest, streams));
            }
        }
    }
}
