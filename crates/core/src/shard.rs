//! The sharded deterministic event loop — conservative PDES with
//! link-delay lookahead and a destination-partitioned parallel commit.
//!
//! Every inter-node interaction in this model crosses a link with a fixed
//! one-way delay (`SimConfig::link_delay`, the paper's 25 ms), so an event
//! executed at time `t` can only create events at *other* nodes at
//! `t + link_delay` or later. That delay is the classic conservative-PDES
//! *lookahead*: all events inside a half-open window
//! `[t0, t0 + link_delay)` that touch different nodes are causally
//! independent and may run concurrently.
//!
//! The loop therefore runs in synchronous epochs of four stages:
//!
//! 1. **Drain.** Pop every pending event strictly before
//!    `epoch_end = t0 + link_delay` from the global future-event list
//!    (`t0` = earliest pending time), keeping each event's real
//!    `(time, id)` key.
//! 2. **Execute (parallel, Phase A).** Partition the drained events by
//!    owning router onto N shard workers. Each worker runs its routers'
//!    handlers in local `(time, key)` order, feeding handler-created
//!    *same-node* events that land inside the epoch (ProcDone, MRAI/reuse
//!    expiries) back into its local heap with keys above
//!    [`LOCAL_KEY_BASE`], and records one action trace per handled event.
//!    Cross-node sends always land at `t + link_delay >= epoch_end`, i.e.
//!    outside the epoch — the lookahead argument — so workers never need
//!    to talk to each other.
//! 3. **Walk (serial, Phase B).** Replay the epoch's events in global
//!    `(time, id)` order — but apply only the side effects that *need*
//!    the order: advance the clock and delivered count, consume the
//!    matching recorded trace, allocate *real* event ids for every action
//!    in exactly the order a serial run would, track the activity clock,
//!    and bin each event's recorded actions into per-destination commit
//!    streams (keyed by the BGP prefix the event concerns; destinations
//!    are causally independent within an epoch). The walk touches no
//!    message payloads — it is the irreducible serial fraction.
//! 4. **Apply + merge (parallel, then serial).** Each commit stream
//!    independently expands its binned actions into scheduler entries
//!    (`Deliver` at `t + link_delay`, cross-epoch timer expiries) under
//!    the pre-allocated ids, bumps private message counters, and collects
//!    its trace events. Streams run on the Phase A workers when the epoch
//!    is large enough to pay for the channel hop, inline otherwise — the
//!    outputs are identical either way. A deterministic merge then sums
//!    the counters, inserts the entries into the future-event list in
//!    global id order, and emits trace events in commit order.
//!
//! ## Why this is bit-identical to the serial loop
//!
//! The serial engine delivers in `(time, id)` order, where ids are a
//! global insertion counter; ids are the tie-break for same-instant
//! events, so reproducing serial behavior means reproducing exact id
//! assignment, not just timestamps.
//!
//! *Per-node order.* For one router, a worker's `(time, key)` order
//! equals the serial `(time, id)` order: drained events carry their real
//! ids in both; intra-epoch self-events sort after every drained event at
//! the same instant in both (worker keys start at [`LOCAL_KEY_BASE`],
//! real ids of intra-epoch creations exceed every pre-epoch id); and two
//! self-events of the same node tie-break by creation order in both.
//! Handler inputs are thus identical event-by-event, and node state
//! (including the node's private RNG stream) evolves identically.
//!
//! *Cross-node order.* Routers share no mutable state during an epoch —
//! aliveness, dead links, sessions, topology, and policy tiers are all
//! frozen while the queue drains — so cross-node interleaving inside an
//! epoch is unobservable to the nodes. Every *global* side effect is
//! either applied by the serial walk in serial order (clock, delivered
//! count, id allocation, activity clock) or is order-independent and
//! reconciled by the merge (counter sums, scheduler inserts under
//! pre-assigned `(time, id)` keys — delivery order is a pure function of
//! those keys, not of insertion order; trace emission, restored to commit
//! order by the plan-index merge). The scheduler state at every epoch
//! boundary is therefore byte-identical to a serial run's, which carries
//! the invariant into the next epoch — and makes `RunStats`, goldens,
//! warm-start snapshots and trace streams independent of both the shard
//! count and the commit-stream count.
//!
//! *Why destinations.* A BGP update concerns exactly one prefix, and
//! within an epoch the actions recorded for different prefixes never
//! read each other's state — the per-destination logical queues of the
//! batching scheme make the same independence explicit at the node
//! level. Binning by destination therefore yields streams whose applies
//! commute; events with no prefix (ProcDone, PeerDown/Up, per-peer MRAI)
//! bin by owning router instead, which is equally order-free at this
//! stage because *all* ordered effects already happened in the walk.
//!
//! *Mailbox merge rule.* Cross-shard (= cross-node) messages surface in
//! the walk's replay heap and the global scheduler, both ordered by
//! `(time, id)` — the deterministic merge the mailboxes need. An event
//! landing exactly on an epoch boundary is *not* drained (the window is
//! half-open) and is delivered at the start of the next epoch, exactly
//! where the serial order puts it.
//!
//! The loop falls back to serial for `shards <= 1`, zero link delay (no
//! lookahead), and sampling runs (samples read global state mid-epoch).

use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use bgpsim_bgp::node::Action;
use bgpsim_bgp::policy::relationship_by_tier;
use bgpsim_bgp::trace::NodeEvent;
use bgpsim_bgp::BgpNode;
use bgpsim_des::{EventId, SimDuration, SimTime};
use bgpsim_topology::{RouterId, Topology};

use crate::network::{link_key, Ev, Network};

/// Worker-local sort keys for intra-epoch self-events start here — above
/// any real event id, so a drained event always outranks a same-instant
/// self-event, exactly like real id assignment would order them.
const LOCAL_KEY_BASE: u64 = 1 << 63;

/// Epochs with fewer committed ops than this apply their commit streams
/// inline: the mpsc round trip to the workers costs more than the work.
/// Deliberately low so modest test topologies still exercise the parallel
/// path; the outputs are identical either way.
const COMMIT_PAR_MIN_OPS: usize = 16;

/// Epochs with fewer drained events than this run Phase A on the
/// coordinator thread instead of the worker pool — the per-epoch channel
/// handoff plus barrier costs more than executing a handful of handlers
/// directly. Mirrors [`COMMIT_PAR_MIN_OPS`], and like it is deliberately
/// low so modest test topologies still exercise the fan-out path; the
/// outputs are identical either way (the shared [`run_epoch_batch`] body
/// runs under the same per-shard order on either thread).
const PHASE_A_PAR_MIN_OPS: usize = 16;

/// Cumulative wall-clock the sharded event loop spent per stage, exposed
/// through [`Network::shard_phase_timings`]. Instrumentation only — never
/// part of `RunStats`, so bit-identity comparisons are unaffected.
///
/// The Amdahl read: `phase_b_secs` (the serial walk) plus the serial
/// remainder of `merge_secs` bound the speedup shards can buy;
/// `phase_a_secs` and the parallel part of `merge_secs` scale with cores.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardPhaseTimings {
    /// Epochs the loop ran.
    pub epochs: u64,
    /// Epochs whose commit streams ran on the worker pool (the rest
    /// applied inline — too few ops, or one stream configured).
    pub parallel_commit_epochs: u64,
    /// Epochs whose Phase A ran on the coordinator thread (fewer drained
    /// events than [`PHASE_A_PAR_MIN_OPS`] — the handoff would cost more
    /// than the handlers).
    pub inline_phase_a_epochs: u64,
    /// Drain + fan-out + parallel node execution + barrier (Phase A).
    pub phase_a_secs: f64,
    /// The serial order walk: id allocation, delivery accounting,
    /// activity clock, commit-stream binning (Phase B).
    pub phase_b_secs: f64,
    /// Commit-stream apply (parallel or inline) + deterministic merge:
    /// counter sums, id-ordered scheduler inserts, trace emission.
    pub merge_secs: f64,
}

impl ShardPhaseTimings {
    /// Accumulates another timing block into this one.
    pub(crate) fn add(&mut self, other: &ShardPhaseTimings) {
        self.epochs += other.epochs;
        self.parallel_commit_epochs += other.parallel_commit_epochs;
        self.inline_phase_a_epochs += other.inline_phase_a_epochs;
        self.phase_a_secs += other.phase_a_secs;
        self.phase_b_secs += other.phase_b_secs;
        self.merge_secs += other.merge_secs;
    }

    /// Total instrumented wall-clock across all stages.
    pub fn total_secs(&self) -> f64 {
        self.phase_a_secs + self.phase_b_secs + self.merge_secs
    }
}

/// Min-heap entry ordered by `(at, key)`.
struct Pending<T> {
    at: SimTime,
    key: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.key) == (other.at, other.key)
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// What the walk must do for one replayed event — a compact stand-in for
/// the event that avoids cloning message payloads.
#[derive(Clone, Copy)]
enum CommitKind {
    /// Originate / Deliver / ProcDone: handled iff the node is alive;
    /// marks activity whenever handled.
    Activity,
    /// MraiExpiry / ReuseExpiry: handled iff alive; marks activity only
    /// when the handler produced actions.
    Timer,
    /// PeerDown: handled iff alive; never marks activity by itself.
    Silent,
    /// PeerUp: handled iff the session to `peer` is up; marks activity.
    PeerUp {
        /// The session peer being (re-)established.
        peer: RouterId,
    },
}

/// One walk replay entry.
struct CommitEv {
    node: RouterId,
    kind: CommitKind,
    /// Destination key binning this event's actions onto a commit stream:
    /// the prefix the event concerns, or the owning router for events
    /// with no prefix. Any deterministic mapping preserves bit-identity;
    /// prefix-major is what makes the streams load-balance.
    dest: u32,
}

/// The router whose handler an event invokes.
fn owner(ev: &Ev) -> RouterId {
    match ev {
        Ev::Originate { node, .. }
        | Ev::ProcDone { node }
        | Ev::MraiExpiry { node, .. }
        | Ev::PeerDown { node, .. }
        | Ev::PeerUp { node, .. }
        | Ev::ReuseExpiry { node, .. } => *node,
        Ev::Deliver { to, .. } => *to,
    }
}

/// The walk semantics of an event (mirrors `Network::handle`).
fn commit_kind(ev: &Ev) -> CommitKind {
    match ev {
        Ev::Originate { .. } | Ev::Deliver { .. } | Ev::ProcDone { .. } => CommitKind::Activity,
        Ev::MraiExpiry { .. } | Ev::ReuseExpiry { .. } => CommitKind::Timer,
        Ev::PeerDown { .. } => CommitKind::Silent,
        Ev::PeerUp { peer, .. } => CommitKind::PeerUp { peer: *peer },
    }
}

/// The destination stream key of an event: its prefix where it has one,
/// its owning router otherwise.
fn commit_dest(ev: &Ev) -> u32 {
    match ev {
        Ev::Originate { prefix, .. } => prefix.index() as u32,
        Ev::Deliver { msg, .. } => msg.prefix.index() as u32,
        Ev::ReuseExpiry { prefix, .. } => prefix.index() as u32,
        Ev::MraiExpiry { node, prefix, .. } => {
            prefix.map_or(node.index() as u32, |p| p.index() as u32)
        }
        Ev::ProcDone { node } | Ev::PeerDown { node, .. } | Ev::PeerUp { node, .. } => {
            node.index() as u32
        }
    }
}

/// The same-node follow-up event an action asks the driver to schedule
/// (`None` for sends, which cross a link and leave the epoch).
fn follow_up(origin: RouterId, t: SimTime, action: &Action) -> Option<(SimTime, Ev)> {
    match action {
        Action::Send { .. } => None,
        Action::StartProcessing { duration } => {
            Some((t + *duration, Ev::ProcDone { node: origin }))
        }
        Action::StartMrai {
            peer,
            prefix,
            delay,
            gen,
        } => Some((
            t + *delay,
            Ev::MraiExpiry {
                node: origin,
                peer: *peer,
                prefix: *prefix,
                gen: *gen,
            },
        )),
        Action::StartReuse {
            peer,
            prefix,
            delay,
            gen,
        } => Some((
            t + *delay,
            Ev::ReuseExpiry {
                node: origin,
                peer: *peer,
                prefix: *prefix,
                gen: *gen,
            },
        )),
    }
}

/// When a non-send action's follow-up event fires — `follow_up` without
/// building the event, for the walk's intra-epoch test.
fn follow_at(t: SimTime, action: &Action) -> SimTime {
    match action {
        Action::StartProcessing { duration } => t + *duration,
        Action::StartMrai { delay, .. } | Action::StartReuse { delay, .. } => t + *delay,
        Action::Send { .. } => unreachable!("sends have no same-node follow-up"),
    }
}

/// Walk semantics and destination key of a non-send action's follow-up.
fn follow_commit(origin: RouterId, action: &Action) -> (CommitKind, u32) {
    match action {
        Action::StartProcessing { .. } => (CommitKind::Activity, origin.index() as u32),
        Action::StartMrai { prefix, .. } => (
            CommitKind::Timer,
            prefix.map_or(origin.index() as u32, |p| p.index() as u32),
        ),
        Action::StartReuse { prefix, .. } => (CommitKind::Timer, prefix.index() as u32),
        Action::Send { .. } => unreachable!("sends have no same-node follow-up"),
    }
}

/// Read-only world state shared by every shard worker. Everything here is
/// frozen while the queue drains, which is what makes the parallel phases
/// safe.
#[derive(Clone, Copy)]
struct ShardCtx<'a> {
    topo: &'a Topology,
    policy: bool,
    tiers: Option<&'a [usize]>,
    alive: &'a [bool],
    dead_links: &'a HashSet<(u32, u32)>,
}

impl ShardCtx<'_> {
    fn session_alive(&self, a: RouterId, b: RouterId) -> bool {
        self.alive[a.index()] && self.alive[b.index()] && !self.dead_links.contains(&link_key(a, b))
    }
}

/// Runs one event's node handler, mirroring the dispatch arms of
/// `Network::handle` without any of their global side effects. Returns
/// `None` when the serial engine would have dropped the event (dead node
/// or dead session).
fn dispatch(
    ctx: &ShardCtx<'_>,
    nodes: &mut [Option<BgpNode>],
    base: usize,
    t: SimTime,
    ev: Ev,
) -> Option<(RouterId, Vec<Action>)> {
    match ev {
        Ev::Originate { node, prefix } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.originate(t, prefix)))
        }
        Ev::Deliver { to, from, msg } => {
            let n = nodes[to.index() - base].as_mut()?;
            Some((to, n.on_update(t, from, msg)))
        }
        Ev::ProcDone { node } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_proc_done(t)))
        }
        Ev::MraiExpiry {
            node,
            peer,
            prefix,
            gen,
        } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_mrai_expiry(t, peer, prefix, gen)))
        }
        Ev::PeerDown { node, peer } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_peer_down(t, peer)))
        }
        Ev::ReuseExpiry {
            node,
            peer,
            prefix,
            gen,
        } => {
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_reuse_expiry(t, peer, prefix, gen)))
        }
        Ev::PeerUp { node, peer } => {
            if !ctx.session_alive(node, peer) {
                return None;
            }
            let ibgp = !ctx.topo.is_inter_as(node, peer);
            let rel = if ctx.policy && !ibgp {
                let tiers = ctx.tiers.expect("policy runs carry tiers");
                Some(relationship_by_tier(
                    tiers[ctx.topo.router(node).as_id.index()],
                    tiers[ctx.topo.router(peer).as_id.index()],
                ))
            } else {
                None
            };
            let n = nodes[node.index() - base].as_mut()?;
            Some((node, n.on_peer_up(t, peer, ibgp, rel)))
        }
    }
}

/// One epoch of work for a shard: the epoch's end bound plus the shard's
/// drained events as `(time, key, event)`.
type EpochBatch = (SimTime, Vec<(SimTime, u64, Ev)>);
/// A shard's Phase A reply: per event it handled, in its execution order,
/// the actions the handler returned and the trace events it buffered
/// (always empty with tracing off).
type EpochTrace = Vec<(RouterId, Vec<Action>, Vec<NodeEvent>)>;

/// One committed event's share of the epoch commit plan, produced by the
/// walk in global `(time, id)` order and consumed by a commit stream.
struct ApplyOp {
    /// Position in the walk's commit order — the key the merge uses to
    /// restore global trace order across streams.
    plan_idx: u32,
    /// Commit (delivery) time of the event.
    t: SimTime,
    /// The router whose handler produced the actions.
    node: RouterId,
    /// First event id the walk allocated for this op's actions; the
    /// stream re-derives per-action ids by replaying the walk's
    /// allocation rule (sends to dead routers consume no id).
    id_base: u64,
    /// The handler's recorded actions.
    actions: Vec<Action>,
    /// The handler's buffered trace events (empty with tracing off).
    events: Vec<NodeEvent>,
}

/// What one commit stream hands back to the merge.
#[derive(Default)]
struct ApplyOut {
    /// Scheduler entries under pre-allocated ids, id-ascending.
    entries: Vec<(SimTime, u64, Ev)>,
    /// Advertisements sent by this stream's ops.
    announcements: u64,
    /// Withdrawals sent by this stream's ops.
    withdrawals: u64,
    /// Trace events per op, `plan_idx`-ascending.
    traced: Vec<(u32, SimTime, RouterId, Vec<NodeEvent>)>,
}

/// Expands one commit stream's ops into scheduler entries, message
/// counters and trace batches. Pure with respect to global state: the
/// same inputs give the same outputs whether this runs inline or on a
/// worker, which is what makes the stream count a wall-clock-only knob.
fn apply_ops(
    alive: &[bool],
    link_delay: SimDuration,
    epoch_end: SimTime,
    ops: Vec<ApplyOp>,
) -> ApplyOut {
    let mut out = ApplyOut::default();
    for op in ops {
        if !op.events.is_empty() {
            out.traced.push((op.plan_idx, op.t, op.node, op.events));
        }
        // Re-derive the per-action ids the walk allocated: consecutive
        // from id_base, skipping sends to dead routers (the serial loop
        // never schedules those).
        let mut next_id = op.id_base;
        for action in op.actions {
            if let Action::Send { to, msg } = action {
                if msg.action.is_advertise() {
                    out.announcements += 1;
                } else {
                    out.withdrawals += 1;
                }
                // Messages towards failed routers are lost with the link.
                if alive[to.index()] {
                    let at2 = op.t + link_delay;
                    debug_assert!(at2 >= epoch_end, "send inside lookahead window");
                    out.entries.push((
                        at2,
                        next_id,
                        Ev::Deliver {
                            to,
                            from: op.node,
                            msg,
                        },
                    ));
                    next_id += 1;
                }
            } else {
                let (at2, ev2) = follow_up(op.node, op.t, &action).expect("non-send follows up");
                let id = next_id;
                next_id += 1;
                if at2 >= epoch_end {
                    // Cross-epoch follow-up: becomes a real scheduler
                    // entry. (Intra-epoch ones were replayed by the walk
                    // and never reach a stream.)
                    out.entries.push((at2, id, ev2));
                }
            }
        }
    }
    out
}

/// Work fanned out to a shard worker: a Phase A epoch batch, or a commit
/// stream to apply.
enum Work {
    Epoch(EpochBatch),
    Commit {
        epoch_end: SimTime,
        ops: Vec<ApplyOp>,
    },
}

/// A worker's reply, matching the `Work` variant it received.
enum Reply {
    Epoch(EpochTrace),
    Commit(ApplyOut),
}

/// Executes one shard's epoch batch: run the local `(time, key)` order to
/// exhaustion, feeding intra-epoch same-node follow-ups back into the
/// heap, and record one `(node, actions, trace)` entry per handled event
/// in execution order. This is the whole of Phase A for one shard —
/// shared verbatim by the worker loop and the coordinator's inline path
/// for small epochs, so the two paths cannot diverge. `local` must be
/// empty on entry; the loop leaves it empty again (every intra-epoch
/// follow-up fires before `epoch_end` by construction).
fn run_epoch_batch(
    ctx: &ShardCtx<'_>,
    base: usize,
    nodes: &mut [Option<BgpNode>],
    local: &mut BinaryHeap<Pending<Ev>>,
    epoch_end: SimTime,
    batch: Vec<(SimTime, u64, Ev)>,
) -> EpochTrace {
    let mut next_key = LOCAL_KEY_BASE;
    for (at, key, ev) in batch {
        local.push(Pending { at, key, item: ev });
    }
    let mut trace: EpochTrace = Vec::new();
    while let Some(Pending {
        at: t, item: ev, ..
    }) = local.pop()
    {
        let Some((node, actions)) = dispatch(ctx, nodes, base, t, ev) else {
            continue;
        };
        // The trace buffer the handler just filled travels with its
        // actions so the commit can emit it in global order.
        let events = nodes[node.index() - base]
            .as_mut()
            .map(BgpNode::take_trace)
            .unwrap_or_default();
        for action in &actions {
            if let Some((at2, ev2)) = follow_up(node, t, action) {
                if at2 < epoch_end {
                    local.push(Pending {
                        at: at2,
                        key: next_key,
                        item: ev2,
                    });
                    next_key += 1;
                }
            }
        }
        trace.push((node, actions, events));
    }
    trace
}

/// A shard worker's main loop: per epoch, execute the assigned batch and
/// send the action traces back; between epochs, apply any commit stream
/// the coordinator assigns. The node chunk lives behind a mutex so the
/// coordinator can run *small* epochs inline instead (see
/// [`PHASE_A_PAR_MIN_OPS`]); the lock is uncontended by construction —
/// the coordinator only touches a chunk in epochs where it sent that
/// worker no batch, and the reply barrier orders everything else. Exits
/// when the work channel hangs up.
fn run_worker(
    ctx: &ShardCtx<'_>,
    base: usize,
    nodes: &Mutex<Vec<Option<BgpNode>>>,
    link_delay: SimDuration,
    rx: &mpsc::Receiver<Work>,
    tx: &mpsc::Sender<Reply>,
) {
    let mut local: BinaryHeap<Pending<Ev>> = BinaryHeap::new();
    while let Ok(work) = rx.recv() {
        let reply = match work {
            Work::Epoch((epoch_end, batch)) => {
                let mut chunk = nodes.lock().expect("chunk mutex poisoned");
                Reply::Epoch(run_epoch_batch(
                    ctx, base, &mut chunk, &mut local, epoch_end, batch,
                ))
            }
            Work::Commit { epoch_end, ops } => {
                Reply::Commit(apply_ops(ctx.alive, link_delay, epoch_end, ops))
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// Drains the event queue with `net.shards` workers; externally
/// indistinguishable from `Network::pump`'s serial drain.
pub(crate) fn pump_sharded(net: &mut Network) {
    let debug_pump = std::env::var_os("BGPSIM_DEBUG_PUMP").is_some();
    let n = net.topo.num_routers();
    let shards = net.shards.min(n.max(1));
    let streams = net.commit_streams.clamp(1, shards);
    let lookahead = net.cfg.link_delay;
    debug_assert!(!lookahead.is_zero(), "sharded loop needs lookahead");

    // World state frozen for the duration of the pump.
    let alive: Vec<bool> = net.nodes.iter().map(Option::is_some).collect();
    let tiers: Option<Vec<usize>> = if net.cfg.policy {
        Some(net.policy_tier_vec())
    } else {
        None
    };
    let ctx = ShardCtx {
        topo: &net.topo,
        policy: net.cfg.policy,
        tiers: tiers.as_deref(),
        alive: &alive,
        dead_links: &net.dead_links,
    };

    // Contiguous block partition of routers onto shards.
    let bounds: Vec<usize> = (0..=shards).map(|s| s * n / shards).collect();
    let mut shard_of = vec![0usize; n];
    for s in 0..shards {
        for node in &mut shard_of[bounds[s]..bounds[s + 1]] {
            *node = s;
        }
    }
    // Each shard's router chunk sits behind a mutex shared between its
    // worker and the coordinator: big epochs run on the worker, small
    // epochs run inline on the coordinator (see `PHASE_A_PAR_MIN_OPS`),
    // and the epoch protocol guarantees only one side holds a chunk at a
    // time.
    let mut chunks: Vec<Arc<Mutex<Vec<Option<BgpNode>>>>> = Vec::with_capacity(shards);
    {
        let mut rest = std::mem::take(&mut net.nodes);
        for s in (0..shards).rev() {
            chunks.push(Arc::new(Mutex::new(rest.split_off(bounds[s]))));
        }
        chunks.reverse();
        debug_assert!(rest.is_empty());
    }

    let mut work_txs: Vec<mpsc::Sender<Work>> = Vec::with_capacity(shards);
    let mut reply_rxs: Vec<mpsc::Receiver<Reply>> = Vec::with_capacity(shards);
    let mut worker_ends: Vec<(mpsc::Receiver<Work>, mpsc::Sender<Reply>)> =
        Vec::with_capacity(shards);
    for _ in 0..shards {
        let (wtx, wrx) = mpsc::channel();
        let (ttx, trx) = mpsc::channel();
        work_txs.push(wtx);
        reply_rxs.push(trx);
        worker_ends.push((wrx, ttx));
    }

    let link_delay = net.cfg.link_delay;
    let mut timings = ShardPhaseTimings::default();
    let result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (s, (wrx, ttx)) in worker_ends.into_iter().enumerate() {
            let base = bounds[s];
            let chunk = Arc::clone(&chunks[s]);
            handles.push(scope.spawn(move |_| {
                run_worker(&ctx, base, &chunk, link_delay, &wrx, &ttx);
            }));
        }

        // Reused across epochs; both are fully drained by each commit.
        let mut traces: Vec<VecDeque<(Vec<Action>, Vec<NodeEvent>)>> =
            (0..n).map(|_| VecDeque::new()).collect();
        let mut replay: BinaryHeap<Pending<CommitEv>> = BinaryHeap::new();
        let mut engaged = vec![false; shards];
        // The coordinator's own epoch heap for the inline Phase A path
        // (workers each have theirs inside `run_worker`).
        let mut inline_heap: BinaryHeap<Pending<Ev>> = BinaryHeap::new();

        while let Some(t0) = net.sched.peek_time() {
            let epoch_start = Instant::now();
            let epoch_end = t0 + lookahead;
            let drained = net.sched.drain_until(epoch_end);
            debug_assert!(!drained.is_empty(), "peeked event must drain");

            // Fan the epoch's events out to their owners' shards, seeding
            // the walk's replay with their real (time, id) keys.
            let inline_phase_a = drained.len() < PHASE_A_PAR_MIN_OPS;
            let mut batches: Vec<Vec<(SimTime, u64, Ev)>> = vec![Vec::new(); shards];
            for (at, id, ev) in drained {
                let node = owner(&ev);
                let kind = commit_kind(&ev);
                let dest = commit_dest(&ev);
                let key = id.as_u64();
                debug_assert!(key < LOCAL_KEY_BASE);
                replay.push(Pending {
                    at,
                    key,
                    item: CommitEv { node, kind, dest },
                });
                batches[shard_of[node.index()]].push((at, key, ev));
            }
            if inline_phase_a {
                // Too few events to pay for the channel handoff: run each
                // touched shard's batch on this thread, in shard order.
                // Per-shard execution order — the only order the nodes can
                // observe — is identical to the fan-out path because both
                // call `run_epoch_batch`; the workers are idle, so the
                // chunk locks are free.
                timings.inline_phase_a_epochs += 1;
                for (s, batch) in batches.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    let mut chunk = chunks[s].lock().expect("chunk mutex poisoned");
                    let trace = run_epoch_batch(
                        &ctx,
                        bounds[s],
                        &mut chunk,
                        &mut inline_heap,
                        epoch_end,
                        batch,
                    );
                    for (node, actions, events) in trace {
                        traces[node.index()].push_back((actions, events));
                    }
                }
            } else {
                for (s, batch) in batches.into_iter().enumerate() {
                    engaged[s] = !batch.is_empty();
                    if engaged[s] {
                        work_txs[s]
                            .send(Work::Epoch((epoch_end, batch)))
                            .expect("shard worker alive");
                    }
                }
                // Barrier: collect every engaged shard's traces, grouped
                // per node (a shard reports its nodes' traces in execution
                // order, so per-node FIFO order is preserved).
                for s in 0..shards {
                    if !engaged[s] {
                        continue;
                    }
                    match reply_rxs[s].recv().expect("shard worker alive") {
                        Reply::Epoch(trace) => {
                            for (node, actions, events) in trace {
                                traces[node.index()].push_back((actions, events));
                            }
                        }
                        Reply::Commit(_) => unreachable!("protocol: epoch reply expected"),
                    }
                }
            }
            timings.phase_a_secs += epoch_start.elapsed().as_secs_f64();
            let walk_start = Instant::now();

            // Phase B — the serial walk: replay the epoch in global
            // (time, id) order, applying only the order-dependent side
            // effects (clock, delivered count, real id allocation in
            // exactly serial order, activity clock) and binning each
            // event's recorded actions onto its destination's commit
            // stream.
            let delivered_base = net.sched.delivered_count();
            let mut stream_ops: Vec<Vec<ApplyOp>> = (0..streams).map(|_| Vec::new()).collect();
            let mut total_ops = 0usize;
            let mut plan_idx: u32 = 0;
            let mut popped: u64 = 0;
            let mut t_last = t0;
            let mut activity_at: Option<SimTime> = None;
            while let Some(Pending {
                at: t,
                item: CommitEv { node, kind, dest },
                ..
            }) = replay.pop()
            {
                popped += 1;
                t_last = t;
                if debug_pump && (delivered_base + popped).is_multiple_of(1_000_000) {
                    eprintln!(
                        "[pump] events={} simtime={t} pending={}",
                        delivered_base + popped,
                        net.sched.len()
                    );
                }
                let handled = match kind {
                    CommitKind::Activity | CommitKind::Timer | CommitKind::Silent => {
                        alive[node.index()]
                    }
                    CommitKind::PeerUp { peer } => ctx.session_alive(node, peer),
                };
                if !handled {
                    continue;
                }
                let (actions, events) = traces[node.index()]
                    .pop_front()
                    .expect("worker trace aligns with commit order");
                let mut activity = match kind {
                    CommitKind::Activity | CommitKind::PeerUp { .. } => true,
                    CommitKind::Timer => !actions.is_empty(),
                    CommitKind::Silent => false,
                };
                // Allocate this op's real ids in serial action order; the
                // commit stream re-derives them from id_base by replaying
                // the same rule.
                let mut id_base = 0u64;
                let mut id_seen = false;
                for action in &actions {
                    if let Action::Send { to, .. } = action {
                        activity = true;
                        // Sends to dead routers bump counters but never
                        // reach the scheduler — no id in serial either.
                        if alive[to.index()] {
                            let id = net.sched.alloc_id();
                            if !id_seen {
                                id_base = id.as_u64();
                                id_seen = true;
                            }
                        }
                    } else {
                        let at2 = follow_at(t, action);
                        let id = net.sched.alloc_id();
                        if !id_seen {
                            id_base = id.as_u64();
                            id_seen = true;
                        }
                        if at2 < epoch_end {
                            // Already executed on the worker; keep
                            // replaying under its real id.
                            let (kind2, dest2) = follow_commit(node, action);
                            replay.push(Pending {
                                at: at2,
                                key: id.as_u64(),
                                item: CommitEv {
                                    node,
                                    kind: kind2,
                                    dest: dest2,
                                },
                            });
                        }
                    }
                }
                if activity {
                    activity_at = Some(t);
                }
                if !actions.is_empty() || !events.is_empty() {
                    stream_ops[dest as usize % streams].push(ApplyOp {
                        plan_idx,
                        t,
                        node,
                        id_base,
                        actions,
                        events,
                    });
                    total_ops += 1;
                }
                plan_idx += 1;
            }
            net.sched.mark_delivered_many(t_last, popped);
            if let Some(t) = activity_at {
                net.last_activity = t;
            }
            timings.phase_b_secs += walk_start.elapsed().as_secs_f64();
            let merge_start = Instant::now();

            // Apply the commit streams — on the worker pool when the
            // epoch is large enough to pay for the channel hop, inline
            // otherwise. Outputs are identical either way.
            let parallel = streams > 1 && total_ops >= COMMIT_PAR_MIN_OPS;
            let outs: Vec<ApplyOut> = if parallel {
                timings.parallel_commit_epochs += 1;
                let mut sent = vec![false; streams];
                for (s, ops) in stream_ops.into_iter().enumerate() {
                    if ops.is_empty() {
                        continue;
                    }
                    sent[s] = true;
                    work_txs[s]
                        .send(Work::Commit { epoch_end, ops })
                        .expect("shard worker alive");
                }
                sent.iter()
                    .enumerate()
                    .map(|(s, &was_sent)| {
                        if !was_sent {
                            return ApplyOut::default();
                        }
                        match reply_rxs[s].recv().expect("shard worker alive") {
                            Reply::Commit(out) => out,
                            Reply::Epoch(_) => unreachable!("protocol: commit reply expected"),
                        }
                    })
                    .collect()
            } else {
                stream_ops
                    .into_iter()
                    .map(|ops| apply_ops(&alive, link_delay, epoch_end, ops))
                    .collect()
            };

            // Deterministic merge. Counters are order-independent sums;
            // scheduler entries go in in global id order (each stream is
            // id-ascending), reproducing the serial insertion sequence;
            // trace events go out in plan (= commit) order.
            let mut entry_iters = Vec::with_capacity(outs.len());
            let mut trace_iters = Vec::with_capacity(outs.len());
            for out in outs {
                net.announcements += out.announcements;
                net.withdrawals += out.withdrawals;
                entry_iters.push(out.entries.into_iter().peekable());
                trace_iters.push(out.traced.into_iter().peekable());
            }
            loop {
                let mut best: Option<(u64, usize)> = None;
                for (s, it) in entry_iters.iter_mut().enumerate() {
                    if let Some(&(_, id, _)) = it.peek() {
                        if best.is_none_or(|(b, _)| id < b) {
                            best = Some((id, s));
                        }
                    }
                }
                let Some((_, s)) = best else { break };
                let (at, id, ev) = entry_iters[s].next().expect("peeked entry exists");
                net.sched.insert_allocated(at, EventId::from_u64(id), ev);
            }
            if !net.trace.is_off() {
                loop {
                    let mut best: Option<(u32, usize)> = None;
                    for (s, it) in trace_iters.iter_mut().enumerate() {
                        if let Some(&(idx, ..)) = it.peek() {
                            if best.is_none_or(|(b, _)| idx < b) {
                                best = Some((idx, s));
                            }
                        }
                    }
                    let Some((_, s)) = best else { break };
                    let (_, t, node, events) = trace_iters[s].next().expect("peeked entry exists");
                    for ev in events {
                        net.trace.record(t, node, ev);
                    }
                }
            }
            timings.merge_secs += merge_start.elapsed().as_secs_f64();
            timings.epochs += 1;
            debug_assert!(
                traces.iter().all(VecDeque::is_empty),
                "every recorded trace was consumed"
            );
        }

        // Hang up; once every worker has exited, the coordinator holds
        // the only reference to each chunk and reassembles the node vec.
        drop(work_txs);
        for h in handles {
            h.join().expect("shard worker panicked");
        }
        let mut nodes: Vec<Option<BgpNode>> = Vec::with_capacity(n);
        for chunk in chunks {
            let Ok(chunk) = Arc::try_unwrap(chunk) else {
                unreachable!("joined workers dropped their chunk handles")
            };
            nodes.extend(chunk.into_inner().expect("chunk mutex poisoned"));
        }
        nodes
    });
    match result {
        Ok(nodes) => net.nodes = nodes,
        Err(_) => panic!("sharded event loop worker panicked"),
    }
    net.shard_timings.add(&timings);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, SimConfig};
    use crate::scheme::Scheme;
    use bgpsim_topology::degree::SkewedSpec;
    use bgpsim_topology::generators::skewed_topology;
    use bgpsim_topology::region::FailureSpec;
    use bgpsim_topology::{AsId, Point, Router, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_topo(seed: u64, n: usize) -> Topology {
        let mut rng = SmallRng::seed_from_u64(seed);
        skewed_topology(n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
    }

    /// Full failure experiment under a given shard count, with the
    /// parallel commit forced on (one stream per shard) so every sharded
    /// test exercises the destination-partitioned path even on one core.
    fn run_with_shards(shards: usize) -> (crate::RunStats, Network) {
        let topo = small_topo(42, 30);
        let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
        cfg.shards = Some(shards);
        cfg.commit_streams = Some(shards);
        let mut net = Network::new(topo, cfg);
        let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
        (stats, net)
    }

    fn assert_networks_identical(a: &Network, b: &Network, what: &str) {
        assert_eq!(a.now(), b.now(), "{what}: clock diverged");
        assert_eq!(
            a.sched.delivered_count(),
            b.sched.delivered_count(),
            "{what}: delivered count diverged"
        );
        assert_eq!(
            a.sched.scheduled_count(),
            b.sched.scheduled_count(),
            "{what}: scheduled count diverged"
        );
        for r in a.topology().router_ids() {
            match (a.node(r), b.node(r)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.loc_rib(), y.loc_rib(), "{what}: Loc-RIB of {r} diverged");
                    assert_eq!(x.stats(), y.stats(), "{what}: node stats of {r} diverged");
                }
                _ => panic!("{what}: aliveness of {r} diverged"),
            }
        }
    }

    #[test]
    fn sharded_matches_serial_across_shard_counts() {
        let (serial_stats, serial_net) = run_with_shards(1);
        for shards in [2, 3, 7] {
            let (stats, net) = run_with_shards(shards);
            assert_eq!(stats, serial_stats, "RunStats diverged at {shards} shards");
            assert_networks_identical(&net, &serial_net, &format!("{shards} shards"));
        }
    }

    #[test]
    fn parallel_commit_path_runs_and_matches_inline() {
        // Same workload, same shard count, different stream counts — the
        // commit-stream knob must be invisible in every observable, and
        // the multi-stream run must actually take the worker-pool path.
        let run = |streams: usize| {
            let topo = small_topo(42, 30);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
            cfg.shards = Some(4);
            cfg.commit_streams = Some(streams);
            let mut net = Network::new(topo, cfg);
            let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
            (stats, net)
        };
        let (inline_stats, inline_net) = run(1);
        assert_eq!(
            inline_net.shard_phase_timings().parallel_commit_epochs,
            0,
            "one stream must apply inline"
        );
        for streams in [2, 4] {
            let (stats, net) = run(streams);
            assert_eq!(
                stats, inline_stats,
                "RunStats diverged at {streams} streams"
            );
            assert_networks_identical(&net, &inline_net, &format!("{streams} streams"));
            let t = net.shard_phase_timings();
            assert!(
                t.parallel_commit_epochs > 0,
                "{streams} streams: no epoch took the parallel commit path"
            );
            assert!(t.epochs >= t.parallel_commit_epochs);
            assert!(t.total_secs() > 0.0, "phase timings were accumulated");
        }
    }

    #[test]
    fn epoch_boundary_deliveries_match_serial() {
        // Regression: with a zero origination window, every message lands
        // exactly on an epoch boundary (t0 + link_delay == epoch_end), the
        // half-open-window edge case — it must be queued into the next
        // epoch and delivered in serial order, including the event-id
        // tie-break between same-instant deliveries from different peers.
        let build = |shards: usize| {
            let routers = (0..4)
                .map(|i| Router {
                    as_id: AsId::new(i),
                    pos: Point::new(i as f64, 0.0),
                })
                .collect();
            // A diamond 0–{1,2}–3: router 3 hears every prefix from both 1
            // and 2 at the same instant.
            let topo = Topology::new(
                routers,
                vec![
                    (RouterId::new(0), RouterId::new(1)),
                    (RouterId::new(0), RouterId::new(2)),
                    (RouterId::new(1), RouterId::new(3)),
                    (RouterId::new(2), RouterId::new(3)),
                ],
            )
            .unwrap();
            let mut cfg = SimConfig::new(99);
            cfg.origination_window = SimDuration::ZERO;
            cfg.shards = Some(shards);
            cfg.commit_streams = Some(shards);
            Network::new(topo, cfg)
        };
        let mut serial = build(1);
        serial.run_initial_convergence();
        for shards in [2, 4] {
            let mut net = build(shards);
            net.run_initial_convergence();
            assert_networks_identical(&net, &serial, &format!("{shards} shards"));
        }
    }

    #[test]
    fn link_failure_and_revival_match_serial() {
        // Covers the PeerDown/PeerUp commit arms: fail a link, quiesce,
        // then revive a router region.
        let run = |shards: usize| {
            let topo = small_topo(7, 24);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 31);
            cfg.shards = Some(shards);
            cfg.commit_streams = Some(shards);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            let edges: Vec<_> = net.topology().edges()[..3].to_vec();
            net.inject_link_failure(&edges);
            let s1 = net.run_to_quiescence();
            let failed = net.inject_failure(&FailureSpec::CenterFraction(0.10));
            let s2 = net.run_to_quiescence();
            net.revive_routers(&failed);
            let s3 = net.run_to_quiescence();
            (s1, s2, s3, net)
        };
        let (a1, a2, a3, serial) = run(1);
        let (b1, b2, b3, sharded) = run(3);
        assert_eq!(a1, b1, "link-failure stats diverged");
        assert_eq!(a2, b2, "region-failure stats diverged");
        assert_eq!(a3, b3, "revival stats diverged");
        assert_networks_identical(&sharded, &serial, "3 shards");
    }

    #[test]
    fn traces_byte_identical_across_shard_counts() {
        // The tentpole claim of the trace layer: the JSONL byte stream is
        // a pure function of the simulation, independent of both the
        // shard count and the commit-stream count.
        let run = |shards: usize, streams: usize| {
            let topo = small_topo(42, 30);
            let mut cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 777);
            cfg.shards = Some(shards);
            cfg.commit_streams = Some(streams);
            let mut net = Network::new(topo, cfg);
            net.run_initial_convergence();
            net.inject_failure(&FailureSpec::CenterFraction(0.10));
            net.set_trace_sink(crate::trace::TraceSink::memory(1 << 22));
            let stats = net.run_to_quiescence();
            let events = net.take_trace_events();
            assert!(!events.is_empty(), "re-convergence must record events");
            (stats, crate::trace::to_jsonl(&events))
        };
        let (serial_stats, serial_jsonl) = run(1, 1);
        for (shards, streams) in [(2, 1), (2, 2), (3, 3), (4, 2)] {
            let (stats, jsonl) = run(shards, streams);
            assert_eq!(
                stats, serial_stats,
                "RunStats diverged at {shards} shards / {streams} streams"
            );
            assert_eq!(
                jsonl, serial_jsonl,
                "trace bytes diverged at {shards} shards / {streams} streams"
            );
        }
    }

    #[test]
    fn small_epochs_run_phase_a_inline() {
        // The origination trickle and the post-storm tail both produce
        // epochs with a handful of events — those must take the inline
        // path, and bigger epochs must still reach the worker pool. The
        // identity of the two paths is pinned by every other test in this
        // module (they all run epochs on both sides of the threshold).
        let (_, net) = run_with_shards(2);
        let t = net.shard_phase_timings();
        assert!(
            t.inline_phase_a_epochs > 0,
            "no epoch was small enough for the inline Phase A path"
        );
        assert!(
            t.inline_phase_a_epochs < t.epochs,
            "no epoch was big enough for the worker-pool path"
        );
    }

    #[test]
    fn shard_count_resolution() {
        let topo = small_topo(1, 10);
        let mut cfg = SimConfig::new(1);
        cfg.shards = Some(4);
        assert_eq!(Network::new(topo, cfg).shard_count(), 4);
    }

    #[test]
    fn commit_dest_is_prefix_major() {
        use bgpsim_bgp::msg::Prefix;
        let r = RouterId::new(3);
        let p = Prefix::new(9);
        assert_eq!(
            commit_dest(&Ev::Originate { node: r, prefix: p }),
            9,
            "originations key by prefix"
        );
        assert_eq!(commit_dest(&Ev::ProcDone { node: r }), 3, "no prefix: node");
        assert_eq!(
            commit_dest(&Ev::MraiExpiry {
                node: r,
                peer: RouterId::new(1),
                prefix: Some(p),
                gen: 0
            }),
            9
        );
        assert_eq!(
            commit_dest(&Ev::MraiExpiry {
                node: r,
                peer: RouterId::new(1),
                prefix: None,
                gen: 0
            }),
            3,
            "per-peer MRAI keys by node"
        );
    }
}
