//! One function per figure of the paper.
//!
//! Every function returns the [`FigureData`] the corresponding figure
//! plots: the same x axis, one series per curve. Absolute values depend on
//! the simulator substrate; the *shapes* (who wins, where the optima sit,
//! crossover points) are the reproduction targets — see EXPERIMENTS.md.
//!
//! All figures default to the paper's 120-node networks and average over
//! seeded trials; [`FigOpts`] scales nodes/trials down for quick runs.

use bgpsim_topology::region::FailureSpec;
use serde::{Deserialize, Serialize};

use crate::experiment::{run_all_parallel, Experiment, TopologySpec};
use crate::metrics::Aggregate;
use crate::scheme::Scheme;

/// The failure sizes (fraction of nodes) the paper sweeps in Figs 1/2/6–11.
pub const FAILURE_FRACTIONS: [f64; 6] = [0.01, 0.025, 0.05, 0.10, 0.15, 0.20];

/// The MRAI values (seconds) used for the V-curve sweeps (Figs 3–5, 12).
pub const MRAI_SWEEP: [f64; 10] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.25, 3.0, 4.0];

/// What a figure reports on the y axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Mean convergence delay, seconds.
    DelaySecs,
    /// Mean number of update messages.
    Messages,
}

impl Metric {
    /// Extracts this metric's mean from an aggregate.
    pub fn value(self, agg: &Aggregate) -> f64 {
        match self {
            Metric::DelaySecs => agg.mean_delay_secs(),
            Metric::Messages => agg.mean_messages(),
        }
    }

    /// Axis label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Metric::DelaySecs => "convergence delay (s)",
            Metric::Messages => "update messages",
        }
    }
}

/// One curve of a figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure: the series the paper plots, as numbers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Figure id ("fig01" … "fig13").
    pub id: String,
    /// Human title.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// The series named `name`, if present.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The x position of the minimum y in the series named `name`
    /// (the "optimal MRAI" of the paper's V-curves).
    ///
    /// Non-finite y values (a NaN mean from an empty aggregate, an
    /// infinity from a degenerate sweep point) are skipped with a warning
    /// rather than compared; returns `None` when the series is missing or
    /// no point has a finite y. Ties keep the last minimal point, matching
    /// `Iterator::min_by`.
    pub fn argmin_of(&self, name: &str) -> Option<f64> {
        let series = self.series_named(name)?;
        let mut skipped = 0usize;
        let mut best: Option<(f64, f64)> = None;
        for &(x, y) in &series.points {
            if !y.is_finite() {
                skipped += 1;
                continue;
            }
            if best.is_none_or(|(_, by)| y <= by) {
                best = Some((x, y));
            }
        }
        if skipped > 0 {
            eprintln!(
                "figures: argmin_of({:?} in {}): skipped {skipped} non-finite point(s)",
                name, self.id
            );
        }
        best.map(|(x, _)| x)
    }
}

/// A figure-regenerating function, as listed by [`all_figures`] (and the
/// extension experiments' `all_extensions`).
pub type FigureFn = fn(FigOpts) -> FigureData;

/// Sizing knobs for figure regeneration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FigOpts {
    /// Nodes (ASes) per topology; the paper uses 120.
    pub nodes: usize,
    /// Seeded trials per point; the paper averages several runs.
    pub trials: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
}

impl Default for FigOpts {
    fn default() -> FigOpts {
        FigOpts {
            nodes: 120,
            trials: 3,
            base_seed: 2006,
            threads: None,
        }
    }
}

impl FigOpts {
    /// A scaled-down configuration for quick runs and tests.
    pub fn quick() -> FigOpts {
        FigOpts {
            nodes: 40,
            trials: 1,
            base_seed: 2006,
            threads: None,
        }
    }
}

/// Sweep failure sizes for a set of schemes on one topology family.
fn failure_sweep(
    id: &str,
    title: &str,
    metric: Metric,
    topology: TopologySpec,
    schemes: &[Scheme],
    fractions: &[f64],
    opts: FigOpts,
) -> FigureData {
    let mut points: Vec<Experiment> = Vec::new();
    for scheme in schemes {
        for &f in fractions {
            points.push(Experiment {
                topology: topology.clone(),
                scheme: scheme.clone(),
                failure: FailureSpec::CenterFraction(f),
                trials: opts.trials,
                base_seed: opts.base_seed,
            });
        }
    }
    let aggs = run_all_parallel(&points, opts.threads);
    let series = schemes
        .iter()
        .enumerate()
        .map(|(si, scheme)| Series {
            name: scheme.name.clone(),
            points: fractions
                .iter()
                .enumerate()
                .map(|(fi, &f)| (f * 100.0, metric.value(&aggs[si * fractions.len() + fi])))
                .collect(),
        })
        .collect();
    FigureData {
        id: id.into(),
        title: title.into(),
        x_label: "failure size (% of nodes)".into(),
        y_label: metric.label().into(),
        series,
    }
}

/// Sweep MRAI values; one series per (label, topology, failure fraction).
fn mrai_sweep(
    id: &str,
    title: &str,
    series_defs: &[(String, TopologySpec, f64)],
    mrais: &[f64],
    queue_batched: bool,
    opts: FigOpts,
) -> FigureData {
    let mut points: Vec<Experiment> = Vec::new();
    for (_, topology, fraction) in series_defs {
        for &m in mrais {
            let scheme = if queue_batched {
                Scheme::batching(m)
            } else {
                Scheme::constant_mrai(m)
            };
            points.push(Experiment {
                topology: topology.clone(),
                scheme,
                failure: FailureSpec::CenterFraction(*fraction),
                trials: opts.trials,
                base_seed: opts.base_seed,
            });
        }
    }
    let aggs = run_all_parallel(&points, opts.threads);
    let series = series_defs
        .iter()
        .enumerate()
        .map(|(si, (name, _, _))| Series {
            name: name.clone(),
            points: mrais
                .iter()
                .enumerate()
                .map(|(mi, &m)| (m, aggs[si * mrais.len() + mi].mean_delay_secs()))
                .collect(),
        })
        .collect();
    FigureData {
        id: id.into(),
        title: title.into(),
        x_label: "MRAI (s)".into(),
        y_label: "convergence delay (s)".into(),
        series,
    }
}

/// Fig 1: convergence delay vs failure size for MRAI ∈ {0.5, 1.25, 2.25} s.
pub fn fig01(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig01",
        "Convergence delay for different sized failures",
        Metric::DelaySecs,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(1.25),
            Scheme::constant_mrai(2.25),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 2: number of generated messages for the same three MRAI values.
pub fn fig02(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig02",
        "Number of generated messages for different MRAI values",
        Metric::Messages,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(1.25),
            Scheme::constant_mrai(2.25),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 3: delay vs MRAI (V-curves) for 1%, 5% and 10% failures.
pub fn fig03(opts: FigOpts) -> FigureData {
    let t = TopologySpec::seventy_thirty(opts.nodes);
    mrai_sweep(
        "fig03",
        "Variation in convergence delay with MRAI",
        &[
            ("1% failure".into(), t.clone(), 0.01),
            ("5% failure".into(), t.clone(), 0.05),
            ("10% failure".into(), t, 0.10),
        ],
        &MRAI_SWEEP,
        false,
        opts,
    )
}

/// Fig 4: delay vs MRAI for a 5% failure under the three degree
/// distributions with equal average degree (50-50, 70-30, 85-15).
pub fn fig04(opts: FigOpts) -> FigureData {
    mrai_sweep(
        "fig04",
        "Convergence delay for different topologies",
        &[
            ("50-50".into(), TopologySpec::fifty_fifty(opts.nodes), 0.05),
            (
                "70-30".into(),
                TopologySpec::seventy_thirty(opts.nodes),
                0.05,
            ),
            (
                "85-15".into(),
                TopologySpec::eighty_five_fifteen(opts.nodes),
                0.05,
            ),
        ],
        &MRAI_SWEEP,
        false,
        opts,
    )
}

/// Fig 5: effect of average degree — 50-50 at average degree 3.8 vs 7.6.
pub fn fig05(opts: FigOpts) -> FigureData {
    mrai_sweep(
        "fig05",
        "Effect of average degree on convergence delay",
        &[
            (
                "avg degree 3.8".into(),
                TopologySpec::fifty_fifty(opts.nodes),
                0.05,
            ),
            (
                "avg degree 7.6".into(),
                TopologySpec::fifty_fifty_dense(opts.nodes),
                0.05,
            ),
        ],
        &MRAI_SWEEP,
        false,
        opts,
    )
}

/// Fig 6: degree-dependent MRAI (low/high assignments and both constants).
pub fn fig06(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig06",
        "Effect of degree dependent MRAI",
        Metric::DelaySecs,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::degree_dependent(0.5, 2.25, 8),
            Scheme::degree_dependent(2.25, 0.5, 8),
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(2.25),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 7: the dynamic MRAI scheme vs the three constants.
pub fn fig07(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig07",
        "Effect of dynamic MRAI",
        Metric::DelaySecs,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::dynamic_default().named("dynamic"),
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(1.25),
            Scheme::constant_mrai(2.25),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 8: effect of `upTh` (with `downTh` = 0).
pub fn fig08(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig08",
        "Effect of upTh on convergence delay",
        Metric::DelaySecs,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.05, 0.0).named("upTh=0.05"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.25, 0.0).named("upTh=0.25"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.65, 0.0).named("upTh=0.65"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 1.25, 0.0).named("upTh=1.25"),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 9: effect of `downTh` (with `upTh` = 0.65 s).
pub fn fig09(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig09",
        "Effect of downTh on convergence delay",
        Metric::DelaySecs,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.65, 0.0).named("downTh=0"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.65, 0.05).named("downTh=0.05"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.65, 0.2).named("downTh=0.2"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.65, 0.5).named("downTh=0.5"),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 10: batching (MRAI = 0.5 s) vs dynamic vs constants, plus the
/// batching+dynamic combination.
pub fn fig10(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig10",
        "Performance of batching scheme",
        Metric::DelaySecs,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::batching(0.5).named("batching"),
            Scheme::dynamic_default().named("dynamic"),
            Scheme::batching_plus_dynamic(),
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(2.25),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 11: message counts of the batching scheme vs the constants.
pub fn fig11(opts: FigOpts) -> FigureData {
    failure_sweep(
        "fig11",
        "Number of messages generated by the batching scheme",
        Metric::Messages,
        TopologySpec::seventy_thirty(opts.nodes),
        &[
            Scheme::batching(0.5).named("batching"),
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(2.25),
        ],
        &FAILURE_FRACTIONS,
        opts,
    )
}

/// Fig 12: effect of batching across MRAI values (5% failure, 70-30).
pub fn fig12(opts: FigOpts) -> FigureData {
    let t = TopologySpec::seventy_thirty(opts.nodes);
    let mut fifo = mrai_sweep(
        "fig12",
        "Effect of batching with different MRAIs",
        &[("no batching".into(), t.clone(), 0.05)],
        &MRAI_SWEEP,
        false,
        opts,
    );
    let batched = mrai_sweep(
        "fig12",
        "Effect of batching with different MRAIs",
        &[("batching".into(), t, 0.05)],
        &MRAI_SWEEP,
        true,
        opts,
    );
    fifo.series.extend(batched.series);
    fifo
}

/// Fig 13: batching and dynamic MRAI on the realistic (multi-router,
/// Internet-derived degrees) topologies. The paper found optimal MRAIs of
/// 0.5 s (small failures) and 3.5 s (10% failures) there, so the dynamic
/// levels span 0.5–3.5 s.
pub fn fig13(opts: FigOpts) -> FigureData {
    // Multi-router topologies are several times larger than the AS count;
    // sweep a reduced fraction list (the paper shows 1–10%).
    failure_sweep(
        "fig13",
        "Convergence delay of realistic topologies",
        Metric::DelaySecs,
        TopologySpec::realistic(opts.nodes),
        &[
            Scheme::batching(0.5).named("batching"),
            Scheme::dynamic(&[0.5, 1.25, 3.5], 0.65, 0.05).named("dynamic"),
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(3.5),
        ],
        &[0.01, 0.025, 0.05, 0.10],
        opts,
    )
}

/// Trace-derived companion figure (no direct paper counterpart):
/// transient invalid-route episodes vs failure size for batching against
/// plain FIFO processing, both at MRAI = 0.5 s. Quantifies the paper's §5
/// claim that deleting stale updates keeps invalid intermediate routes
/// from ever being installed: each y value counts best routes some node
/// installed during re-convergence and later replaced or withdrew,
/// reconstructed by [`Timeline`](crate::trace::Timeline) from a traced
/// trial. Not part of [`all_figures`] — the goldens pin the paper's
/// thirteen — but exercised by the `trace_timeline` example.
pub fn fig_transient_routes(opts: FigOpts) -> FigureData {
    let topology = TopologySpec::seventy_thirty(opts.nodes);
    let schemes = [
        Scheme::batching(0.5).named("batching"),
        Scheme::constant_mrai(0.5),
    ];
    let series = schemes
        .iter()
        .map(|scheme| Series {
            name: scheme.name.clone(),
            points: FAILURE_FRACTIONS
                .iter()
                .map(|&f| {
                    let exp = Experiment {
                        topology: topology.clone(),
                        scheme: scheme.clone(),
                        failure: FailureSpec::CenterFraction(f),
                        trials: opts.trials,
                        base_seed: opts.base_seed,
                    };
                    let total: u64 = (0..opts.trials)
                        .map(|t| exp.run_trial_traced(t, None).timeline().transient_routes())
                        .sum();
                    (f * 100.0, total as f64 / opts.trials.max(1) as f64)
                })
                .collect(),
        })
        .collect();
    FigureData {
        id: "fig_transient_routes".into(),
        title: "Transient invalid routes installed during re-convergence".into(),
        x_label: "failure size (% of nodes)".into(),
        y_label: "transient routes (mean per trial)".into(),
        series,
    }
}

/// Full-table companion figure (no direct paper counterpart): convergence
/// delay and transient invalid-route episodes of a central-region *burst
/// withdrawal* as the routing table grows from the paper's one prefix per
/// AS towards Internet scale. Each x value is a network-wide table size
/// (power-law split across ASes, [`FullTableSpec`](crate::FullTableSpec));
/// the failed region's origins stay alive and withdraw their whole prefix
/// blocks in one event storm. Not part of [`all_figures`] — the goldens
/// pin the paper's thirteen — the `fulltable` sections of the largescale
/// and hotpath benches drive it instead.
pub fn fig_fulltable(opts: FigOpts, sizes: &[u32]) -> FigureData {
    use bgpsim_des::RngStreams;
    let scheme_base = Scheme::batching(0.5);
    let mut delay = Series {
        name: "convergence delay (s)".into(),
        points: Vec::new(),
    };
    let mut transient = Series {
        name: "transient invalid episodes".into(),
        points: Vec::new(),
    };
    for &size in sizes {
        let scheme = scheme_base
            .clone()
            .with_full_table(crate::FullTableSpec::internet_like(size));
        let spec = TopologySpec::seventy_thirty(opts.nodes);
        let mut delay_sum = 0.0;
        let mut transient_sum = 0u64;
        for trial in 0..opts.trials {
            let streams = RngStreams::new(opts.base_seed);
            let mut topo_rng = streams.stream("topology", u64::from(trial));
            let topo = spec.generate(&mut topo_rng);
            use rand::Rng;
            let sim_seed: u64 = streams.stream("sim-seed", u64::from(trial)).gen();
            let mut net =
                crate::Network::new(topo, crate::SimConfig::from_scheme(&scheme, sim_seed));
            net.run_initial_convergence();
            // Trace only the storm's re-convergence, like
            // `Experiment::run_trial_traced`.
            net.set_trace_sink(crate::trace::TraceSink::memory(
                crate::trace::DEFAULT_MEMORY_CAPACITY,
            ));
            net.inject_burst_withdrawal(&FailureSpec::CenterFraction(0.1));
            let stats = net.run_to_quiescence();
            delay_sum += stats.convergence_delay.as_secs_f64();
            let events = net.take_trace_events();
            transient_sum += crate::trace::Timeline::from_events(&events).transient_routes();
        }
        let trials = f64::from(opts.trials.max(1));
        delay.points.push((f64::from(size), delay_sum / trials));
        transient
            .points
            .push((f64::from(size), transient_sum as f64 / trials));
    }
    FigureData {
        id: "fig_fulltable".into(),
        title: "Burst-withdrawal convergence vs routing-table size".into(),
        x_label: "table size (prefixes)".into(),
        y_label: "delay (s) / transient episodes".into(),
        series: vec![delay, transient],
    }
}

/// Every figure in order, with its regenerating function.
pub fn all_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig01", fig01),
        ("fig02", fig02),
        ("fig03", fig03),
        ("fig04", fig04),
        ("fig05", fig05),
        ("fig06", fig06),
        ("fig07", fig07),
        ("fig08", fig08),
        ("fig09", fig09),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_quick_has_expected_shape() {
        let data = fig01(FigOpts {
            nodes: 30,
            trials: 1,
            base_seed: 1,
            threads: None,
        });
        assert_eq!(data.series.len(), 3);
        for s in &data.series {
            assert_eq!(s.points.len(), FAILURE_FRACTIONS.len());
            assert!(s.points.iter().all(|&(_, y)| y >= 0.0));
        }
        assert_eq!(data.series[0].points[0].0, 1.0, "x is % of nodes");
    }

    #[test]
    fn fig_fulltable_scales_with_table_size() {
        let data = fig_fulltable(
            FigOpts {
                nodes: 20,
                trials: 1,
                base_seed: 5,
                threads: None,
            },
            &[20, 200],
        );
        assert_eq!(data.series.len(), 2);
        for s in &data.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].0, 20.0);
            assert_eq!(s.points[1].0, 200.0);
            assert!(s.points.iter().all(|&(_, y)| y >= 0.0));
        }
    }

    #[test]
    fn figure_helpers() {
        let data = FigureData {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "a".into(),
                points: vec![(1.0, 5.0), (2.0, 3.0), (3.0, 4.0)],
            }],
        };
        assert_eq!(data.argmin_of("a"), Some(2.0));
        assert!(data.series_named("missing").is_none());
        assert!(data.argmin_of("missing").is_none());
    }

    #[test]
    fn argmin_skips_non_finite_points() {
        let fig = |points: Vec<(f64, f64)>| FigureData {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "a".into(),
                points,
            }],
        };
        // A NaN mean (empty aggregate) must not panic or win the argmin.
        let data = fig(vec![
            (1.0, f64::NAN),
            (2.0, 3.0),
            (3.0, f64::INFINITY),
            (4.0, 7.0),
        ]);
        assert_eq!(data.argmin_of("a"), Some(2.0));
        // All-non-finite series: no argmin rather than a panic.
        assert_eq!(fig(vec![(1.0, f64::NAN)]).argmin_of("a"), None);
        // Ties keep the last minimal point (Iterator::min_by semantics).
        assert_eq!(fig(vec![(1.0, 2.0), (5.0, 2.0)]).argmin_of("a"), Some(5.0));
    }

    #[test]
    fn transient_routes_figure_shows_batching_win() {
        let data = fig_transient_routes(FigOpts {
            nodes: 24,
            trials: 1,
            base_seed: 3,
            threads: None,
        });
        assert_eq!(data.series.len(), 2);
        for s in &data.series {
            assert_eq!(s.points.len(), FAILURE_FRACTIONS.len());
            assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
        }
    }

    #[test]
    fn all_figures_enumerates_thirteen() {
        assert_eq!(all_figures().len(), 13);
    }
}
