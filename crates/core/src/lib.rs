//! # bgpsim — reproducing *"Improving BGP Convergence Delay for
//! Large-Scale Failures"* (Sahoo, Kant, Mohapatra — DSN 2006)
//!
//! This crate assembles the workspace's substrates — the deterministic
//! discrete-event engine ([`bgpsim_des`]), the BRITE-like topology
//! generators ([`bgpsim_topology`]) and the BGP-4 protocol model
//! ([`bgpsim_bgp`]) — into the paper's experiments:
//!
//! * [`network`] — builds a simulated BGP network from a topology, runs it
//!   to initial convergence, injects a large-scale (contiguous-region)
//!   failure and measures the re-convergence.
//! * [`scheme`] — the paper's MRAI/processing schemes as ready-made
//!   configurations: constant MRAI, degree-dependent MRAI (§4.2), dynamic
//!   MRAI (§4.3), batched update processing (§4.4) and their combination.
//! * [`metrics`] — per-run statistics (convergence delay, message counts,
//!   queue peaks) and cross-trial aggregation.
//! * [`experiment`] — seeded multi-trial experiment runner with optional
//!   parallel fan-out.
//! * [`figures`] — one function per figure of the paper, returning exactly
//!   the series the figure plots.
//! * [`analysis`] — the related-work convergence-delay models (Labovitz,
//!   Pei) the paper contrasts against, plus an overload-factor diagnostic.
//! * [`extensions`] — the paper's future-work items and model ablations:
//!   the failure-size oracle, alternative overload detectors, expedited
//!   improvements, batching variants, network-size sensitivity.
//! * [`scenario`] — scripted failure/recovery sequences (flapping regions,
//!   fail-and-repair cycles) with one measurement per transition.
//! * [`trace`] — zero-overhead-when-off structured tracing: a deterministic
//!   event stream (updates, decisions, MRAI transitions, queue depths) and
//!   the [`trace::Timeline`] analysis pass over it.
//! * [`report`] — plain-text tables for benches and EXPERIMENTS.md.
//!
//! # Quickstart
//!
//! Measure the convergence delay of a 10% central failure in the paper's
//! default "70-30" network with MRAI = 0.5 s:
//!
//! ```
//! use bgpsim::experiment::{Experiment, TopologySpec};
//! use bgpsim::scheme::Scheme;
//! use bgpsim_topology::region::FailureSpec;
//!
//! let exp = Experiment {
//!     topology: TopologySpec::seventy_thirty(30), // 30 nodes to keep the doctest fast
//!     scheme: Scheme::constant_mrai(0.5),
//!     failure: FailureSpec::CenterFraction(0.10),
//!     trials: 1,
//!     base_seed: 42,
//! };
//! let agg = exp.run();
//! assert!(agg.mean_delay_secs() > 0.0);
//! assert!(agg.mean_messages() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod experiment;
pub mod extensions;
pub mod figures;
pub mod metrics;
pub mod network;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod scheme;
mod shard;
pub mod trace;
pub mod warm;

pub use experiment::{Aggregate, Experiment, TopologySpec};
pub use metrics::RunStats;
pub use network::{FullTableSpec, MemoryFootprint, Network, SimConfig};
pub use scheme::Scheme;
pub use shard::ShardPhaseTimings;
pub use trace::{Timeline, TraceEvent, TraceSink};
pub use warm::{NetworkSnapshot, SnapshotCache, SnapshotKey, WarmStats};
