//! The process-wide simulation worker pool.
//!
//! The sharded event loop (DESIGN.md §13) opens one pool scope per pump
//! and fans each epoch's per-shard work out as jobs; `Experiment`'s
//! parallel trial runner may have many pumps in flight at once, all
//! sharing this single pool. Keeping the threads parked for the life of
//! the process — instead of the per-pump `crossbeam::thread::scope` spawn
//! and the per-epoch `mpsc` round trip PR 6 used — makes a small epoch
//! cost one condvar wake instead of a channel hop, which is what the
//! `small_epoch` section of the `hotpath` bench measures.
//!
//! This module is policy only (sizing and sharing); the mechanism — the
//! parked threads, the scoped-borrow safety argument, the helping barrier
//! — lives in [`crossbeam::pool`], keeping this crate `forbid(unsafe_code)`.

use std::sync::OnceLock;

pub use crossbeam::pool::{Scope, WorkerPool};

/// The shared pool, sized to the machine's available parallelism and
/// created on first use. Worker threads are detached and parked when idle,
/// so an unused pool costs nothing after startup.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn global_pool_is_shared_and_reusable() {
        let pool = super::global();
        assert!(pool.threads() >= 1);
        assert!(std::ptr::eq(pool, super::global()), "one pool per process");
        let done = AtomicUsize::new(0);
        // Two back-to-back scopes on the shared pool, as two sequential
        // pumps would open.
        for _ in 0..2 {
            pool.scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(done.into_inner(), 6);
    }
}
