//! Plain-text rendering of regenerated figures.

use std::fmt::Write as _;

use crate::figures::FigureData;
use crate::network::Sample;

/// Renders a sampled convergence timeline as a unicode sparkline of the
/// queued-update backlog (the paper's "unfinished work" signal), annotated
/// with the peak.
///
/// ```
/// use bgpsim::network::Sample;
/// use bgpsim::report::sparkline;
/// use bgpsim_des::SimTime;
///
/// let samples: Vec<Sample> = (0..8)
///     .map(|i| Sample {
///         time: SimTime::from_secs(i),
///         queued_updates: (i as usize) % 5,
///         busy_routers: 0,
///         messages_so_far: 0,
///         mean_dynamic_level: 0.0,
///     })
///     .collect();
/// let line = sparkline(&samples);
/// assert!(line.ends_with("(peak 4)"));
/// ```
pub fn sparkline(samples: &[Sample]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = samples.iter().map(|s| s.queued_updates).max().unwrap_or(0);
    let mut out = String::with_capacity(samples.len() + 16);
    for s in samples {
        let idx = (s.queued_updates * (BARS.len() - 1) + peak / 2)
            .checked_div(peak)
            .unwrap_or(0);
        out.push(BARS[idx.min(BARS.len() - 1)]);
    }
    let _ = write!(out, " (peak {peak})");
    out
}

/// Renders a figure as a fixed-width table: one row per x value, one
/// column per series.
///
/// ```
/// use bgpsim::figures::{FigureData, Series};
/// use bgpsim::report::render_table;
///
/// let fig = FigureData {
///     id: "fig00".into(),
///     title: "demo".into(),
///     x_label: "x".into(),
///     y_label: "y".into(),
///     series: vec![Series { name: "a".into(), points: vec![(1.0, 2.0)] }],
/// };
/// let table = render_table(&fig);
/// assert!(table.contains("demo"));
/// assert!(table.contains("a"));
/// ```
pub fn render_table(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", fig.id, fig.title);
    let _ = writeln!(out, "y: {}", fig.y_label);

    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|&(x, _)| x).collect())
        .unwrap_or_default();

    let mut header = format!("{:>14}", fig.x_label_short());
    for s in &fig.series {
        let _ = write!(header, " | {:>18}", truncate(&s.name, 18));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("{x:>14.3}");
        for s in &fig.series {
            match s.points.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(row, " | {y:>18.3}");
                }
                None => {
                    let _ = write!(row, " | {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders a figure as CSV (header: x label then series names).
pub fn render_csv(fig: &FigureData) -> String {
    let mut out = String::new();
    let mut header = vec![fig.x_label.clone()];
    header.extend(fig.series.iter().map(|s| s.name.clone()));
    let _ = writeln!(out, "{}", header.join(","));
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|&(x, _)| x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let mut row = vec![format!("{x}")];
        for s in &fig.series {
            row.push(
                s.points
                    .get(i)
                    .map(|&(_, y)| format!("{y}"))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Renders a figure as a GitHub-flavoured markdown table (the format
/// EXPERIMENTS.md uses).
///
/// ```
/// use bgpsim::figures::{FigureData, Series};
/// use bgpsim::report::render_markdown;
///
/// let fig = FigureData {
///     id: "fig00".into(),
///     title: "demo".into(),
///     x_label: "x".into(),
///     y_label: "y".into(),
///     series: vec![Series { name: "a".into(), points: vec![(1.0, 2.0)] }],
/// };
/// let md = render_markdown(&fig);
/// assert!(md.starts_with("| x |"));
/// assert!(md.contains("| 1 | 2.0 |"));
/// ```
pub fn render_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    let mut header = format!("| {} |", fig.x_label);
    let mut rule = String::from("|---:|");
    for s in &fig.series {
        let _ = write!(header, " {} |", s.name);
        rule.push_str("---:|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|&(x, _)| x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("| {x} |");
        for s in &fig.series {
            match s.points.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(row, " {y:.1} |");
                }
                None => row.push_str(" - |"),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

impl FigureData {
    fn x_label_short(&self) -> &str {
        if self.x_label.len() <= 14 {
            &self.x_label
        } else if self.x_label.starts_with("failure") {
            "failure %"
        } else {
            "x"
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    if s.len() <= max {
        s
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        &s[..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn demo() -> FigureData {
        FigureData {
            id: "figXX".into(),
            title: "A demo".into(),
            x_label: "MRAI (s)".into(),
            y_label: "delay (s)".into(),
            series: vec![
                Series {
                    name: "one".into(),
                    points: vec![(0.5, 10.0), (1.0, 5.0)],
                },
                Series {
                    name: "two".into(),
                    points: vec![(0.5, 12.0), (1.0, 6.0)],
                },
            ],
        }
    }

    #[test]
    fn table_contains_all_parts() {
        let t = render_table(&demo());
        assert!(t.contains("figXX"));
        assert!(t.contains("one"));
        assert!(t.contains("two"));
        assert!(t.contains("10.000"));
        assert!(t.contains("0.500"));
    }

    #[test]
    fn csv_is_well_formed() {
        let c = render_csv(&demo());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "MRAI (s),one,two");
        assert_eq!(lines[1], "0.5,10,12");
    }

    #[test]
    fn empty_figure_renders() {
        let fig = FigureData {
            id: "e".into(),
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(render_table(&fig).contains("empty"));
        assert_eq!(render_csv(&fig).lines().count(), 1);
    }

    #[test]
    fn sparkline_scales_to_peak() {
        use bgpsim_des::SimTime;
        let mk = |q: usize, t: u64| crate::network::Sample {
            time: SimTime::from_secs(t),
            queued_updates: q,
            busy_routers: 0,
            messages_so_far: 0,
            mean_dynamic_level: 0.0,
        };
        let line = sparkline(&[mk(0, 0), mk(10, 1), mk(5, 2)]);
        assert!(line.starts_with('▁'), "zero maps to the lowest bar: {line}");
        assert!(line.contains('█'), "peak maps to the highest bar: {line}");
        assert!(line.ends_with("(peak 10)"));
        assert_eq!(sparkline(&[]), " (peak 0)");
    }

    #[test]
    fn markdown_is_well_formed() {
        let md = render_markdown(&demo());
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| MRAI (s) | one | two |");
        assert_eq!(lines[1], "|---:|---:|---:|");
        assert!(lines[2].contains("10.0"));
    }

    #[test]
    fn long_series_names_truncate() {
        let mut fig = demo();
        fig.series[0].name = "a-very-long-series-name-indeed".into();
        let t = render_table(&fig);
        assert!(t.contains("a-very-long-series"));
    }
}
