//! The simulated BGP network: topology + routers + event loop.
//!
//! Reproduces the paper's SSFNet setup (§3.2):
//!
//! * every link has a 25 ms one-way delay (transmission + propagation +
//!   reception);
//! * eBGP sessions run over the topology's inter-AS links; routers inside
//!   an AS form a full iBGP mesh (sessions are TCP overlays, so the mesh
//!   exists regardless of the intra-AS link layout);
//! * each AS originates one prefix (from its lowest-id router);
//! * failures take down **all routers and links** in the failed region
//!   simultaneously; surviving session peers detect the loss after a
//!   configurable delay (zero by default — the paper never invokes hold
//!   timers and its delays start near seconds, implying link-layer
//!   notification);
//! * the convergence delay of a failure is the time from injection to the
//!   last routing-relevant event (message sent/delivered or processing
//!   completed) once the event queue quiesces.

use bgpsim_bgp::config::MraiPolicy;
use bgpsim_bgp::mrai::MraiScope;
use bgpsim_bgp::node::Action;
use bgpsim_bgp::policy::{relationship_by_tier, PolicyMode, Relationship};
use bgpsim_bgp::queue::QueueDiscipline;
use bgpsim_bgp::{BgpNode, NodeConfig, Prefix, UpdateMsg};
use bgpsim_des::{Fel, FelKind, RngStreams, SimDuration, SimTime};
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::{AsId, RouterId, Topology};
use rand::Rng;
use std::sync::Arc;

use crate::metrics::RunStats;
use crate::scheme::{MraiAssignment, Scheme};

/// One sampled point of a convergence timeline (see
/// [`Network::enable_sampling`]).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub time: SimTime,
    /// Updates queued (not yet in service) across all live routers.
    pub queued_updates: usize,
    /// Routers with a batch in service.
    pub busy_routers: usize,
    /// Messages sent since the last counter reset.
    pub messages_so_far: u64,
    /// Mean dynamic-MRAI level over nodes running the dynamic scheme
    /// (0 if none do).
    pub mean_dynamic_level: f64,
}

/// How routers inside an AS exchange routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub enum IbgpMode {
    /// Full iBGP mesh (classic BGP; the default — what SSFNet models).
    #[default]
    FullMesh,
    /// A single route reflector per AS (RFC 4456): the lowest-id router
    /// peers with every other member, which peer only with it. Scales the
    /// session count from O(n²) to O(n) per AS at the cost of one extra
    /// intra-AS hop — and of the reflector as a single point of failure.
    RouteReflector,
}

/// How surviving routers learn that a session peer died.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DetectionMode {
    /// Link-layer notification after a fixed delay (the paper's implicit
    /// model; zero delay by default).
    LinkLayer(SimDuration),
    /// BGP hold-timer expiry: with keepalives every `hold/3`, a peer death
    /// is noticed `hold − U(0, hold/3)` after the failure (RFC 1771
    /// defaults: hold 90 s). Makes detection, not re-convergence, the
    /// dominant term — the ablation for the paper's instant-detection
    /// assumption.
    HoldTimer {
        /// The negotiated hold time.
        hold: SimDuration,
    },
}

/// Simulation-wide configuration.
/// Full-table workload: instead of the flat `prefixes_per_as` allocation
/// (every AS originates exactly `k` prefixes), the table is a power-law-
/// skewed per-AS block plan behind the IP-prefix layer
/// ([`bgpsim_bgp::iptrie`]): a few ASes originate thousands of prefixes,
/// the long tail one or two, totalling `total_prefixes` network-wide —
/// the §5 "200,000 destinations" observation made a real workload.
///
/// The plan is a pure function of `(as_count, total_prefixes, skew)` — no
/// RNG stream is touched — so full-table runs stay bit-reproducible and
/// byte-identical between the serial and sharded engines.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FullTableSpec {
    /// Total prefixes across the network (every AS originates at least
    /// one, so the realized table is `max(total_prefixes, as_count)`).
    pub total_prefixes: u32,
    /// Zipf exponent over the AS rank: `0.0` = uniform split, `1.0` =
    /// Internet-like concentration.
    pub skew: f64,
}

impl FullTableSpec {
    /// An Internet-like table: `total` prefixes, Zipf exponent 1.0.
    pub fn internet_like(total: u32) -> FullTableSpec {
        FullTableSpec {
            total_prefixes: total,
            skew: 1.0,
        }
    }
}

/// Simulation-wide configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// One-way link delay (paper: 25 ms on all links).
    pub link_delay: SimDuration,
    /// Delay between a failure and its detection by session peers.
    pub detection_delay: SimDuration,
    /// Failure-detection model (the fixed `detection_delay` applies in
    /// [`DetectionMode::LinkLayer`]).
    pub detection: DetectionMode,
    /// Prefixes originated per AS (paper: 1; the Internet holds thousands
    /// per AS — raising this scales the update load per failed AS, the
    /// §5 "200,000 destinations" observation).
    pub prefixes_per_as: usize,
    /// Full-table workload plan. When set it supersedes `prefixes_per_as`:
    /// prefix blocks are carved per AS from the power-law plan and interned
    /// through the longest-prefix-match trie (see [`FullTableSpec`]).
    pub full_table: Option<FullTableSpec>,
    /// Prefix originations are spread uniformly over this window at t = 0.
    pub origination_window: SimDuration,
    /// How nodes get their MRAI.
    pub mrai: MraiAssignment,
    /// Input-queue discipline at every node.
    pub queue: QueueDiscipline,
    /// MRAI scope.
    pub mrai_scope: MraiScope,
    /// RFC 1771 timer jitter.
    pub jitter: bool,
    /// Withdrawal rate limiting (WRATE).
    pub wrate: bool,
    /// iBGP-session MRAI.
    pub ibgp_mrai: SimDuration,
    /// Minimum per-update processing delay (paper: 1 ms).
    pub proc_min: SimDuration,
    /// Maximum per-update processing delay (paper: 30 ms).
    pub proc_max: SimDuration,
    /// Deshpande & Sikdar timer cancelling at every node.
    pub expedite_improvements: bool,
    /// Gao–Rexford policies with degree-inferred relationships.
    pub policy: bool,
    /// RFC 2439 route-flap damping on eBGP sessions.
    pub damping: Option<bgpsim_bgp::damping::DampingConfig>,
    /// Intra-AS session layout.
    pub ibgp_mode: IbgpMode,
    /// Explicit per-AS hierarchy tiers for policy relationships (indexed by
    /// AS index; lower = closer to the core). When `None`, tiers are
    /// inferred from the graph (BFS depth from the maximum k-core).
    /// Hierarchical topologies pass their ground-truth tiers here.
    pub policy_tiers: Option<Vec<usize>>,
    /// Shard count for the sharded event loop (conservative PDES with
    /// `link_delay` lookahead — see the `shard` module). `None` falls back
    /// to the `BGPSIM_SHARDS` environment variable, absent → 1 (serial).
    /// Any value yields bit-identical results; >1 buys wall-clock from
    /// cores inside a single trial.
    pub shards: Option<usize>,
    /// Parallel commit streams for the sharded loop's epoch commit: the
    /// recorded action traces are partitioned by destination prefix and
    /// applied on this many worker streams before the deterministic merge
    /// (see the `shard` module). `None` falls back to the
    /// `BGPSIM_COMMIT_STREAMS` environment variable, absent →
    /// `min(shards, available cores)`. Any value yields bit-identical
    /// results; the value is clamped to `1..=shards`.
    pub commit_streams: Option<usize>,
    /// Future-event-list backend. `None` falls back to the `BGPSIM_FEL`
    /// environment variable (`heap`/`calendar`), absent → binary heap.
    pub fel: Option<FelKind>,
    /// Root seed for all randomness in this run.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's defaults with MRAI 30 s everywhere.
    pub fn new(seed: u64) -> SimConfig {
        SimConfig {
            link_delay: SimDuration::from_millis(25),
            detection_delay: SimDuration::ZERO,
            detection: DetectionMode::LinkLayer(SimDuration::ZERO),
            prefixes_per_as: 1,
            full_table: None,
            origination_window: SimDuration::from_secs(1),
            mrai: MraiAssignment::Uniform(MraiPolicy::Constant(SimDuration::from_secs(30))),
            queue: QueueDiscipline::Fifo,
            mrai_scope: MraiScope::PerPeer,
            jitter: true,
            wrate: false,
            ibgp_mrai: SimDuration::ZERO,
            proc_min: SimDuration::from_millis(1),
            proc_max: SimDuration::from_millis(30),
            expedite_improvements: false,
            policy: false,
            damping: None,
            ibgp_mode: IbgpMode::FullMesh,
            policy_tiers: None,
            shards: None,
            commit_streams: None,
            fel: None,
            seed,
        }
    }

    /// The paper's defaults with the given scheme's MRAI assignment, queue
    /// discipline and ablation overrides applied.
    pub fn from_scheme(scheme: &Scheme, seed: u64) -> SimConfig {
        let mut cfg = SimConfig {
            mrai: scheme.mrai.clone(),
            queue: scheme.queue,
            ..SimConfig::new(seed)
        };
        let o = &scheme.overrides;
        if let Some(v) = o.jitter {
            cfg.jitter = v;
        }
        if let Some(v) = o.wrate {
            cfg.wrate = v;
        }
        if let Some(v) = o.detection_delay {
            cfg.detection_delay = v;
            cfg.detection = DetectionMode::LinkLayer(v);
        }
        if let Some(v) = o.hold_timer {
            cfg.detection = DetectionMode::HoldTimer { hold: v };
        }
        if let Some(v) = o.prefixes_per_as {
            cfg.prefixes_per_as = v;
        }
        if let Some(v) = o.full_table {
            cfg.full_table = Some(v);
        }
        if let Some(v) = o.mrai_scope {
            cfg.mrai_scope = v;
        }
        if let Some(v) = o.expedite_improvements {
            cfg.expedite_improvements = v;
        }
        if let Some(v) = o.proc_min {
            cfg.proc_min = v;
        }
        if let Some(v) = o.proc_max {
            cfg.proc_max = v;
        }
        if let Some(v) = o.link_delay {
            cfg.link_delay = v;
        }
        if let Some(v) = o.policy {
            cfg.policy = v;
        }
        if let Some(v) = o.damping {
            cfg.damping = Some(v);
        }
        if let Some(v) = o.ibgp_mode {
            cfg.ibgp_mode = v;
        }
        cfg
    }
}

/// Events exchanged through the scheduler.
#[derive(Clone, Debug)]
pub(crate) enum Ev {
    /// `node` originates one of its AS's prefixes.
    Originate { node: RouterId, prefix: Prefix },
    /// `node` stops originating `prefix` (burst-withdrawal injection):
    /// the inverse of `Originate` — the local route leaves the Loc-RIB
    /// and peers hear a withdrawal (or the best learned replacement).
    WithdrawOrigin { node: RouterId, prefix: Prefix },
    /// `msg` from `from` arrives at `to` after the link delay.
    Deliver {
        to: RouterId,
        from: RouterId,
        msg: UpdateMsg,
    },
    /// `node`'s in-service batch completes.
    ProcDone { node: RouterId },
    /// An MRAI timer of `node` towards `peer` expires.
    MraiExpiry {
        node: RouterId,
        peer: RouterId,
        prefix: Option<Prefix>,
        gen: u64,
    },
    /// `node` detects the loss of its session with `peer`.
    PeerDown { node: RouterId, peer: RouterId },
    /// `node` (re-)establishes its session with `peer`.
    PeerUp { node: RouterId, peer: RouterId },
    /// A flap-damping reuse timer of `node` for `peer`'s route expires.
    ReuseExpiry {
        node: RouterId,
        peer: RouterId,
        prefix: Prefix,
        gen: u64,
    },
}

/// Wall-clock gap between initial convergence and failure injection.
const FAILURE_GAP: SimDuration = SimDuration::from_secs(1);

/// Parses a count-valued configuration string (`BGPSIM_SHARDS`,
/// `BGPSIM_COMMIT_STREAMS`). `None` on anything that is not a
/// non-negative integer; `name` only labels the warning the env wrapper
/// prints. Split from the env read so the parsing is unit-testable
/// without racing other tests on process-global environment state.
pub(crate) fn parse_count(name: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: ignoring invalid {name}={raw:?} \
                 (expected a non-negative integer); running with the default"
            );
            None
        }
    }
}

/// Reads a count-valued environment variable, warning on stderr (with the
/// offending value) instead of silently falling back when it is invalid.
fn env_count(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    parse_count(name, &raw)
}

/// Resolves the epoch-commit stream count from the requested value
/// (config field or `BGPSIM_COMMIT_STREAMS`) and the resolved shard
/// count. Returns the stream count plus a flag that is true when the
/// caller asked for parallel streams (`> 1`) on a run that cannot use
/// them (`shards <= 1`): the request is clamped away, and the caller
/// warns on stderr so a mis-set variable does not silently evaporate.
/// Split from the env read for the same reason as [`parse_count`].
pub(crate) fn resolve_commit_streams(requested: Option<usize>, shards: usize) -> (usize, bool) {
    let ignored = matches!(requested, Some(r) if r > 1 && shards <= 1);
    let streams = requested
        .unwrap_or_else(|| {
            // Default: one stream per shard, but never more streams
            // than cores — on a single-core box the parallel apply
            // would only add channel traffic, so it stays inline.
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        })
        .clamp(1, shards);
    (streams, ignored)
}

/// Interns a node configuration in the network-level config arena: every
/// node built from identical settings shares one allocation, and snapshot
/// forks keep sharing it. A network has one to three distinct configs in
/// practice (the MRAI assignment is the only per-node part), so a linear
/// equality scan beats any hashing.
fn intern_node_config(arena: &mut Vec<Arc<NodeConfig>>, node_cfg: NodeConfig) -> Arc<NodeConfig> {
    if let Some(hit) = arena.iter().find(|c| ***c == node_cfg) {
        return Arc::clone(hit);
    }
    let shared = Arc::new(node_cfg);
    arena.push(Arc::clone(&shared));
    shared
}

/// Normalized router-id pair keying [`Network::dead_links`].
pub(crate) fn link_key(a: RouterId, b: RouterId) -> (u32, u32) {
    if a < b {
        (a.index() as u32, b.index() as u32)
    } else {
        (b.index() as u32, a.index() as u32)
    }
}

/// Hierarchy tiers for relationship inference, indexed by AS index: BFS
/// depth over the AS-level graph starting from the maximum-degree ASes
/// (tier 0, the "Tier-1" analogue). Every non-top AS has a neighbor one
/// tier up — a provider — so no customer cone is stranded behind a local
/// degree peak, mirroring how real AS hierarchies hang off the core.
fn as_tiers(topo: &Topology) -> Vec<usize> {
    let num_ases = topo.num_ases();
    // AS-level adjacency from inter-AS links.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_ases];
    for e in topo.edges() {
        let (a, b) = (
            topo.router(e.a()).as_id.index(),
            topo.router(e.b()).as_id.index(),
        );
        if a != b {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degrees: Vec<usize> = adj.iter().map(Vec::len).collect();

    // The "Tier-1" set: the maximum k-core of the AS graph — the engineered
    // clique in hierarchical topologies, the densest hub cluster elsewhere.
    // When the whole graph is one core (no density differentiation, e.g. a
    // path), fall back to the maximum-degree set.
    let core = as_core_numbers(&adj);
    let max_core = core.iter().copied().max().unwrap_or(0);
    let mut tier0: Vec<usize> = (0..num_ases).filter(|&a| core[a] == max_core).collect();
    if tier0.len() == num_ases {
        let top = degrees.iter().copied().max().unwrap_or(0);
        tier0 = (0..num_ases).filter(|&a| degrees[a] == top).collect();
    }

    let mut tier = vec![usize::MAX; num_ases];
    let mut queue = std::collections::VecDeque::new();
    for a in tier0 {
        tier[a] = 0;
        queue.push_back(a);
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if tier[v] == usize::MAX {
                tier[v] = tier[u] + 1;
                queue.push_back(v);
            }
        }
    }
    // Isolated ASes (no inter-AS links) sit at the bottom.
    for t in &mut tier {
        if *t == usize::MAX {
            *t = num_ases;
        }
    }
    tier
}

/// Builds the per-node BGP configuration for `r` under `cfg` — the MRAI
/// assignment is the only per-node part (degree-dependent and dynamic-at-
/// hubs schemes read the router's degree).
fn build_node_config(cfg: &SimConfig, topo: &Topology, r: RouterId) -> NodeConfig {
    // In route-reflector mode the lowest-id member of each AS reflects.
    let route_reflector = cfg.ibgp_mode == IbgpMode::RouteReflector
        && topo.as_members(topo.router(r).as_id).first() == Some(&r);
    let mrai = match &cfg.mrai {
        MraiAssignment::Uniform(p) => p.clone(),
        MraiAssignment::DegreeDependent {
            high_degree_min,
            low,
            high,
        } => {
            if topo.degree(r) >= *high_degree_min {
                MraiPolicy::Constant(*high)
            } else {
                MraiPolicy::Constant(*low)
            }
        }
        MraiAssignment::DynamicAtHighDegree {
            high_degree_min,
            low,
            dynamic,
        } => {
            if topo.degree(r) >= *high_degree_min {
                MraiPolicy::Dynamic(dynamic.clone())
            } else {
                MraiPolicy::Constant(*low)
            }
        }
        MraiAssignment::OracleFailureSize { table } => {
            // Before the failure, nodes run the smallest MRAI (the common
            // small-failure case); the oracle retunes them at injection.
            MraiPolicy::Constant(table.first().expect("oracle table must not be empty").1)
        }
    };
    NodeConfig {
        mrai,
        mrai_scope: cfg.mrai_scope,
        ibgp_mrai: cfg.ibgp_mrai,
        jitter: cfg.jitter,
        withdrawal_rate_limiting: cfg.wrate,
        proc_min: cfg.proc_min,
        proc_max: cfg.proc_max,
        queue: cfg.queue,
        expedite_improvements: cfg.expedite_improvements,
        policy: if cfg.policy {
            PolicyMode::GaoRexford
        } else {
            PolicyMode::None
        },
        damping: cfg.damping,
        route_reflector,
    }
}

/// K-core numbers of the AS-level graph (peeling with running max).
fn as_core_numbers(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut removed = vec![false; n];
    let mut core = vec![0usize; n];
    let mut max_peel = 0usize;
    for _ in 0..n {
        let Some(u) = (0..n).filter(|&i| !removed[i]).min_by_key(|&i| degree[i]) else {
            break;
        };
        max_peel = max_peel.max(degree[u]);
        core[u] = max_peel;
        removed[u] = true;
        for &v in &adj[u] {
            if !removed[v] {
                degree[v] = degree[v].saturating_sub(1);
            }
        }
    }
    core
}

/// Routing-state memory accounting for a whole network, as reported by
/// [`Network::memory_footprint`]. All byte counts are *heap held by the
/// routing state* (Adj-RIBs-In, Loc-RIBs, delta Adj-RIBs-Out, per-peer
/// queues and in-service batches), not process RSS — pair with a
/// `VmHWM` read for the latter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Route entries currently held across all live routers
    /// (Adj-RIB-In entries plus Loc-RIB selections).
    pub routes: usize,
    /// Total routing-state heap bytes across all live routers.
    pub rib_heap_bytes: usize,
    /// Largest single router's routing-state heap — the per-node
    /// high-water mark (hubs dominate on skewed topologies).
    pub max_node_rib_heap_bytes: usize,
    /// Distinct `NodeConfig` allocations in the interned config arena.
    pub config_arena_entries: usize,
}

impl MemoryFootprint {
    /// Average routing-state heap bytes per held route (0 when empty).
    pub fn bytes_per_route(&self) -> f64 {
        if self.routes == 0 {
            0.0
        } else {
            self.rib_heap_bytes as f64 / self.routes as f64
        }
    }
}

/// A fully wired simulated network.
///
/// Typical lifecycle: [`new`](Network::new) →
/// [`run_initial_convergence`](Network::run_initial_convergence) →
/// [`inject_failure`](Network::inject_failure) →
/// [`run_to_quiescence`](Network::run_to_quiescence); or just
/// [`run_failure_experiment`](Network::run_failure_experiment) for the
/// whole pipeline.
///
/// # Example
///
/// ```
/// use bgpsim::network::{Network, SimConfig};
/// use bgpsim::Scheme;
/// use bgpsim_topology::degree::SkewedSpec;
/// use bgpsim_topology::generators::skewed_topology;
/// use bgpsim_topology::region::FailureSpec;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let topo = skewed_topology(25, &SkewedSpec::seventy_thirty(), &mut rng)?;
/// let mut net = Network::new(topo, SimConfig::from_scheme(&Scheme::batching(0.5), 7));
/// let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.1));
/// assert!(stats.messages > 0);
/// net.assert_routing_consistent(); // panics if any route disagrees with
///                                  // ground-truth reachability
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
///
/// `Network` is `Clone`: a clone captures the complete simulation state —
/// every router's RIBs, timers, queue, RNG position and stats, plus the
/// scheduler's pending events, clock and counters — and continues
/// bit-identically to the original. The interned `Arc<[AsId]>` AS paths
/// make this cheap (refcount bumps instead of deep path copies); the
/// warm-start sweep engine ([`crate::warm`]) builds on it.
#[derive(Clone)]
pub struct Network {
    pub(crate) topo: Topology,
    pub(crate) cfg: SimConfig,
    pub(crate) sched: Fel<Ev>,
    pub(crate) nodes: Vec<Option<BgpNode>>,
    /// Deduplicated node configurations (see [`intern_node_config`]):
    /// every node — including revived ones — holds an `Arc` into this
    /// arena instead of its own copy.
    cfg_arena: Vec<Arc<NodeConfig>>,
    /// Session peers per router (eBGP link neighbors + iBGP full mesh).
    pub(crate) sessions: Vec<Vec<RouterId>>,
    /// Router that originates each prefix, indexed by the prefix's dense
    /// slot (slots are handed out by `prefix_table` in allocation order;
    /// for the default flat workload slot == `as_index · k + j`).
    origin_of_prefix: Vec<RouterId>,
    /// The IP-prefix naming layer: CIDR prefix per slot, longest-prefix
    /// match, and the burst-teardown block queries. Slots are stable for
    /// the lifetime of the run (see `bgpsim_bgp::iptrie::PrefixTable`).
    prefix_table: bgpsim_bgp::PrefixTable,
    /// First prefix slot of each AS (`len == num_ases + 1`): AS `a`
    /// originates the contiguous slot range `first_slot_of_as[a] ..
    /// first_slot_of_as[a + 1]`.
    first_slot_of_as: Vec<u32>,
    /// Prefixes withdrawn by burst injection and not re-originated since.
    /// Maintained at injection/revival time only (never from the event
    /// loop), so serial and sharded runs see identical bookkeeping; the
    /// ground-truth validators treat these as expected-unreachable.
    withdrawn: std::collections::BTreeSet<Prefix>,
    pub(crate) last_activity: SimTime,
    pub(crate) announcements: u64,
    pub(crate) withdrawals: u64,
    failure_time: Option<SimTime>,
    failed_count: usize,
    initial_convergence: SimDuration,
    events_at_failure: u64,
    sample_interval: Option<SimDuration>,
    next_sample: SimTime,
    samples: Vec<Sample>,
    /// Failed links (normalized router-id pairs); their sessions are dead
    /// but the endpoint routers live on.
    pub(crate) dead_links: std::collections::HashSet<(u32, u32)>,
    /// Resolved shard count for the event loop (1 = serial).
    pub(crate) shards: usize,
    /// Resolved parallel commit-stream count for the sharded loop's epoch
    /// commit (1 = inline serial apply); always `<= shards`.
    pub(crate) commit_streams: usize,
    /// Accumulated per-phase wall-clock spent in the sharded event loop
    /// (empty for serial runs). Instrumentation only — never part of
    /// `RunStats`, so bit-identity comparisons are unaffected.
    pub(crate) shard_timings: crate::shard::ShardPhaseTimings,
    /// Structured trace sink ([`TraceSink::Off`] by default — one branch
    /// per handler). Events are recorded in global delivery order, so the
    /// stream is identical under any shard count.
    pub(crate) trace: crate::trace::TraceSink,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("routers", &self.topo.num_routers())
            .field("ases", &self.topo.num_ases())
            .field("now", &self.sched.now())
            .field("failed", &self.failed_count)
            .finish()
    }
}

impl Network {
    /// Wires a network: one BGP router per topology router, eBGP sessions
    /// on inter-AS links, a full iBGP mesh inside each AS.
    pub fn new(topo: Topology, cfg: SimConfig) -> Network {
        let streams = RngStreams::new(cfg.seed);
        let n = topo.num_routers();

        // Session graph.
        let mut sessions: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        for e in topo.edges() {
            if topo.is_inter_as(e.a(), e.b()) {
                sessions[e.a().index()].push(e.b());
                sessions[e.b().index()].push(e.a());
            }
        }
        for as_id in topo.as_ids() {
            let members = topo.as_members(as_id);
            match cfg.ibgp_mode {
                IbgpMode::FullMesh => {
                    for (i, &a) in members.iter().enumerate() {
                        for &b in &members[i + 1..] {
                            sessions[a.index()].push(b);
                            sessions[b.index()].push(a);
                        }
                    }
                }
                IbgpMode::RouteReflector => {
                    if let Some((&reflector, clients)) = members.split_first() {
                        for &c in clients {
                            sessions[reflector.index()].push(c);
                            sessions[c.index()].push(reflector);
                        }
                    }
                }
            }
        }
        for list in &mut sessions {
            list.sort();
            list.dedup();
        }

        // Per-node configs.
        let tiers = if cfg.policy {
            match &cfg.policy_tiers {
                Some(t) => {
                    assert_eq!(
                        t.len(),
                        topo.num_ases(),
                        "policy_tiers must have one entry per AS"
                    );
                    t.clone()
                }
                None => as_tiers(&topo),
            }
        } else {
            Vec::new()
        };
        let mut nodes: Vec<Option<BgpNode>> = Vec::with_capacity(n);
        let mut cfg_arena: Vec<Arc<NodeConfig>> = Vec::new();
        for r in topo.router_ids() {
            let node_cfg = intern_node_config(&mut cfg_arena, build_node_config(&cfg, &topo, r));
            let as_id = topo.router(r).as_id;
            let mut node = BgpNode::with_shared_config(
                r,
                as_id,
                node_cfg,
                streams.stream("node", r.index() as u64),
            );
            for &peer in &sessions[r.index()] {
                let ibgp = !topo.is_inter_as(r, peer);
                if cfg.policy && !ibgp {
                    // Relationships are an AS-level property, inferred from
                    // hierarchy tiers (BFS depth from the top-degree ASes):
                    // the AS closer to the core provides; equal tiers peer.
                    let rel = relationship_by_tier(
                        tiers[topo.router(r).as_id.index()],
                        tiers[topo.router(peer).as_id.index()],
                    );
                    node.add_peer_with_relationship(peer, ibgp, rel);
                } else {
                    node.add_peer(peer, ibgp);
                }
            }
            nodes.push(Some(node));
        }

        // Prefix allocation goes through the IP-prefix layer in every
        // mode: the per-AS block plan is carved contiguously out of
        // 10.0.0.0/8 in AS order, and interning each address into the trie
        // hands out the dense slot the RIB rows are keyed by. The default
        // (no `full_table`) plan is the uniform split — exactly
        // `prefixes_per_as` prefixes per AS, so slot == as_index · k + j,
        // byte-identical to the historical flat allocator. Every prefix is
        // originated by its AS's lowest-id member.
        let k = cfg.prefixes_per_as.max(1);
        let plan = match cfg.full_table {
            Some(spec) => bgpsim_topology::prefixes::PrefixPlan {
                total: spec.total_prefixes,
                skew: spec.skew,
            },
            None => bgpsim_topology::prefixes::PrefixPlan::uniform((topo.num_ases() * k) as u32),
        };
        let blocks = plan.blocks(topo.num_ases());
        let mut prefix_table = bgpsim_bgp::PrefixTable::new();
        let mut origin_of_prefix: Vec<RouterId> =
            Vec::with_capacity(blocks.iter().map(|b| b.count as usize).sum());
        let mut first_slot_of_as: Vec<u32> = Vec::with_capacity(topo.num_ases() + 1);
        for (a, block) in topo.as_ids().zip(&blocks) {
            let origin = *topo.as_members(a).first().expect("AS has members");
            first_slot_of_as.push(origin_of_prefix.len() as u32);
            for j in 0..block.count {
                let slot = prefix_table.intern(bgpsim_bgp::IpPrefix::new(block.addr(j), 32));
                debug_assert_eq!(slot.index(), origin_of_prefix.len());
                origin_of_prefix.push(origin);
            }
        }
        first_slot_of_as.push(origin_of_prefix.len() as u32);
        debug_assert!(
            cfg.full_table.is_some() || origin_of_prefix.len() == topo.num_ases() * k,
            "the uniform plan must reproduce the flat allocator"
        );

        let shards = cfg
            .shards
            .or_else(|| env_count("BGPSIM_SHARDS"))
            .unwrap_or(1)
            .max(1);
        let requested_streams = cfg
            .commit_streams
            .or_else(|| env_count("BGPSIM_COMMIT_STREAMS"));
        let (commit_streams, streams_ignored) = resolve_commit_streams(requested_streams, shards);
        if streams_ignored {
            // Warn once per process, like `parse_count` does for garbage
            // values: asking for parallel commit streams on a serial run
            // is a configuration mistake worth a line on stderr, not a
            // silent no-op — but not one line per constructed network.
            static STREAMS_IGNORED_WARN: std::sync::Once = std::sync::Once::new();
            STREAMS_IGNORED_WARN.call_once(|| {
                eprintln!(
                    "warning: ignoring BGPSIM_COMMIT_STREAMS={} with shards={shards} \
                     (parallel epoch commit needs a sharded run, BGPSIM_SHARDS > 1); \
                     running with 1 stream",
                    requested_streams.expect("flag only set when a value was requested"),
                );
            });
        }
        let fel_kind = cfg.fel.or_else(FelKind::from_env).unwrap_or_default();

        Network {
            topo,
            cfg,
            sched: Fel::new(fel_kind),
            nodes,
            cfg_arena,
            sessions,
            origin_of_prefix,
            prefix_table,
            first_slot_of_as,
            withdrawn: std::collections::BTreeSet::new(),
            last_activity: SimTime::ZERO,
            announcements: 0,
            withdrawals: 0,
            failure_time: None,
            failed_count: 0,
            initial_convergence: SimDuration::ZERO,
            events_at_failure: 0,
            sample_interval: None,
            next_sample: SimTime::ZERO,
            samples: Vec::new(),
            dead_links: std::collections::HashSet::new(),
            shards,
            commit_streams,
            shard_timings: crate::shard::ShardPhaseTimings::default(),
            trace: crate::trace::TraceSink::Off,
        }
    }

    /// Attaches a structured trace sink (see the [`trace`](crate::trace)
    /// module) and turns node-level event recording on or off to match.
    /// Call at any point — typically right after
    /// [`inject_failure`](Network::inject_failure) to trace only the
    /// re-convergence. Replacing an active sink discards the old one.
    pub fn set_trace_sink(&mut self, sink: crate::trace::TraceSink) {
        let on = !sink.is_off();
        self.trace = sink;
        for node in self.nodes.iter_mut().flatten() {
            node.set_tracing(on);
        }
    }

    /// The attached trace sink.
    pub fn trace_sink(&self) -> &crate::trace::TraceSink {
        &self.trace
    }

    /// Mutable access to the trace sink (flushing a JSONL stream,
    /// draining a memory buffer).
    pub fn trace_sink_mut(&mut self) -> &mut crate::trace::TraceSink {
        &mut self.trace
    }

    /// Drains a [`TraceSink::Memory`](crate::trace::TraceSink::Memory)
    /// buffer (empty for other sinks).
    pub fn take_trace_events(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.take_events()
    }

    /// Stamps and records the events `node` buffered while its handler
    /// ran at `t`. Serial-loop counterpart of the Phase B commit emission
    /// in the `shard` module; both record in global delivery order.
    #[inline]
    fn drain_node_trace(&mut self, node: RouterId, t: SimTime) {
        if self.trace.is_off() {
            return;
        }
        let events = match self.nodes[node.index()].as_mut() {
            Some(n) => n.take_trace(),
            None => return,
        };
        for ev in events {
            self.trace.record(t, node, ev);
        }
    }

    /// The resolved shard count the event loop runs with (1 = serial).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The resolved parallel commit-stream count for the sharded loop's
    /// epoch commit (1 = inline serial apply). Always `<= shard_count()`;
    /// purely a wall-clock knob — results are identical for any value.
    pub fn commit_stream_count(&self) -> usize {
        self.commit_streams
    }

    /// Accumulated per-phase wall-clock of the sharded event loop across
    /// every pump this network has run (all-zero for serial runs).
    pub fn shard_phase_timings(&self) -> crate::shard::ShardPhaseTimings {
        self.shard_timings
    }

    /// The future-event-list backend this network uses.
    pub fn fel_kind(&self) -> FelKind {
        self.sched.kind()
    }

    /// Distinct [`NodeConfig`] allocations in the interned config arena.
    /// Homogeneous networks intern down to a single entry regardless of
    /// node count; degree-dependent MRAI adds one entry per distinct
    /// degree class.
    pub fn config_arena_len(&self) -> usize {
        self.cfg_arena.len()
    }

    /// Measures the routing-state heap of every live router plus the
    /// config arena — the numbers behind the `memory` section of the
    /// hotpath benchmark and the `largescale` smoke bin (DESIGN.md §12).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let mut f = MemoryFootprint {
            config_arena_entries: self.cfg_arena.len(),
            ..MemoryFootprint::default()
        };
        for node in self.nodes.iter().flatten() {
            let bytes = node.rib_heap_bytes();
            f.routes += node.route_count();
            f.rib_heap_bytes += bytes;
            f.max_node_rib_heap_bytes = f.max_node_rib_heap_bytes.max(bytes);
        }
        f
    }

    /// Whether the session between `a` and `b` is up (both routers alive
    /// and, for link-borne eBGP sessions, the link not failed). iBGP
    /// sessions are TCP overlays and only die with their routers.
    fn session_alive(&self, a: RouterId, b: RouterId) -> bool {
        if !self.is_alive(a) || !self.is_alive(b) {
            return false;
        }
        !self.dead_links.contains(&link_key(a, b))
    }

    /// Fails a set of *links* at one second past the current time: the
    /// eBGP sessions riding them go down (both ends get peer-down events)
    /// but the routers survive — the scenario the paper sets aside as
    /// unlikely for large-scale failures (§3.2), provided here to quantify
    /// the difference. Links inside an AS carry no session in this model
    /// (iBGP is a TCP overlay) and are ignored.
    ///
    /// Post-failure counters are reset, as in
    /// [`inject_failure`](Network::inject_failure).
    pub fn inject_link_failure(&mut self, links: &[bgpsim_topology::graph::Edge]) {
        let t_f = self.sched.now() + FAILURE_GAP;
        let mut killed = 0usize;
        for e in links {
            let (a, b) = (e.a(), e.b());
            if !self.topo.is_inter_as(a, b) {
                continue;
            }
            let inserted = self.dead_links.insert((a.index() as u32, b.index() as u32));
            if !inserted {
                continue;
            }
            killed += 1;
            for (node, peer) in [(a, b), (b, a)] {
                if self.is_alive(node) {
                    self.sched
                        .schedule(t_f + self.cfg.detection_delay, Ev::PeerDown { node, peer });
                }
            }
        }
        for node in self.nodes.iter_mut().flatten() {
            node.reset_stats();
        }
        self.announcements = 0;
        self.withdrawals = 0;
        self.failure_time = Some(t_f);
        self.last_activity = t_f;
        self.failed_count = killed;
        self.events_at_failure = self.sched.delivered_count();
    }

    /// Turns on timeline sampling: every `interval` of simulated time a
    /// [`Sample`] of network-wide state (queue backlog, busy routers,
    /// message count, mean dynamic-MRAI level) is recorded. Call before
    /// running; read the result with [`samples`](Network::samples).
    pub fn enable_sampling(&mut self, interval: SimDuration) {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        self.sample_interval = Some(interval);
        self.next_sample = self.sched.now() + interval;
    }

    /// The recorded timeline (empty unless
    /// [`enable_sampling`](Network::enable_sampling) was called).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    fn take_sample(&mut self, at: SimTime) {
        let mut queued = 0usize;
        let mut busy = 0usize;
        let mut level_sum = 0usize;
        let mut level_count = 0usize;
        for node in self.nodes.iter().flatten() {
            queued += node.queue_len();
            busy += usize::from(node.is_busy());
            if let Some(level) = node.dynamic_level() {
                level_sum += level;
                level_count += 1;
            }
        }
        self.samples.push(Sample {
            time: at,
            queued_updates: queued,
            busy_routers: busy,
            messages_so_far: self.messages_sent(),
            mean_dynamic_level: if level_count == 0 {
                0.0
            } else {
                level_sum as f64 / level_count as f64
            },
        });
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Whether `r` is still alive (not failed).
    pub fn is_alive(&self, r: RouterId) -> bool {
        self.nodes
            .get(r.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Read access to a live router.
    pub fn node(&self, r: RouterId) -> Option<&BgpNode> {
        self.nodes.get(r.index())?.as_ref()
    }

    /// The first prefix originated by `as_id` (ASes originate a contiguous
    /// slot block starting here — `prefixes_per_as` slots in the default
    /// workload, the power-law block in full-table mode).
    pub fn prefix_of_as(&self, as_id: AsId) -> Prefix {
        Prefix::new(self.first_slot_of_as[as_id.index()])
    }

    /// How many prefixes `as_id` originates.
    pub fn prefix_count_of_as(&self, as_id: AsId) -> usize {
        let a = as_id.index();
        (self.first_slot_of_as[a + 1] - self.first_slot_of_as[a]) as usize
    }

    /// Total prefixes in the routing table (== the dense slot count).
    pub fn table_size(&self) -> usize {
        self.origin_of_prefix.len()
    }

    /// The CIDR prefix behind a dense slot.
    pub fn ip_of_prefix(&self, prefix: Prefix) -> Option<bgpsim_bgp::IpPrefix> {
        self.prefix_table.ip_of(prefix)
    }

    /// The IP-prefix naming layer (longest-prefix match, block queries).
    pub fn prefix_table(&self) -> &bgpsim_bgp::PrefixTable {
        &self.prefix_table
    }

    /// Prefixes withdrawn by burst injection and not re-originated since.
    pub fn withdrawn_prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.withdrawn.iter().copied()
    }

    /// Validates an externally supplied prefix against the configured
    /// table. Every scenario/injection entry point that accepts prefixes
    /// calls this once at the boundary — the RIB hot paths index dense
    /// rows by slot and must never see an out-of-range `Prefix` (it would
    /// silently grow every row table it touches).
    pub fn check_prefix(&self, prefix: Prefix) -> Result<(), String> {
        let n = self.origin_of_prefix.len();
        if prefix.index() < n {
            Ok(())
        } else {
            Err(format!(
                "prefix index {} out of range: this network's table has {n} prefixes \
                 (the allocation is fixed at Network::new from SimConfig::prefixes_per_as \
                 or SimConfig::full_table)",
                prefix.index()
            ))
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// When the last injected failure (or revival) takes effect — the `t0`
    /// settle times and trace timelines are measured from. `None` before
    /// any injection.
    pub fn failure_time(&self) -> Option<SimTime> {
        self.failure_time
    }

    /// Update messages sent since the last counter reset.
    pub fn messages_sent(&self) -> u64 {
        self.announcements + self.withdrawals
    }

    /// Originates every AS's prefix (uniformly spread over the origination
    /// window) and runs the network until it quiesces. Returns how long the
    /// initial convergence took.
    pub fn run_initial_convergence(&mut self) -> SimDuration {
        let streams = RngStreams::new(self.cfg.seed);
        let mut rng = streams.stream("originate", 0);
        // Index loop: scheduling needs `&mut self.sched`, so iterating a
        // borrowed `&self.origin_of_prefix` would force cloning the whole
        // Vec; indexing re-borrows per iteration instead.
        for idx in 0..self.origin_of_prefix.len() {
            let origin = self.origin_of_prefix[idx];
            let at = SimTime::from_nanos(rng.gen_range(0..=self.cfg.origination_window.as_nanos()));
            let prefix = Prefix::new(idx as u32);
            self.sched.schedule(
                at,
                Ev::Originate {
                    node: origin,
                    prefix,
                },
            );
        }
        self.pump();
        self.initial_convergence = self.last_activity.saturating_since(SimTime::ZERO);
        self.initial_convergence
    }

    /// Fails `region` at one second past the current time: the selected
    /// routers (and all their links/sessions) go down simultaneously, and
    /// every surviving session peer gets a peer-down detection event.
    ///
    /// Post-failure counters (messages, queue peaks, node stats) are reset
    /// so [`run_to_quiescence`](Network::run_to_quiescence) measures only
    /// re-convergence activity.
    ///
    /// Returns the failed routers.
    pub fn inject_failure(&mut self, region: &FailureSpec) -> Vec<RouterId> {
        let streams = RngStreams::new(self.cfg.seed);
        let mut rng = streams.stream("failure", 0);
        let failed = region.resolve(&self.topo, &mut rng);
        let t_f = self.sched.now() + FAILURE_GAP;

        for &f in &failed {
            self.nodes[f.index()] = None;
        }
        self.failed_count = failed.len();

        // Surviving session peers detect the loss.
        let mut detect_rng = streams.stream("detection", 1);
        for &f in &failed {
            for &peer in &self.sessions[f.index()] {
                if self.is_alive(peer) {
                    let lag = match self.cfg.detection {
                        DetectionMode::LinkLayer(_) => self.cfg.detection_delay,
                        DetectionMode::HoldTimer { hold } => {
                            // Keepalives every hold/3: the timer has between
                            // 2·hold/3 and hold left when the peer dies.
                            let slack = detect_rng.gen_range(0..=hold.as_nanos() / 3);
                            hold.saturating_sub(SimDuration::from_nanos(slack))
                        }
                    };
                    self.sched.schedule(
                        t_f + lag,
                        Ev::PeerDown {
                            node: peer,
                            peer: f,
                        },
                    );
                }
            }
        }

        // The oracle scheme retunes every surviving node to the table row
        // covering the actual failure size (paper §5 future work: "set the
        // MRAI consistent with the extent of failure").
        if let MraiAssignment::OracleFailureSize { table } = &self.cfg.mrai {
            let fraction = failed.len() as f64 / self.topo.num_routers() as f64;
            let chosen = table
                .iter()
                .find(|&&(max_f, _)| fraction <= max_f)
                .or_else(|| table.last())
                .expect("oracle table must not be empty")
                .1;
            for node in self.nodes.iter_mut().flatten() {
                node.set_constant_mrai(chosen);
            }
        }

        // Measure only post-failure activity.
        for node in self.nodes.iter_mut().flatten() {
            node.reset_stats();
        }
        self.announcements = 0;
        self.withdrawals = 0;
        self.failure_time = Some(t_f);
        self.last_activity = t_f;
        self.events_at_failure = self.sched.delivered_count();
        failed
    }

    /// Burst-withdrawal failure: every prefix originated inside `region`
    /// is withdrawn by its origin in one event storm at one second past
    /// the current time. The origins themselves stay up — this models a
    /// regional service teardown (depeering, prefix-block outage) rather
    /// than router death, so the storm is pure withdrawal traffic: the
    /// dimension that stresses per-destination batching queues and the
    /// unfinished-work detector at full-table scale.
    ///
    /// Counters are reset like [`inject_failure`](Network::inject_failure)
    /// so [`run_to_quiescence`](Network::run_to_quiescence) measures only
    /// the storm's re-convergence. Returns the withdrawn prefixes.
    pub fn inject_burst_withdrawal(&mut self, region: &FailureSpec) -> Vec<Prefix> {
        let streams = RngStreams::new(self.cfg.seed);
        let mut rng = streams.stream("failure", 0);
        let routers = region.resolve(&self.topo, &mut rng);
        let mut in_region = vec![false; self.topo.num_routers()];
        for &r in &routers {
            in_region[r.index()] = true;
        }
        let prefixes: Vec<Prefix> = self
            .origin_of_prefix
            .iter()
            .enumerate()
            .filter(|&(p_idx, &origin)| {
                in_region[origin.index()]
                    && self.is_alive(origin)
                    && !self.withdrawn.contains(&Prefix::new(p_idx as u32))
            })
            .map(|(p_idx, _)| Prefix::new(p_idx as u32))
            .collect();
        self.schedule_withdrawal_storm(&prefixes);
        prefixes
    }

    /// Withdraws an explicit prefix set in one event storm (the scripted
    /// counterpart of [`inject_burst_withdrawal`](Network::inject_burst_withdrawal)).
    ///
    /// This is the network/scenario boundary for externally supplied
    /// prefixes: each one is bounds-checked against the configured table
    /// *before* anything is scheduled, and an out-of-range prefix returns
    /// a descriptive error with the network untouched — it must never
    /// reach the dense RIB rows, which index by slot unchecked on their
    /// hot paths. Returns how many withdrawals were scheduled (already
    /// withdrawn or dead-origin prefixes are skipped).
    pub fn inject_prefix_withdrawals(&mut self, prefixes: &[Prefix]) -> Result<usize, String> {
        for &p in prefixes {
            self.check_prefix(p)?;
        }
        let live: Vec<Prefix> = prefixes
            .iter()
            .copied()
            .filter(|&p| {
                self.is_alive(self.origin_of_prefix[p.index()]) && !self.withdrawn.contains(&p)
            })
            .collect();
        self.schedule_withdrawal_storm(&live);
        Ok(live.len())
    }

    /// Schedules one `WithdrawOrigin` per prefix at `now + FAILURE_GAP`
    /// and resets the measurement counters to the storm.
    fn schedule_withdrawal_storm(&mut self, prefixes: &[Prefix]) {
        let t_f = self.sched.now() + FAILURE_GAP;
        for &p in prefixes {
            self.withdrawn.insert(p);
            self.sched.schedule(
                t_f,
                Ev::WithdrawOrigin {
                    node: self.origin_of_prefix[p.index()],
                    prefix: p,
                },
            );
        }
        for node in self.nodes.iter_mut().flatten() {
            node.reset_stats();
        }
        self.announcements = 0;
        self.withdrawals = 0;
        self.failure_time = Some(t_f);
        self.last_activity = t_f;
        self.events_at_failure = self.sched.delivered_count();
    }

    /// Runs until the event queue drains and reports the re-convergence.
    ///
    /// # Panics
    ///
    /// Panics if called before [`inject_failure`](Network::inject_failure).
    pub fn run_to_quiescence(&mut self) -> RunStats {
        let failure_time = self
            .failure_time
            .expect("inject_failure must be called before run_to_quiescence");
        self.pump();
        let mut stats = RunStats {
            convergence_delay: self.last_activity.saturating_since(failure_time),
            messages: self.messages_sent(),
            announcements: self.announcements,
            withdrawals: self.withdrawals,
            failed_routers: self.failed_count,
            events: self.sched.delivered_count() - self.events_at_failure,
            initial_convergence: self.initial_convergence,
            ..RunStats::default()
        };
        for node in self.nodes.iter().flatten() {
            let s = node.stats();
            stats.updates_processed += s.updates_processed;
            stats.decision_runs += s.decision_runs;
            stats.full_rescans += s.full_rescans;
            stats.fast_decisions += s.fast_decisions;
            stats.stale_deleted += node.stale_deleted();
            stats.peak_queue = stats.peak_queue.max(node.queue_peak());
        }
        stats
    }

    /// The whole pipeline: initial convergence, failure, re-convergence.
    pub fn run_failure_experiment(&mut self, region: &FailureSpec) -> RunStats {
        self.run_initial_convergence();
        self.inject_failure(region);
        self.run_to_quiescence()
    }

    /// Captures the complete simulation state into a forkable
    /// [`NetworkSnapshot`](crate::warm::NetworkSnapshot). Typically called
    /// right after [`run_initial_convergence`](Network::run_initial_convergence)
    /// so a whole failure sweep can fork the one converged state instead of
    /// re-converging from cold per point.
    pub fn snapshot(&self) -> crate::warm::NetworkSnapshot {
        crate::warm::NetworkSnapshot::capture(self)
    }

    /// The policy relationship of `peer` towards `node` (None when
    /// policies are off or the session is iBGP).
    fn relationship_between(&self, node: RouterId, peer: RouterId) -> Option<Relationship> {
        if !self.cfg.policy || !self.topo.is_inter_as(node, peer) {
            return None;
        }
        let tiers = self.policy_tier_vec();
        Some(relationship_by_tier(
            tiers[self.topo.router(node).as_id.index()],
            tiers[self.topo.router(peer).as_id.index()],
        ))
    }

    /// The per-AS hierarchy tiers policy relationships derive from —
    /// explicit configuration when given, graph-inferred otherwise. Pure
    /// in the topology/config, so the sharded loop precomputes it once per
    /// pump and shares it read-only across workers.
    pub(crate) fn policy_tier_vec(&self) -> Vec<usize> {
        match &self.cfg.policy_tiers {
            Some(t) => t.clone(),
            None => as_tiers(&self.topo),
        }
    }

    /// Brings previously failed routers back: each revived router starts
    /// with empty tables, re-originates its prefixes, and re-establishes
    /// every session whose other end is alive (both ends perform the
    /// initial full table exchange, RFC 1771 §3). The activity clock and
    /// counters are reset so [`run_to_quiescence`](Network::run_to_quiescence)
    /// measures the *recovery* convergence ("Tup" in Labovitz et al. \[5\],
    /// the complement of the failure events the paper studies).
    pub fn revive_routers(&mut self, routers: &[RouterId]) {
        let streams = RngStreams::new(self.cfg.seed);
        let t_up = self.sched.now() + FAILURE_GAP;
        for &r in routers {
            assert!(
                self.nodes[r.index()].is_none(),
                "revive_routers: router {r} is already alive"
            );
            let built = self.node_config_for(r);
            let node_cfg = intern_node_config(&mut self.cfg_arena, built);
            let as_id = self.topo.router(r).as_id;
            let mut node = BgpNode::with_shared_config(
                r,
                as_id,
                node_cfg,
                streams.stream("node-revived", r.index() as u64),
            );
            node.set_tracing(!self.trace.is_off());
            self.nodes[r.index()] = Some(node);
        }
        // Sessions and originations come up at t_up.
        for &r in routers {
            for (p_idx, &origin) in self.origin_of_prefix.iter().enumerate() {
                if origin == r {
                    let prefix = Prefix::new(p_idx as u32);
                    // A revived origin re-announces everything it owns,
                    // including prefixes a burst had withdrawn.
                    self.withdrawn.remove(&prefix);
                    self.sched.schedule(t_up, Ev::Originate { node: r, prefix });
                }
            }
            for &peer in &self.sessions[r.index()] {
                // A session only comes back if its peer is alive AND the
                // link carrying it (for eBGP sessions) has not itself been
                // failed via `inject_link_failure`.
                if self.session_alive(r, peer) {
                    self.sched.schedule(t_up, Ev::PeerUp { node: r, peer });
                    // The reverse direction: co-revived peers schedule their
                    // own half in their loop iteration.
                    if !routers.contains(&peer) {
                        self.sched.schedule(
                            t_up,
                            Ev::PeerUp {
                                node: peer,
                                peer: r,
                            },
                        );
                    }
                }
            }
        }
        for node in self.nodes.iter_mut().flatten() {
            node.reset_stats();
        }
        self.announcements = 0;
        self.withdrawals = 0;
        self.failure_time = Some(t_up);
        self.last_activity = t_up;
        self.failed_count = 0;
        self.events_at_failure = self.sched.delivered_count();
    }

    /// The per-node configuration (used at construction and revival).
    fn node_config_for(&self, r: RouterId) -> NodeConfig {
        build_node_config(&self.cfg, &self.topo, r)
    }

    /// Drains the event queue.
    fn pump(&mut self) {
        // Keep node-level recording coherent with the sink before any
        // handler runs: cloning a JSONL-traced network (warm-start forks)
        // drops the sink — a byte stream must not be written by two
        // networks — but the cloned nodes still carry their tracing
        // flags, and without this sync their buffers would fill with no
        // one draining them.
        let tracing = !self.trace.is_off();
        for node in self.nodes.iter_mut().flatten() {
            node.set_tracing(tracing);
        }
        // The sharded loop (conservative PDES with link-delay lookahead,
        // bit-identical to serial — see the `shard` module) needs a
        // non-zero lookahead and cannot interleave timeline sampling,
        // which reads global state mid-epoch; those runs stay serial.
        // While sharded, `self.sched` is empty — pending events live in
        // the shard-owned FELs — but its id allocation and delivery
        // accounting still advance in serial order, so at quiescence the
        // scheduler's counters (and any snapshot taken of them) are
        // identical to a serial run's.
        if self.shards > 1 && self.sample_interval.is_none() && !self.cfg.link_delay.is_zero() {
            crate::shard::pump_sharded(self);
            return;
        }
        // Set BGPSIM_DEBUG_PUMP=1 to watch event-loop progress (useful
        // when diagnosing runaway simulations). Checked once per drain:
        // an env lookup takes the env lock, far too slow per event.
        let debug_pump = std::env::var_os("BGPSIM_DEBUG_PUMP").is_some();
        while let Some((t, ev)) = self.sched.next() {
            if debug_pump && self.sched.delivered_count().is_multiple_of(1_000_000) {
                eprintln!(
                    "[pump] events={} simtime={t} pending={}",
                    self.sched.delivered_count(),
                    self.sched.len()
                );
            }
            if let Some(interval) = self.sample_interval {
                while self.next_sample <= t {
                    let at = self.next_sample;
                    self.take_sample(at);
                    self.next_sample = at + interval;
                }
            }
            self.handle(t, ev);
        }
    }

    fn handle(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::Originate { node, prefix } => {
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                let actions = n.originate(t, prefix);
                self.last_activity = t;
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
            Ev::WithdrawOrigin { node, prefix } => {
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                let actions = n.withdraw_origin(t, prefix);
                self.last_activity = t;
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
            Ev::Deliver { to, from, msg } => {
                let Some(n) = self.nodes[to.index()].as_mut() else {
                    return;
                };
                self.last_activity = t;
                let actions = n.on_update(t, from, msg);
                self.drain_node_trace(to, t);
                self.exec(to, actions);
            }
            Ev::ProcDone { node } => {
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                self.last_activity = t;
                let actions = n.on_proc_done(t);
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
            Ev::MraiExpiry {
                node,
                peer,
                prefix,
                gen,
            } => {
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                let actions = n.on_mrai_expiry(t, peer, prefix, gen);
                if !actions.is_empty() {
                    self.last_activity = t;
                }
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
            Ev::PeerDown { node, peer } => {
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                let actions = n.on_peer_down(t, peer);
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
            Ev::ReuseExpiry {
                node,
                peer,
                prefix,
                gen,
            } => {
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                let actions = n.on_reuse_expiry(t, peer, prefix, gen);
                if !actions.is_empty() {
                    self.last_activity = t;
                }
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
            Ev::PeerUp { node, peer } => {
                if !self.session_alive(node, peer) {
                    return;
                }
                let ibgp = !self.topo.is_inter_as(node, peer);
                let rel = self.relationship_between(node, peer);
                let Some(n) = self.nodes[node.index()].as_mut() else {
                    return;
                };
                self.last_activity = t;
                let actions = n.on_peer_up(t, peer, ibgp, rel);
                self.drain_node_trace(node, t);
                self.exec(node, actions);
            }
        }
    }

    fn exec(&mut self, origin: RouterId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if msg.action.is_advertise() {
                        self.announcements += 1;
                    } else {
                        self.withdrawals += 1;
                    }
                    self.last_activity = self.sched.now();
                    // Messages towards failed routers are lost with the link.
                    if self.is_alive(to) {
                        self.sched.schedule_after(
                            self.cfg.link_delay,
                            Ev::Deliver {
                                to,
                                from: origin,
                                msg,
                            },
                        );
                    }
                }
                Action::StartProcessing { duration } => {
                    self.sched
                        .schedule_after(duration, Ev::ProcDone { node: origin });
                }
                Action::StartMrai {
                    peer,
                    prefix,
                    delay,
                    gen,
                } => {
                    self.sched.schedule_after(
                        delay,
                        Ev::MraiExpiry {
                            node: origin,
                            peer,
                            prefix,
                            gen,
                        },
                    );
                }
                Action::StartReuse {
                    peer,
                    prefix,
                    delay,
                    gen,
                } => {
                    self.sched.schedule_after(
                        delay,
                        Ev::ReuseExpiry {
                            node: origin,
                            peer,
                            prefix,
                            gen,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Validation helpers (used by tests and examples)
    // ------------------------------------------------------------------

    /// Ground truth under Gao–Rexford policies: a route must exist exactly
    /// when a valley-free path to an alive origin exists over alive nodes.
    /// Exact for single-router-per-AS topologies; for multi-router
    /// topologies only the no-stale-routes direction is checked (the
    /// valley-free closure is an AS-level property that partial AS failures
    /// blur).
    fn assert_policy_routing_consistent(&self) {
        let single = self.topo.num_routers() == self.topo.num_ases();
        let reach = self.valley_free_reachability();
        for r in self.topo.router_ids() {
            let Some(node) = self.node(r) else { continue };
            for (p_idx, &expected) in reach[r.index()].iter().enumerate() {
                let prefix = Prefix::new(p_idx as u32);
                let own = self.origin_of_prefix[p_idx] == r;
                match (expected, node.loc_rib().get(prefix).is_some()) {
                    (true, false) if single => {
                        panic!("router {r}: no route to valley-free-reachable {prefix}")
                    }
                    (false, true) if !own => {
                        panic!("router {r}: route to {prefix} violates valley-free export")
                    }
                    _ => {}
                }
            }
        }
    }

    /// For each origin prefix, the set of alive routers with a valley-free
    /// path to it (Gao–Rexford propagation closure):
    ///
    /// 1. *free* routers hear the route from a customer chain below them
    ///    (BFS from the origin towards providers);
    /// 2. peers of free routers hear it once (one peer edge);
    /// 3. everything below any route holder hears it (providers always
    ///    export to customers).
    fn valley_free_reachability(&self) -> Vec<Vec<bool>> {
        let n = self.topo.num_routers();
        let num_prefixes = self.origin_of_prefix.len();
        let mut result = vec![vec![false; num_prefixes]; n];
        // u's relationship towards v (what u *is* to v) — must match the
        // construction-time inference exactly.
        let tiers = match &self.cfg.policy_tiers {
            Some(t) => t.clone(),
            None => as_tiers(&self.topo),
        };
        let rel_to = |v: RouterId, u: RouterId| {
            relationship_by_tier(
                tiers[self.topo.router(v).as_id.index()],
                tiers[self.topo.router(u).as_id.index()],
            )
        };
        // The closure depends only on the origin, so compute it once per
        // unique alive origin (full tables originate many prefixes per
        // router) and copy the column; withdrawn prefixes are
        // expected-unreachable and stay all-false.
        let mut reach_of_origin: std::collections::BTreeMap<RouterId, Vec<bool>> =
            std::collections::BTreeMap::new();
        for (p_idx, &origin) in self.origin_of_prefix.iter().enumerate() {
            if !self.is_alive(origin) || self.withdrawn.contains(&Prefix::new(p_idx as u32)) {
                continue;
            }
            let reach = reach_of_origin.entry(origin).or_insert_with(|| {
                // Step 1: free = customer-chain reachability (walk up to
                // providers from the origin).
                let mut free = vec![false; n];
                free[origin.index()] = true;
                let mut stack = vec![origin];
                while let Some(u) = stack.pop() {
                    for &v in &self.sessions[u.index()] {
                        if !self.session_alive(u, v) || free[v.index()] {
                            continue;
                        }
                        // v hears from its customer u.
                        if rel_to(v, u) == Relationship::Customer {
                            free[v.index()] = true;
                            stack.push(v);
                        }
                    }
                }
                // Step 2: peers of free routers.
                let mut reach = free.clone();
                for u in self.topo.router_ids() {
                    if !free[u.index()] || !self.is_alive(u) {
                        continue;
                    }
                    for &v in &self.sessions[u.index()] {
                        if self.session_alive(u, v) && rel_to(v, u) == Relationship::Peer {
                            reach[v.index()] = true;
                        }
                    }
                }
                // Step 3: downward closure (everyone exports to customers).
                let mut stack: Vec<RouterId> = self
                    .topo
                    .router_ids()
                    .filter(|r| reach[r.index()])
                    .collect();
                while let Some(u) = stack.pop() {
                    for &v in &self.sessions[u.index()] {
                        if !self.session_alive(u, v) || reach[v.index()] {
                            continue;
                        }
                        // v hears from its provider u.
                        if rel_to(v, u) == Relationship::Provider {
                            reach[v.index()] = true;
                            stack.push(v);
                        }
                    }
                }
                reach
            });
            for r in 0..n {
                result[r][p_idx] = reach[r] && self.is_alive(RouterId::new(r as u32));
            }
        }
        result
    }

    /// AS-level hop distances from every *alive* router to every alive
    /// origin, through alive routers only. `None` means unreachable.
    /// Prefixes withdrawn by burst injection are expected-unreachable and
    /// keep `None` everywhere.
    fn alive_distances(&self) -> Vec<Vec<Option<usize>>> {
        // One search per *unique* alive origin (full-table workloads
        // originate thousands of prefixes per router — recomputing the
        // search per prefix would make validation O(table · graph)), the
        // distance column then copied to every prefix the origin owns.
        let n = self.topo.num_routers();
        let mut result = vec![vec![None; self.origin_of_prefix.len()]; n];
        let mut dist_of_origin: std::collections::BTreeMap<RouterId, Vec<Option<usize>>> =
            std::collections::BTreeMap::new();
        for (p_idx, &origin) in self.origin_of_prefix.iter().enumerate() {
            if !self.is_alive(origin) || self.withdrawn.contains(&Prefix::new(p_idx as u32)) {
                continue;
            }
            let dist = dist_of_origin.entry(origin).or_insert_with(|| {
                // Dijkstra with 0/1 weights (0 inside an AS, 1 across).
                let mut dist: Vec<Option<usize>> = vec![None; n];
                let mut deque = std::collections::VecDeque::new();
                dist[origin.index()] = Some(0);
                deque.push_back(origin);
                while let Some(u) = deque.pop_front() {
                    let du = dist[u.index()].expect("queued nodes have distances");
                    for &v in &self.sessions[u.index()] {
                        if !self.session_alive(u, v) {
                            continue;
                        }
                        let w = usize::from(self.topo.is_inter_as(u, v));
                        let nd = du + w;
                        if dist[v.index()].map(|d| nd < d).unwrap_or(true) {
                            dist[v.index()] = Some(nd);
                            if w == 0 {
                                deque.push_front(v);
                            } else {
                                deque.push_back(v);
                            }
                        }
                    }
                }
                dist
            });
            for r in 0..n {
                result[r][p_idx] = dist[r];
            }
        }
        result
    }

    /// Checks that every alive router's Loc-RIB matches ground truth:
    /// a route exists exactly for reachable alive origins, and its AS-path
    /// length equals the shortest alive AS-hop distance.
    ///
    /// # Panics
    ///
    /// Panics (with a diagnostic) on any mismatch — call after the network
    /// has quiesced.
    pub fn assert_routing_consistent(&self) {
        if self.cfg.policy {
            self.assert_policy_routing_consistent();
            return;
        }
        let dists = self.alive_distances();
        for r in self.topo.router_ids() {
            let Some(node) = self.node(r) else { continue };
            for (p_idx, expected) in dists[r.index()].iter().enumerate() {
                let prefix = Prefix::new(p_idx as u32);
                let own = self.origin_of_prefix[p_idx] == r;
                let best = node.loc_rib().get(prefix);
                match (expected, best) {
                    (Some(d), Some(sel)) => {
                        assert_eq!(
                            sel.path.len(),
                            *d,
                            "router {r}: route to {prefix} has length {} but \
                             shortest alive distance is {d}",
                            sel.path.len()
                        );
                    }
                    (Some(d), None) => {
                        panic!("router {r}: no route to reachable {prefix} (distance {d})");
                    }
                    (None, Some(_)) if !own => {
                        panic!("router {r}: stale route to unreachable {prefix}");
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::degree::SkewedSpec;
    use bgpsim_topology::generators::skewed_topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_topo(seed: u64, n: usize) -> Topology {
        let mut rng = SmallRng::seed_from_u64(seed);
        skewed_topology(n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap()
    }

    #[test]
    fn parse_count_accepts_integers_and_rejects_garbage() {
        // Valid values, including surrounding whitespace.
        assert_eq!(parse_count("BGPSIM_SHARDS", "4"), Some(4));
        assert_eq!(parse_count("BGPSIM_SHARDS", " 16 "), Some(16));
        assert_eq!(parse_count("BGPSIM_COMMIT_STREAMS", "0"), Some(0));
        // Invalid values warn (to stderr) and fall back to the default.
        assert_eq!(parse_count("BGPSIM_SHARDS", ""), None);
        assert_eq!(parse_count("BGPSIM_SHARDS", "four"), None);
        assert_eq!(parse_count("BGPSIM_SHARDS", "-2"), None);
        assert_eq!(parse_count("BGPSIM_SHARDS", "2.5"), None);
        assert_eq!(parse_count("BGPSIM_COMMIT_STREAMS", "2,4"), None);
    }

    #[test]
    fn commit_stream_resolution_clamps_to_shards() {
        let topo = small_topo(3, 10);
        let mut cfg = SimConfig::new(1);
        cfg.shards = Some(4);
        cfg.commit_streams = Some(64);
        assert_eq!(Network::new(topo, cfg).commit_stream_count(), 4);

        let topo = small_topo(3, 10);
        let mut cfg = SimConfig::new(1);
        cfg.shards = Some(4);
        cfg.commit_streams = Some(0);
        let net = Network::new(topo, cfg);
        assert_eq!(net.commit_stream_count(), 1, "0 means inline apply");
        assert_eq!(
            net.shard_phase_timings().epochs,
            0,
            "no pump has run yet, timings start empty"
        );
    }

    #[test]
    fn commit_streams_request_without_shards_is_flagged() {
        // > 1 streams requested on a serial run: clamped to 1 AND flagged
        // so `Network::new` prints the once-per-process stderr warning —
        // previously this evaporated silently.
        assert_eq!(resolve_commit_streams(Some(4), 1), (1, true));
        assert_eq!(resolve_commit_streams(Some(2), 1), (1, true));
        // 1 (or 0 = "inline apply") is exactly what a serial run does
        // anyway — nothing is being ignored, so no warning.
        assert_eq!(resolve_commit_streams(Some(1), 1), (1, false));
        assert_eq!(resolve_commit_streams(Some(0), 1), (1, false));
        // Sharded runs honor the request, clamped to the shard count.
        assert_eq!(resolve_commit_streams(Some(4), 2), (2, false));
        assert_eq!(resolve_commit_streams(Some(2), 4), (2, false));
        // No request at all: the default is never "ignored".
        assert_eq!(resolve_commit_streams(None, 1), (1, false));
    }

    #[test]
    fn node_configs_are_interned_in_one_arena() {
        // Uniform MRAI assignment ⇒ every router is built from the same
        // settings ⇒ one shared allocation for the whole network.
        let topo = small_topo(5, 20);
        let net = Network::new(topo, SimConfig::new(9));
        assert_eq!(net.cfg_arena.len(), 1);
        let ids: Vec<RouterId> = net.topology().router_ids().collect();
        let reference = net.node(ids[0]).unwrap();
        for &r in &ids[1..] {
            assert!(
                net.node(r).unwrap().shares_config_allocation(reference),
                "router {r} carries a private config copy"
            );
        }
    }

    #[test]
    fn memory_footprint_accounts_converged_state() {
        let topo = small_topo(8, 30);
        let mut net = Network::new(topo, SimConfig::new(5));
        let before = net.memory_footprint();
        assert_eq!(before.config_arena_entries, 1);
        net.run_initial_convergence();
        let after = net.memory_footprint();
        // Full reachability: every router selects a route per prefix, and
        // Adj-RIBs-In hold at least that much again.
        assert!(after.routes >= 8 * 8, "routes {}", after.routes);
        assert!(after.rib_heap_bytes > before.rib_heap_bytes);
        assert!(after.max_node_rib_heap_bytes <= after.rib_heap_bytes);
        assert!(after.bytes_per_route() > 0.0);
    }

    #[test]
    fn revived_routers_reuse_the_interned_config() {
        let topo = small_topo(6, 20);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(0.5), 11),
        );
        net.run_initial_convergence();
        let failed = net.inject_failure(&FailureSpec::CenterFraction(0.1));
        assert!(!failed.is_empty());
        net.run_to_quiescence();
        net.revive_routers(&failed);
        assert_eq!(
            net.cfg_arena.len(),
            1,
            "revival must intern into the existing arena, not grow it"
        );
        let alive: Vec<RouterId> = net
            .topology()
            .router_ids()
            .filter(|r| !failed.contains(r))
            .collect();
        let reference = net.node(alive[0]).unwrap();
        for &r in &failed {
            assert!(
                net.node(r).unwrap().shares_config_allocation(reference),
                "revived router {r} carries a private config copy"
            );
        }
    }

    #[test]
    fn initial_convergence_installs_all_routes() {
        let topo = small_topo(1, 30);
        let mut net = Network::new(topo, SimConfig::new(7));
        let dur = net.run_initial_convergence();
        assert!(dur > SimDuration::ZERO);
        net.assert_routing_consistent();
        // Every router has a route to all 30 prefixes.
        for r in net.topology().router_ids() {
            assert_eq!(net.node(r).unwrap().loc_rib().len(), 30);
        }
    }

    #[test]
    fn failure_reconverges_consistently() {
        let topo = small_topo(2, 30);
        let mut net = Network::new(topo, SimConfig::new(8));
        let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.10));
        assert_eq!(stats.failed_routers, 3);
        assert!(stats.convergence_delay > SimDuration::ZERO);
        assert!(stats.messages > 0);
        net.assert_routing_consistent();
    }

    #[test]
    fn zero_failure_costs_nothing() {
        let topo = small_topo(3, 20);
        let mut net = Network::new(topo, SimConfig::new(9));
        let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.0));
        assert_eq!(stats.failed_routers, 0);
        assert_eq!(stats.convergence_delay, SimDuration::ZERO);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let topo = small_topo(4, 25);
            let mut net = Network::new(topo, SimConfig::new(seed));
            net.run_failure_experiment(&FailureSpec::CenterFraction(0.1))
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed must reproduce exactly");
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn messages_lost_towards_failed_routers() {
        // A tiny line a–b–c: fail c explicitly; a and b reconverge.
        use bgpsim_topology::{Point, Router};
        let routers = vec![
            Router {
                as_id: AsId::new(0),
                pos: Point::new(0.0, 0.0),
            },
            Router {
                as_id: AsId::new(1),
                pos: Point::new(1.0, 0.0),
            },
            Router {
                as_id: AsId::new(2),
                pos: Point::new(2.0, 0.0),
            },
        ];
        let topo = Topology::new(
            routers,
            vec![
                (RouterId::new(0), RouterId::new(1)),
                (RouterId::new(1), RouterId::new(2)),
            ],
        )
        .unwrap();
        let mut net = Network::new(topo, SimConfig::new(5));
        net.run_initial_convergence();
        net.assert_routing_consistent();
        let failed = net.inject_failure(&FailureSpec::Explicit(vec![RouterId::new(2)]));
        assert_eq!(failed, vec![RouterId::new(2)]);
        let stats = net.run_to_quiescence();
        net.assert_routing_consistent();
        assert!(!net.is_alive(RouterId::new(2)));
        // b withdraws prefix 2 from a.
        assert!(stats.withdrawals >= 1);
        let a = net.node(RouterId::new(0)).unwrap();
        assert!(a.loc_rib().get(Prefix::new(2)).is_none());
        assert!(a.loc_rib().get(Prefix::new(1)).is_some());
    }

    #[test]
    fn multi_as_network_converges() {
        use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
        let mut rng = SmallRng::seed_from_u64(3);
        let topo = generate_multi_as(&MultiAsConfig::realistic(20), &mut rng).unwrap();
        let mut net = Network::new(topo, SimConfig::new(13));
        net.run_initial_convergence();
        net.assert_routing_consistent();
        for r in net.topology().router_ids() {
            let node = net.node(r).unwrap();
            assert_eq!(
                node.loc_rib().len(),
                net.topology().num_ases(),
                "router {r} missing routes"
            );
        }
    }

    #[test]
    fn sampling_records_timeline() {
        let topo = small_topo(12, 30);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::dynamic_default(), 40),
        );
        net.enable_sampling(SimDuration::from_millis(500));
        net.run_failure_experiment(&FailureSpec::CenterFraction(0.1));
        let samples = net.samples();
        assert!(
            samples.len() > 5,
            "expected a timeline, got {}",
            samples.len()
        );
        assert!(
            samples.windows(2).all(|w| w[0].time < w[1].time),
            "samples must be time-ordered"
        );
        // During the storm some router must have been busy at some sample.
        assert!(samples.iter().any(|s| s.busy_routers > 0));
    }

    #[test]
    fn oracle_switches_nodes_at_injection() {
        let topo = small_topo(13, 30);
        let scheme = crate::Scheme::oracle(&[(0.025, 0.5), (1.0, 2.25)]);
        let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 41));
        net.run_initial_convergence();
        net.inject_failure(&FailureSpec::CenterFraction(0.2));
        let stats = net.run_to_quiescence();
        assert!(stats.messages > 0);
        net.assert_routing_consistent();
    }

    #[test]
    fn policy_network_converges_to_valley_free_state() {
        let topo = small_topo(20, 40);
        let scheme = crate::Scheme::constant_mrai(0.5).with_policy();
        let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 50));
        net.run_initial_convergence();
        net.assert_routing_consistent();
        // Policies prune paths: some node pairs may be unreachable even in
        // a connected graph, but every node keeps its own prefix.
        for r in net.topology().router_ids() {
            let node = net.node(r).unwrap();
            let own = Prefix::new(node.as_id().index() as u32);
            assert!(node.loc_rib().get(own).is_some());
        }
        // And recovery from failure stays valley-free consistent.
        net.inject_failure(&FailureSpec::CenterFraction(0.1));
        net.run_to_quiescence();
        net.assert_routing_consistent();
    }

    #[test]
    fn policy_reduces_messages_during_failures() {
        let run = |policy: bool| {
            let topo = small_topo(21, 50);
            let scheme = if policy {
                crate::Scheme::constant_mrai(0.5).with_policy()
            } else {
                crate::Scheme::constant_mrai(0.5)
            };
            let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 51));
            net.run_failure_experiment(&FailureSpec::CenterFraction(0.15))
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with.messages < without.messages,
            "valley-free export must prune path hunting              (without {} vs with {})",
            without.messages,
            with.messages
        );
    }

    #[test]
    fn hierarchical_topology_has_full_policy_reachability() {
        use bgpsim_topology::generators::{hierarchical, HierarchicalParams};
        let mut rng = SmallRng::seed_from_u64(80);
        let params = HierarchicalParams::three_tier(60);
        let topo = hierarchical(&params, &mut rng).unwrap();
        let n = topo.num_routers();
        let scheme = crate::Scheme::constant_mrai(0.5).with_policy();
        let mut cfg = SimConfig::from_scheme(&scheme, 80);
        cfg.policy_tiers = Some(params.tier_vector());
        let mut net = Network::new(topo, cfg);
        net.run_initial_convergence();
        net.assert_routing_consistent();
        // Every node reaches every prefix: the Tier-1 clique guarantees an
        // up-peer-down path for all pairs.
        for r in net.topology().router_ids() {
            assert_eq!(
                net.node(r).unwrap().loc_rib().len(),
                n,
                "router {r} misses prefixes despite the engineered hierarchy"
            );
        }
        // And failures recover consistently under policies.
        net.inject_failure(&FailureSpec::CenterFraction(0.1));
        net.run_to_quiescence();
        net.assert_routing_consistent();
    }

    #[test]
    fn revived_routers_rejoin_consistently() {
        let topo = small_topo(40, 30);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(0.5), 90),
        );
        net.run_initial_convergence();
        let failed = net.inject_failure(&FailureSpec::CenterFraction(0.1));
        net.run_to_quiescence();
        net.assert_routing_consistent();
        // Bring everyone back: full reachability must be restored.
        net.revive_routers(&failed);
        let stats = net.run_to_quiescence();
        net.assert_routing_consistent();
        assert!(stats.messages > 0, "recovery must generate announcements");
        for r in net.topology().router_ids() {
            assert!(net.is_alive(r));
            assert_eq!(
                net.node(r).unwrap().loc_rib().len(),
                30,
                "router {r} missing routes after recovery"
            );
        }
    }

    #[test]
    fn recovery_is_faster_than_failure_tup_tdown() {
        // Labovitz et al. [5]: announcing a route (Tup) converges much
        // faster than withdrawing one (Tdown) because no path hunting is
        // needed — new information replaces old monotonically.
        let topo = small_topo(41, 40);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(2.25), 91),
        );
        net.run_initial_convergence();
        let failed = net.inject_failure(&FailureSpec::CenterFraction(0.1));
        let down = net.run_to_quiescence();
        net.revive_routers(&failed);
        let up = net.run_to_quiescence();
        net.assert_routing_consistent();
        assert!(
            up.convergence_delay < down.convergence_delay,
            "recovery ({}) should beat failure ({})",
            up.convergence_delay,
            down.convergence_delay
        );
    }

    #[test]
    #[should_panic(expected = "already alive")]
    fn reviving_alive_router_panics() {
        let topo = small_topo(42, 20);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(0.5), 92),
        );
        net.run_initial_convergence();
        net.inject_failure(&FailureSpec::CenterFraction(0.0));
        net.revive_routers(&[RouterId::new(0)]);
    }

    #[test]
    fn link_failures_reconverge_without_killing_routers() {
        let topo = small_topo(50, 40);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(0.5), 95),
        );
        net.run_initial_convergence();
        let links = bgpsim_topology::region::central_link_fraction(net.topology(), 0.15);
        assert!(!links.is_empty());
        net.inject_link_failure(&links);
        let stats = net.run_to_quiescence();
        net.assert_routing_consistent();
        // All routers survive; only sessions died.
        for r in net.topology().router_ids() {
            assert!(net.is_alive(r));
            // Every router still reaches its own prefix at least.
            let own = Prefix::new(net.topology().router(r).as_id.index() as u32);
            assert!(net.node(r).unwrap().loc_rib().get(own).is_some());
        }
        assert!(stats.messages > 0);
    }

    #[test]
    fn link_failures_cost_less_than_router_failures() {
        // Failing a region's links leaves its routers (and their prefixes)
        // reachable via surviving paths; failing the routers withdraws
        // their prefixes everywhere. Messages should reflect that.
        let run_links = || {
            let topo = small_topo(51, 40);
            let mut net = Network::new(
                topo,
                SimConfig::from_scheme(&crate::Scheme::constant_mrai(1.25), 96),
            );
            net.run_initial_convergence();
            let links = bgpsim_topology::region::central_link_fraction(net.topology(), 0.10);
            net.inject_link_failure(&links);
            let stats = net.run_to_quiescence();
            net.assert_routing_consistent();
            stats
        };
        let run_routers = || {
            let topo = small_topo(51, 40);
            let mut net = Network::new(
                topo,
                SimConfig::from_scheme(&crate::Scheme::constant_mrai(1.25), 96),
            );
            net.run_failure_experiment(&FailureSpec::CenterFraction(0.10))
        };
        let links = run_links();
        let routers = run_routers();
        // Both converge; the router variant at least withdraws prefixes.
        assert!(routers.withdrawals > 0);
        assert!(links.messages > 0);
    }

    #[test]
    fn route_reflection_converges_like_full_mesh() {
        use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
        let mut rng = SmallRng::seed_from_u64(100);
        let topo = generate_multi_as(&MultiAsConfig::realistic(20), &mut rng).unwrap();
        let scheme = crate::Scheme::constant_mrai(0.5)
            .with_route_reflection()
            .named("RR");
        let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 101));
        net.run_initial_convergence();
        net.assert_routing_consistent();
        for r in net.topology().router_ids() {
            assert_eq!(
                net.node(r).unwrap().loc_rib().len(),
                net.topology().num_ases(),
                "router {r} missing routes under route reflection"
            );
        }
        // Failures still recover consistently.
        net.inject_failure(&FailureSpec::CenterFraction(0.05));
        net.run_to_quiescence();
        net.assert_routing_consistent();
    }

    #[test]
    fn route_reflection_uses_far_fewer_ibgp_sessions() {
        use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
        let mut rng = SmallRng::seed_from_u64(102);
        let topo = generate_multi_as(&MultiAsConfig::realistic(20), &mut rng).unwrap();
        let count_sessions = |net: &Network| -> usize {
            net.topology()
                .router_ids()
                .filter_map(|r| net.node(r))
                .map(|n| n.peer_ids().len())
                .sum()
        };
        let mesh = Network::new(
            topo.clone(),
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(0.5), 103),
        );
        let rr_scheme = crate::Scheme::constant_mrai(0.5).with_route_reflection();
        let rr = Network::new(topo, SimConfig::from_scheme(&rr_scheme, 103));
        assert!(
            count_sessions(&rr) < count_sessions(&mesh),
            "route reflection must shrink the session count \
             (mesh {}, rr {})",
            count_sessions(&mesh),
            count_sessions(&rr)
        );
    }

    #[test]
    fn hold_timer_detection_dominates_small_failures() {
        let run = |scheme: crate::Scheme, seed| {
            let topo = small_topo(30, 30);
            let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, seed));
            net.run_failure_experiment(&FailureSpec::CenterFraction(0.05))
        };
        let instant = run(crate::Scheme::constant_mrai(2.25), 70);
        let held = run(
            crate::Scheme::constant_mrai(2.25).with_hold_timer(SimDuration::from_secs(90)),
            70,
        );
        // With a 90 s hold timer, detection alone is 60-90 s.
        assert!(
            held.convergence_delay >= instant.convergence_delay + SimDuration::from_secs(50),
            "hold-timer detection must dominate (instant {}, held {})",
            instant.convergence_delay,
            held.convergence_delay
        );
    }

    #[test]
    fn multiple_prefixes_per_as_scale_the_load() {
        let run = |k: usize| {
            let topo = small_topo(31, 25);
            let scheme = crate::Scheme::constant_mrai(1.25).with_prefixes_per_as(k);
            let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 71));
            net.run_initial_convergence();
            net.assert_routing_consistent();
            // Every router holds routes to k prefixes per AS.
            for r in net.topology().router_ids() {
                assert_eq!(net.node(r).unwrap().loc_rib().len(), 25 * k);
            }
            net.inject_failure(&FailureSpec::CenterFraction(0.1));
            let stats = net.run_to_quiescence();
            net.assert_routing_consistent();
            stats
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.messages > 2 * one.messages,
            "more destinations per AS must generate more updates \
             (k=1: {}, k=4: {})",
            one.messages,
            four.messages
        );
    }

    #[test]
    fn prefix_of_as_respects_multiplicity() {
        let topo = small_topo(32, 10);
        let scheme = crate::Scheme::constant_mrai(0.5).with_prefixes_per_as(3);
        let net = Network::new(topo, SimConfig::from_scheme(&scheme, 72));
        assert_eq!(net.prefix_of_as(AsId::new(0)), Prefix::new(0));
        assert_eq!(net.prefix_of_as(AsId::new(2)), Prefix::new(6));
    }

    #[test]
    fn full_table_allocation_is_trie_backed_and_skewed() {
        let topo = small_topo(33, 12);
        let scheme =
            crate::Scheme::constant_mrai(0.5).with_full_table(FullTableSpec::internet_like(200));
        let net = Network::new(topo, SimConfig::from_scheme(&scheme, 73));
        assert_eq!(net.table_size(), 200);
        // Zipf split: rank 0 gets the largest block, every AS at least one.
        let counts: Vec<usize> = (0..12)
            .map(|a| net.prefix_count_of_as(AsId::new(a)))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert!(counts[0] > counts[11], "skew must concentrate: {counts:?}");
        assert!(counts.iter().all(|&c| c >= 1));
        // Every slot resolves to a /32 in 10/8 and the trie maps it back.
        for p_idx in 0..200u32 {
            let prefix = Prefix::new(p_idx);
            let ip = net.ip_of_prefix(prefix).expect("allocated slot");
            assert_eq!(ip.len(), 32);
            assert_eq!(ip.bits() >> 24, 10, "blocks are carved from 10.0.0.0/8");
            assert_eq!(net.prefix_table().lookup(ip.bits()), Some(prefix));
        }
        assert!(net.check_prefix(Prefix::new(199)).is_ok());
        assert!(net.check_prefix(Prefix::new(200)).is_err());
    }

    #[test]
    fn burst_withdrawal_reconverges_consistently() {
        let topo = small_topo(34, 20);
        let scheme =
            crate::Scheme::constant_mrai(0.5).with_full_table(FullTableSpec::internet_like(60));
        let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 74));
        net.run_initial_convergence();
        net.assert_routing_consistent();
        let withdrawn = net.inject_burst_withdrawal(&FailureSpec::CenterFraction(0.2));
        assert!(
            !withdrawn.is_empty(),
            "central region must originate something"
        );
        let stats = net.run_to_quiescence();
        assert!(stats.messages > 0, "a withdrawal storm generates updates");
        net.assert_routing_consistent();
        // The withdrawn prefixes are gone from every router's table; the
        // rest of the table is untouched (origins stayed alive).
        for r in net.topology().router_ids() {
            let node = net.node(r).expect("no router failed");
            for &p in &withdrawn {
                assert!(
                    node.loc_rib().get(p).is_none(),
                    "router {r} kept a route to withdrawn {p:?}"
                );
            }
        }
        assert_eq!(net.withdrawn_prefixes().count(), withdrawn.len());
    }

    #[test]
    fn out_of_range_prefix_withdrawal_is_rejected_without_side_effects() {
        // Regression (flat-index sweep): the dense RIB rows index by slot
        // unchecked on their hot paths — `resize_with` would silently grow
        // the tables for a rogue prefix instead of panicking. The
        // network/scenario boundary must reject it before anything runs.
        let topo = small_topo(35, 10);
        let mut net = Network::new(
            topo,
            SimConfig::from_scheme(&crate::Scheme::constant_mrai(0.5), 75),
        );
        net.run_initial_convergence();
        let rogue = Prefix::new(net.table_size() as u32 + 5);
        let err = net
            .inject_prefix_withdrawals(&[Prefix::new(0), rogue])
            .unwrap_err();
        assert!(err.contains("out of range"), "got: {err}");
        // Nothing was scheduled — not even for the valid prefix — and the
        // routing state is untouched.
        assert_eq!(net.withdrawn_prefixes().count(), 0);
        assert_eq!(net.table_size(), 10);
        net.assert_routing_consistent();

        // The same set without the rogue prefix goes through.
        let n = net.inject_prefix_withdrawals(&[Prefix::new(0)]).unwrap();
        assert_eq!(n, 1);
        let stats = net.run_to_quiescence();
        assert!(stats.messages > 0);
        net.assert_routing_consistent();
    }

    #[test]
    fn degree_dependent_assignment_applies() {
        let topo = small_topo(6, 30);
        let mut cfg = SimConfig::new(10);
        cfg.mrai = MraiAssignment::DegreeDependent {
            high_degree_min: 8,
            low: SimDuration::from_millis(500),
            high: SimDuration::from_millis(2250),
        };
        let mut net = Network::new(topo, cfg);
        let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(0.1));
        assert!(stats.messages > 0);
        net.assert_routing_consistent();
    }
}
