//! The paper's schemes as ready-made configurations.
//!
//! A [`Scheme`] bundles the two knobs the paper turns: how each node picks
//! its MRAI (constant / degree-dependent / dynamic) and how the input queue
//! forms processing batches (FIFO / batched / TCP-buffer batch). Every
//! curve in the paper's figures is one `Scheme` evaluated over a failure
//! sweep.

use bgpsim_bgp::config::MraiPolicy;
use bgpsim_bgp::dynmrai::DynamicMraiConfig;
use bgpsim_bgp::mrai::MraiScope;
use bgpsim_bgp::queue::QueueDiscipline;
use bgpsim_des::SimDuration;
use serde::{Deserialize, Serialize};

/// Optional overrides of the simulation defaults, carried by a [`Scheme`]
/// so ablation experiments (jitter off, WRATE on, detection delay, MRAI
/// scope, expedited improvements, processing-delay range) run through the
/// same experiment machinery as the paper's schemes. `None` keeps the
/// paper's default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimOverrides {
    /// RFC 1771 timer jitter (default on).
    pub jitter: Option<bool>,
    /// Withdrawal rate limiting (default off).
    pub wrate: Option<bool>,
    /// Failure-detection delay (default zero).
    pub detection_delay: Option<SimDuration>,
    /// MRAI scope (default per peer).
    pub mrai_scope: Option<MraiScope>,
    /// Deshpande & Sikdar timer cancelling (default off).
    pub expedite_improvements: Option<bool>,
    /// Minimum per-update processing delay (default 1 ms).
    pub proc_min: Option<SimDuration>,
    /// Maximum per-update processing delay (default 30 ms).
    pub proc_max: Option<SimDuration>,
    /// One-way link delay (default 25 ms).
    pub link_delay: Option<SimDuration>,
    /// Gao–Rexford policies (default off, per the paper's §3.2).
    pub policy: Option<bool>,
    /// Detect failures by BGP hold-timer expiry with this hold time,
    /// instead of the paper's instant link-layer notification.
    pub hold_timer: Option<SimDuration>,
    /// Prefixes originated per AS (default 1, as in the paper).
    pub prefixes_per_as: Option<usize>,
    /// RFC 2439 route-flap damping (default off, as in the paper).
    pub damping: Option<bgpsim_bgp::damping::DampingConfig>,
    /// Intra-AS session layout (default: full iBGP mesh).
    pub ibgp_mode: Option<crate::network::IbgpMode>,
    /// Full-table prefix allocation: a fixed network-wide table size split
    /// across ASes by a power law, instead of `prefixes_per_as` identical
    /// blocks (default off). Takes precedence over `prefixes_per_as`.
    pub full_table: Option<crate::network::FullTableSpec>,
}

/// How per-node MRAIs are assigned across the network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MraiAssignment {
    /// Every node uses the same policy.
    Uniform(MraiPolicy),
    /// The paper's degree-dependent scheme (§4.2): nodes with degree at
    /// least `high_degree_min` use `high`, the rest use `low`.
    DegreeDependent {
        /// Smallest degree that counts as "high degree".
        high_degree_min: usize,
        /// MRAI at low-degree nodes.
        low: SimDuration,
        /// MRAI at high-degree nodes.
        high: SimDuration,
    },
    /// Dynamic MRAI only at nodes with degree at least `high_degree_min`;
    /// the rest use constant `low` (the §4.3 ablation — the paper found it
    /// equivalent to running the dynamic scheme everywhere).
    DynamicAtHighDegree {
        /// Smallest degree that counts as "high degree".
        high_degree_min: usize,
        /// Constant MRAI at low-degree nodes.
        low: SimDuration,
        /// Dynamic configuration at high-degree nodes.
        dynamic: DynamicMraiConfig,
    },
    /// The paper's future-work oracle ("a scheme that can accurately and
    /// quickly set the MRAI consistent with the extent of failure"): at
    /// failure-injection time every surviving node is switched to the
    /// constant MRAI of the first table row whose fraction bound covers
    /// the actual failure size. Before the failure, nodes run the first
    /// row's MRAI. An upper bound on what failure-size estimation can buy.
    OracleFailureSize {
        /// `(max_fraction, mrai)` rows in increasing fraction order; the
        /// last row should have `max_fraction = 1.0`.
        table: Vec<(f64, SimDuration)>,
    },
}

/// A named experimental configuration (one curve of a figure).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scheme {
    /// Display name used in tables ("MRAI=0.5", "dynamic", "batching", …).
    pub name: String,
    /// How nodes pick their MRAI.
    pub mrai: MraiAssignment,
    /// Input-queue discipline.
    pub queue: QueueDiscipline,
    /// Ablation overrides of the simulation defaults.
    pub overrides: SimOverrides,
}

impl Scheme {
    /// Constant MRAI everywhere, FIFO processing (the baseline).
    pub fn constant_mrai(secs: f64) -> Scheme {
        Scheme {
            name: format!("MRAI={secs}"),
            mrai: MraiAssignment::Uniform(MraiPolicy::Constant(SimDuration::from_secs_f64(secs))),
            queue: QueueDiscipline::Fifo,
            overrides: SimOverrides::default(),
        }
    }

    /// Degree-dependent MRAI (§4.2): `low` seconds at nodes below
    /// `high_degree_min`, `high` seconds at the rest.
    pub fn degree_dependent(low: f64, high: f64, high_degree_min: usize) -> Scheme {
        Scheme {
            name: format!("low {low}, high {high}"),
            mrai: MraiAssignment::DegreeDependent {
                high_degree_min,
                low: SimDuration::from_secs_f64(low),
                high: SimDuration::from_secs_f64(high),
            },
            queue: QueueDiscipline::Fifo,
            overrides: SimOverrides::default(),
        }
    }

    /// The paper's dynamic MRAI (§4.3) with its Fig 7 parameters.
    pub fn dynamic_default() -> Scheme {
        Scheme {
            name: "dynamic".into(),
            mrai: MraiAssignment::Uniform(MraiPolicy::Dynamic(DynamicMraiConfig::paper_default())),
            queue: QueueDiscipline::Fifo,
            overrides: SimOverrides::default(),
        }
    }

    /// Dynamic MRAI with custom levels (seconds) and unfinished-work
    /// thresholds (seconds) — the Fig 8/9/13 variants.
    pub fn dynamic(levels: &[f64], up_th: f64, down_th: f64) -> Scheme {
        let mut cfg = DynamicMraiConfig::with_thresholds(
            SimDuration::from_secs_f64(up_th),
            SimDuration::from_secs_f64(down_th),
        );
        cfg.levels = levels
            .iter()
            .map(|&s| SimDuration::from_secs_f64(s))
            .collect();
        Scheme {
            name: format!("dynamic up={up_th} down={down_th}"),
            mrai: MraiAssignment::Uniform(MraiPolicy::Dynamic(cfg)),
            queue: QueueDiscipline::Fifo,
            overrides: SimOverrides::default(),
        }
    }

    /// The paper's batching scheme (§4.4) at the given constant MRAI
    /// (the paper uses 0.5 s).
    pub fn batching(mrai_secs: f64) -> Scheme {
        Scheme {
            name: format!("batching (MRAI={mrai_secs})"),
            queue: QueueDiscipline::Batched,
            ..Scheme::constant_mrai(mrai_secs)
        }
    }

    /// Batching combined with the default dynamic MRAI (§4.4: "if we
    /// combine the batching and dynamic MRAI schemes, then we are able to
    /// decrease the delays even further").
    pub fn batching_plus_dynamic() -> Scheme {
        Scheme {
            name: "batching + dynamic".into(),
            queue: QueueDiscipline::Batched,
            ..Scheme::dynamic_default()
        }
    }

    /// Batching combined with a custom dynamic configuration.
    pub fn batching_plus(mut scheme: Scheme) -> Scheme {
        scheme.queue = QueueDiscipline::Batched;
        scheme.name = format!("batching + {}", scheme.name);
        scheme
    }

    /// Today's router behaviour (§4.4): per-peer TCP-buffer batches of
    /// `buffer` updates, constant MRAI.
    pub fn tcp_batch(mrai_secs: f64, buffer: usize) -> Scheme {
        Scheme {
            name: format!("tcp-batch({buffer}, MRAI={mrai_secs})"),
            queue: QueueDiscipline::TcpBatch { buffer },
            ..Scheme::constant_mrai(mrai_secs)
        }
    }

    /// The oracle failure-size-aware MRAI (the paper's future-work upper
    /// bound): `(max_fraction, mrai_secs)` rows.
    pub fn oracle(table: &[(f64, f64)]) -> Scheme {
        Scheme {
            name: "oracle".into(),
            mrai: MraiAssignment::OracleFailureSize {
                table: table
                    .iter()
                    .map(|&(f, m)| (f, SimDuration::from_secs_f64(m)))
                    .collect(),
            },
            queue: QueueDiscipline::Fifo,
            overrides: SimOverrides::default(),
        }
    }

    /// Enables Deshpande & Sikdar's timer-cancelling scheme on top of this
    /// configuration.
    #[must_use]
    pub fn with_expedited_improvements(mut self) -> Scheme {
        self.overrides.expedite_improvements = Some(true);
        self.name = format!("{} + expedite", self.name);
        self
    }

    /// Overrides the MRAI scope.
    #[must_use]
    pub fn with_mrai_scope(mut self, scope: MraiScope) -> Scheme {
        self.overrides.mrai_scope = Some(scope);
        self
    }

    /// Overrides timer jitter.
    #[must_use]
    pub fn with_jitter(mut self, on: bool) -> Scheme {
        self.overrides.jitter = Some(on);
        self
    }

    /// Overrides withdrawal rate limiting.
    #[must_use]
    pub fn with_wrate(mut self, on: bool) -> Scheme {
        self.overrides.wrate = Some(on);
        self
    }

    /// Overrides the failure-detection delay.
    #[must_use]
    pub fn with_detection_delay(mut self, delay: SimDuration) -> Scheme {
        self.overrides.detection_delay = Some(delay);
        self
    }

    /// Enables Gao–Rexford policies (customer/peer/provider preferences and
    /// valley-free export; relationships inferred from node degrees).
    #[must_use]
    pub fn with_policy(mut self) -> Scheme {
        self.overrides.policy = Some(true);
        self.name = format!("{} + policy", self.name);
        self
    }

    /// Detects failures via BGP hold-timer expiry (RFC 1771 default 90 s)
    /// instead of instant link-layer notification.
    #[must_use]
    pub fn with_hold_timer(mut self, hold: SimDuration) -> Scheme {
        self.overrides.hold_timer = Some(hold);
        self
    }

    /// Originates `k` prefixes per AS instead of one (scales the update
    /// load per failed AS — the paper's §5 destination-count point).
    #[must_use]
    pub fn with_prefixes_per_as(mut self, k: usize) -> Scheme {
        self.overrides.prefixes_per_as = Some(k);
        self
    }

    /// Allocates a fixed network-wide routing table (power-law split across
    /// ASes) instead of a per-AS prefix count — the full-table workload.
    #[must_use]
    pub fn with_full_table(mut self, spec: crate::network::FullTableSpec) -> Scheme {
        self.overrides.full_table = Some(spec);
        self
    }

    /// Enables RFC 2439 route-flap damping on eBGP sessions.
    #[must_use]
    pub fn with_damping(mut self, cfg: bgpsim_bgp::damping::DampingConfig) -> Scheme {
        self.overrides.damping = Some(cfg);
        self.name = format!("{} + damping", self.name);
        self
    }

    /// Uses per-AS route reflectors instead of the full iBGP mesh
    /// (RFC 4456; only matters on multi-router topologies).
    #[must_use]
    pub fn with_route_reflection(mut self) -> Scheme {
        self.overrides.ibgp_mode = Some(crate::network::IbgpMode::RouteReflector);
        self
    }

    /// Overrides the per-update processing-delay range.
    #[must_use]
    pub fn with_processing_delay(mut self, min: SimDuration, max: SimDuration) -> Scheme {
        self.overrides.proc_min = Some(min);
        self.overrides.proc_max = Some(max);
        self
    }

    /// Renames the scheme (for table legends).
    #[must_use]
    pub fn named(mut self, name: &str) -> Scheme {
        self.name = name.to_owned();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_scheme_shape() {
        let s = Scheme::constant_mrai(2.25);
        assert_eq!(s.name, "MRAI=2.25");
        assert_eq!(s.queue, QueueDiscipline::Fifo);
        match s.mrai {
            MraiAssignment::Uniform(MraiPolicy::Constant(d)) => {
                assert_eq!(d, SimDuration::from_millis(2250));
            }
            other => panic!("unexpected assignment {other:?}"),
        }
    }

    #[test]
    fn degree_dependent_scheme_shape() {
        let s = Scheme::degree_dependent(0.5, 2.25, 8);
        match s.mrai {
            MraiAssignment::DegreeDependent {
                high_degree_min,
                low,
                high,
            } => {
                assert_eq!(high_degree_min, 8);
                assert_eq!(low, SimDuration::from_millis(500));
                assert_eq!(high, SimDuration::from_millis(2250));
            }
            other => panic!("unexpected assignment {other:?}"),
        }
    }

    #[test]
    fn batching_wraps_queue_discipline() {
        let s = Scheme::batching(0.5);
        assert_eq!(s.queue, QueueDiscipline::Batched);
        let s = Scheme::batching_plus_dynamic();
        assert_eq!(s.queue, QueueDiscipline::Batched);
        assert!(matches!(
            s.mrai,
            MraiAssignment::Uniform(MraiPolicy::Dynamic(_))
        ));
    }

    #[test]
    fn dynamic_custom_levels() {
        let s = Scheme::dynamic(&[0.5, 3.5], 0.65, 0.05);
        match s.mrai {
            MraiAssignment::Uniform(MraiPolicy::Dynamic(cfg)) => {
                assert_eq!(cfg.levels.len(), 2);
                assert_eq!(cfg.levels[1], SimDuration::from_millis(3500));
            }
            other => panic!("unexpected assignment {other:?}"),
        }
    }

    #[test]
    fn named_renames() {
        let s = Scheme::constant_mrai(0.5).named("baseline");
        assert_eq!(s.name, "baseline");
    }
}
