//! Scenario scripting: timed sequences of failure and recovery events.
//!
//! The paper measures one failure per run; a downstream user studying
//! churn (repeated disasters, flapping regions, failure-then-repair) wants
//! to script *sequences*. A [`Scenario`] is an ordered list of steps; each
//! step quiesces the network and reports its own [`RunStats`], so a
//! scripted run yields one measurement per event — e.g. the Tdown/Tup pair
//! of a failure-and-repair cycle.

use bgpsim_des::RngStreams;
use bgpsim_topology::region::{central_link_fraction, FailureSpec};
use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

use crate::metrics::RunStats;
use crate::network::Network;

/// One scripted event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ScenarioStep {
    /// Fail a router region (the paper's event).
    FailRouters(FailureSpec),
    /// Fail the central `fraction` of links (routers survive).
    FailCentralLinks(f64),
    /// Withdraw every prefix whose origin sits in the region, in one burst
    /// — the origins stay up and keep their sessions, but flood explicit
    /// withdrawals for their whole prefix blocks (a route leak being pulled
    /// back, or a disaster severing a region's customer cone). On a
    /// full-table workload this is the paper's failure storm at table
    /// scale: thousands of destinations withdrawn in one event storm.
    BurstWithdraw(FailureSpec),
    /// Revive every currently failed router (full session re-establishment
    /// and table exchange).
    ReviveAll,
}

/// An ordered failure/recovery script.
///
/// # Example
///
/// A region fails and later comes back; measure both transitions:
///
/// ```
/// use bgpsim::network::{Network, SimConfig};
/// use bgpsim::scenario::{Scenario, ScenarioStep};
/// use bgpsim::Scheme;
/// use bgpsim_topology::degree::SkewedSpec;
/// use bgpsim_topology::generators::skewed_topology;
/// use bgpsim_topology::region::FailureSpec;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let topo = skewed_topology(30, &SkewedSpec::seventy_thirty(), &mut rng)?;
/// let mut net = Network::new(topo, SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 1));
/// let scenario = Scenario::new(vec![
///     ScenarioStep::FailRouters(FailureSpec::CenterFraction(0.1)),
///     ScenarioStep::ReviveAll,
/// ]);
/// let stats = scenario.run(&mut net);
/// assert_eq!(stats.len(), 2);
/// assert!(stats[1].convergence_delay <= stats[0].convergence_delay,
///         "recovery (Tup) is the faster transition");
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    steps: Vec<ScenarioStep>,
}

impl Scenario {
    /// Creates a scenario from ordered steps.
    pub fn new(steps: Vec<ScenarioStep>) -> Scenario {
        Scenario { steps }
    }

    /// A failure-and-repair cycle of the central `fraction` of routers.
    pub fn fail_and_repair(fraction: f64) -> Scenario {
        Scenario::new(vec![
            ScenarioStep::FailRouters(FailureSpec::CenterFraction(fraction)),
            ScenarioStep::ReviveAll,
        ])
    }

    /// `cycles` repetitions of fail-and-repair (a flapping region).
    pub fn flapping(fraction: f64, cycles: usize) -> Scenario {
        let mut steps = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            steps.push(ScenarioStep::FailRouters(FailureSpec::CenterFraction(
                fraction,
            )));
            steps.push(ScenarioStep::ReviveAll);
        }
        Scenario::new(steps)
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[ScenarioStep] {
        &self.steps
    }

    /// Runs the scenario on a freshly built network: initial convergence,
    /// then each step to quiescence. Returns one [`RunStats`] per step.
    ///
    /// # Panics
    ///
    /// Panics if a `FailRouters` step carries an explicit spec naming a
    /// router id outside the topology. The built-in scenario constructors
    /// never trigger this; already-dead routers in a failure step are
    /// skipped, and `ReviveAll` revives exactly the set of routers the
    /// scenario has failed so far, so neither can panic.
    pub fn run(&self, net: &mut Network) -> Vec<RunStats> {
        net.run_initial_convergence();
        let mut down: Vec<RouterId> = Vec::new();
        let mut out = Vec::with_capacity(self.steps.len());
        let mut failure_rng = RngStreams::new(net.config().seed).stream("scenario-failures", 0);
        for step in &self.steps {
            match step {
                ScenarioStep::FailRouters(spec) => {
                    // Resolve against the topology, excluding already-dead
                    // routers (a region can only fail once until revived).
                    let mut failed = spec.resolve(net.topology(), &mut failure_rng);
                    failed.retain(|r| net.is_alive(*r));
                    let failed = net.inject_failure(&FailureSpec::Explicit(failed));
                    down.extend(failed);
                    down.sort();
                    down.dedup();
                }
                ScenarioStep::FailCentralLinks(fraction) => {
                    let links = central_link_fraction(net.topology(), *fraction);
                    net.inject_link_failure(&links);
                }
                ScenarioStep::BurstWithdraw(spec) => {
                    net.inject_burst_withdrawal(spec);
                }
                ScenarioStep::ReviveAll => {
                    let revive = std::mem::take(&mut down);
                    net.revive_routers(&revive);
                }
            }
            out.push(net.run_to_quiescence());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimConfig;
    use crate::Scheme;
    use bgpsim_topology::degree::SkewedSpec;
    use bgpsim_topology::generators::skewed_topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, n: usize) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = skewed_topology(n, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
        Network::new(
            topo,
            SimConfig::from_scheme(&Scheme::constant_mrai(0.5), seed),
        )
    }

    #[test]
    fn fail_and_repair_restores_everything() {
        let mut network = net(1, 30);
        let stats = Scenario::fail_and_repair(0.1).run(&mut network);
        assert_eq!(stats.len(), 2);
        network.assert_routing_consistent();
        for r in network.topology().router_ids() {
            assert!(network.is_alive(r));
            assert_eq!(network.node(r).unwrap().loc_rib().len(), 30);
        }
    }

    #[test]
    fn flapping_region_stays_consistent() {
        let mut network = net(2, 25);
        let stats = Scenario::flapping(0.1, 3).run(&mut network);
        assert_eq!(stats.len(), 6);
        network.assert_routing_consistent();
        // Every failure step withdraws something; every revive announces.
        for (i, s) in stats.iter().enumerate() {
            assert!(s.messages > 0, "step {i} produced no messages");
        }
    }

    #[test]
    fn link_step_keeps_routers_alive() {
        let mut network = net(3, 30);
        let scenario = Scenario::new(vec![ScenarioStep::FailCentralLinks(0.1)]);
        let stats = scenario.run(&mut network);
        assert_eq!(stats.len(), 1);
        network.assert_routing_consistent();
        assert!(network.topology().router_ids().all(|r| network.is_alive(r)));
    }

    #[test]
    fn consecutive_failures_accumulate() {
        let mut network = net(4, 40);
        let scenario = Scenario::new(vec![
            ScenarioStep::FailRouters(FailureSpec::CenterFraction(0.05)),
            ScenarioStep::FailRouters(FailureSpec::CornerFraction(0.05)),
            ScenarioStep::ReviveAll,
        ]);
        let stats = scenario.run(&mut network);
        assert_eq!(stats.len(), 3);
        network.assert_routing_consistent();
        for r in network.topology().router_ids() {
            assert!(network.is_alive(r), "router {r} not revived");
        }
    }

    #[test]
    fn burst_withdraw_step_keeps_routers_alive_and_drops_routes() {
        let mut network = net(5, 25);
        let scenario = Scenario::new(vec![ScenarioStep::BurstWithdraw(
            FailureSpec::CenterFraction(0.2),
        )]);
        let stats = scenario.run(&mut network);
        assert_eq!(stats.len(), 1);
        assert!(stats[0].messages > 0, "the storm must generate updates");
        network.assert_routing_consistent();
        // No router died — only routes did.
        assert!(network.topology().router_ids().all(|r| network.is_alive(r)));
        let gone = network.withdrawn_prefixes().count();
        assert!(gone > 0);
        for r in network.topology().router_ids() {
            assert_eq!(network.node(r).unwrap().loc_rib().len(), 25 - gone);
        }
    }

    #[test]
    fn scenario_serializes() {
        let s = Scenario::flapping(0.1, 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.steps().len(), 4);
    }
}
