//! Per-run statistics and cross-trial aggregation.

use bgpsim_des::SimDuration;
use serde::{Deserialize, Serialize};

/// What one simulated failure run produced (post-failure activity only;
/// counters are reset after initial convergence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Time from failure injection to the last routing-relevant event
    /// (message sent/delivered or processing completed).
    pub convergence_delay: SimDuration,
    /// Update messages sent network-wide (announcements + withdrawals),
    /// counted per destination per peer — the quantity of Figs 2 and 11.
    pub messages: u64,
    /// Announcements among [`messages`](RunStats::messages).
    pub announcements: u64,
    /// Withdrawals among [`messages`](RunStats::messages).
    pub withdrawals: u64,
    /// Work items actually processed across all surviving routers.
    pub updates_processed: u64,
    /// Decision-process executions across all surviving routers.
    pub decision_runs: u64,
    /// Decision runs that fell back to a full Adj-RIB-In rescan.
    pub full_rescans: u64,
    /// Decision runs resolved on the incremental fast path.
    pub fast_decisions: u64,
    /// Stale updates deleted unprocessed by the batching discipline.
    pub stale_deleted: u64,
    /// Largest input-queue length observed at any router.
    pub peak_queue: usize,
    /// Routers that failed.
    pub failed_routers: usize,
    /// Discrete events delivered during the post-failure phase.
    pub events: u64,
    /// Time the initial (pre-failure) convergence took.
    pub initial_convergence: SimDuration,
}

/// Aggregate over several seeded trials of the same experiment point.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// The per-trial results.
    pub runs: Vec<RunStats>,
}

impl Aggregate {
    /// Wraps per-trial results.
    pub fn new(runs: Vec<RunStats>) -> Aggregate {
        Aggregate { runs }
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.runs.len()
    }

    /// Mean convergence delay in seconds; 0.0 for an empty aggregate
    /// (never NaN — use [`try_mean_delay_secs`](Aggregate::try_mean_delay_secs)
    /// to distinguish "no trials" from "zero delay").
    pub fn mean_delay_secs(&self) -> f64 {
        self.try_mean_delay_secs().unwrap_or(0.0)
    }

    /// Mean convergence delay in seconds, `None` for an empty aggregate.
    pub fn try_mean_delay_secs(&self) -> Option<f64> {
        mean(self.runs.iter().map(|r| r.convergence_delay.as_secs_f64()))
    }

    /// Sample standard deviation of the convergence delay in seconds
    /// (0.0 for fewer than two trials).
    pub fn std_delay_secs(&self) -> f64 {
        std_dev(self.runs.iter().map(|r| r.convergence_delay.as_secs_f64()))
    }

    /// Mean number of update messages; 0.0 for an empty aggregate (never
    /// NaN — see [`try_mean_messages`](Aggregate::try_mean_messages)).
    pub fn mean_messages(&self) -> f64 {
        self.try_mean_messages().unwrap_or(0.0)
    }

    /// Mean number of update messages, `None` for an empty aggregate.
    pub fn try_mean_messages(&self) -> Option<f64> {
        mean(self.runs.iter().map(|r| r.messages as f64))
    }

    /// Mean number of stale updates deleted by batching; 0.0 for an empty
    /// aggregate (never NaN — see
    /// [`try_mean_stale_deleted`](Aggregate::try_mean_stale_deleted)).
    pub fn mean_stale_deleted(&self) -> f64 {
        self.try_mean_stale_deleted().unwrap_or(0.0)
    }

    /// Mean number of stale deletions, `None` for an empty aggregate.
    pub fn try_mean_stale_deleted(&self) -> Option<f64> {
        mean(self.runs.iter().map(|r| r.stale_deleted as f64))
    }

    /// Largest queue peak over all trials.
    pub fn max_peak_queue(&self) -> usize {
        self.runs.iter().map(|r| r.peak_queue).max().unwrap_or(0)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the convergence delay in seconds,
    /// by linear interpolation between order statistics. Stochastic
    /// simulations are better summarized by medians/tails than means when
    /// trial counts grow.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn delay_quantile_secs(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.runs.is_empty() {
            return 0.0;
        }
        let mut delays: Vec<f64> = self
            .runs
            .iter()
            .map(|r| r.convergence_delay.as_secs_f64())
            .collect();
        // total_cmp: delays are always finite here (they come from
        // SimDuration), but a total order costs nothing and removes the
        // panic path partial_cmp would have.
        delays.sort_by(f64::total_cmp);
        let pos = q * (delays.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        if lo == hi {
            delays[lo]
        } else {
            let frac = pos - lo as f64;
            delays[lo] * (1.0 - frac) + delays[hi] * frac
        }
    }

    /// Median convergence delay in seconds.
    pub fn median_delay_secs(&self) -> f64 {
        self.delay_quantile_secs(0.5)
    }

    /// The half-width of a normal-approximation 95% confidence interval on
    /// the mean delay (zero for fewer than two trials).
    pub fn delay_ci95_secs(&self) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        1.96 * self.std_delay_secs() / (self.runs.len() as f64).sqrt()
    }
}

/// `None` for an empty iterator — the 0/0 = NaN case callers must not
/// silently propagate into figures.
fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / f64::from(n))
    }
}

fn std_dev(values: impl Iterator<Item = f64>) -> f64 {
    let vals: Vec<f64> = values.collect();
    if vals.len() < 2 {
        return 0.0;
    }
    let m = mean(vals.iter().copied()).expect("len >= 2");
    let var = vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (vals.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(delay_secs: u64, messages: u64) -> RunStats {
        RunStats {
            convergence_delay: SimDuration::from_secs(delay_secs),
            messages,
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_means() {
        let agg = Aggregate::new(vec![run(10, 100), run(20, 300)]);
        assert_eq!(agg.trials(), 2);
        assert_eq!(agg.mean_delay_secs(), 15.0);
        assert_eq!(agg.mean_messages(), 200.0);
    }

    #[test]
    fn std_dev_of_two_points() {
        let agg = Aggregate::new(vec![run(10, 0), run(20, 0)]);
        assert!((agg.std_delay_secs() - 7.0710678).abs() < 1e-6);
    }

    #[test]
    fn empty_aggregate_is_zero_never_nan() {
        let agg = Aggregate::default();
        assert_eq!(agg.mean_delay_secs(), 0.0);
        assert_eq!(agg.mean_messages(), 0.0);
        assert_eq!(agg.mean_stale_deleted(), 0.0);
        assert_eq!(agg.std_delay_secs(), 0.0);
        assert_eq!(agg.max_peak_queue(), 0);
        assert_eq!(agg.try_mean_delay_secs(), None);
        assert_eq!(agg.try_mean_messages(), None);
        assert_eq!(agg.try_mean_stale_deleted(), None);
    }

    #[test]
    fn try_means_match_means_when_nonempty() {
        let agg = Aggregate::new(vec![run(10, 100), run(20, 300)]);
        assert_eq!(agg.try_mean_delay_secs(), Some(agg.mean_delay_secs()));
        assert_eq!(agg.try_mean_messages(), Some(agg.mean_messages()));
        assert_eq!(agg.try_mean_stale_deleted(), Some(agg.mean_stale_deleted()));
    }

    #[test]
    fn single_run_has_zero_std() {
        let agg = Aggregate::new(vec![run(5, 1)]);
        assert_eq!(agg.std_delay_secs(), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let agg = Aggregate::new(vec![run(10, 0), run(20, 0), run(40, 0)]);
        assert_eq!(agg.delay_quantile_secs(0.0), 10.0);
        assert_eq!(agg.delay_quantile_secs(1.0), 40.0);
        assert_eq!(agg.median_delay_secs(), 20.0);
        assert_eq!(agg.delay_quantile_secs(0.25), 15.0);
    }

    #[test]
    fn quantiles_handle_degenerate_inputs() {
        assert_eq!(Aggregate::default().delay_quantile_secs(0.5), 0.0);
        let one = Aggregate::new(vec![run(7, 0)]);
        assert_eq!(one.median_delay_secs(), 7.0);
        assert_eq!(one.delay_ci95_secs(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_more_trials() {
        let two = Aggregate::new(vec![run(10, 0), run(20, 0)]);
        let four = Aggregate::new(vec![run(10, 0), run(20, 0), run(10, 0), run(20, 0)]);
        assert!(four.delay_ci95_secs() < two.delay_ci95_secs());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let _ = Aggregate::new(vec![run(1, 0)]).delay_quantile_secs(1.5);
    }

    #[test]
    fn max_peak_queue() {
        let mut a = run(1, 1);
        a.peak_queue = 7;
        let mut b = run(1, 1);
        b.peak_queue = 3;
        assert_eq!(Aggregate::new(vec![a, b]).max_peak_queue(), 7);
    }
}
