//! Seeded multi-trial experiments.
//!
//! One [`Experiment`] is a point on a paper figure: a topology family, a
//! scheme, a failure size, and a number of seeded trials. Each trial draws
//! a fresh topology and RNG streams from `(base_seed, trial)`, runs the
//! full pipeline (initial convergence → failure → re-convergence) and the
//! results are aggregated. [`run_all_parallel`] fans a batch of experiment
//! points out over worker threads (crossbeam scoped threads — trials are
//! independent).

use bgpsim_des::RngStreams;
use bgpsim_topology::degree::{DegreeSpec, SkewedSpec};
use bgpsim_topology::generators::{hierarchical, topology_from_spec, HierarchicalParams};
use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
use bgpsim_topology::region::FailureSpec;
use bgpsim_topology::Topology;
use rand::Rng;
use serde::{Deserialize, Serialize};

pub use crate::metrics::Aggregate;
use crate::metrics::RunStats;
use crate::network::{Network, SimConfig};
use crate::scheme::Scheme;
use crate::warm::{SnapshotCache, SnapshotKey, WarmStats};

/// A topology family an experiment draws from (one fresh sample per trial).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologySpec {
    /// Single-router-per-AS with a skewed degree distribution.
    Skewed {
        /// Number of ASes/routers.
        n: usize,
        /// The degree distribution.
        spec: SkewedSpec,
    },
    /// Single-router-per-AS with any degree distribution.
    FromDegrees {
        /// Number of ASes/routers.
        n: usize,
        /// The degree distribution.
        spec: DegreeSpec,
    },
    /// Multi-router-per-AS ("realistic", §3.1/Fig 13).
    MultiAs(MultiAsConfig),
    /// Engineered Internet-like hierarchy (Tier-1 clique + transit tiers);
    /// the substrate for the routing-policy extension, where valley-free
    /// reachability must be total for a fair comparison.
    Hierarchical(HierarchicalParams),
}

impl TopologySpec {
    /// The paper's default: `n` nodes, 70-30 distribution, average degree
    /// 3.8.
    pub fn seventy_thirty(n: usize) -> TopologySpec {
        TopologySpec::Skewed {
            n,
            spec: SkewedSpec::seventy_thirty(),
        }
    }

    /// `n` nodes with the 50-50 distribution (average degree 3.8).
    pub fn fifty_fifty(n: usize) -> TopologySpec {
        TopologySpec::Skewed {
            n,
            spec: SkewedSpec::fifty_fifty(),
        }
    }

    /// `n` nodes with the 85-15 distribution (average degree 3.8).
    pub fn eighty_five_fifteen(n: usize) -> TopologySpec {
        TopologySpec::Skewed {
            n,
            spec: SkewedSpec::eighty_five_fifteen(),
        }
    }

    /// `n` nodes with the dense 50-50 distribution (average degree 7.6).
    pub fn fifty_fifty_dense(n: usize) -> TopologySpec {
        TopologySpec::Skewed {
            n,
            spec: SkewedSpec::fifty_fifty_dense(),
        }
    }

    /// `n` ASes with the CAIDA-like tiered stub/transit distribution
    /// (average degree ≈ 4.2, power-law transit tail) — the
    /// Internet-scale preset for the 10k–70k-AS memory workloads. See
    /// [`bgpsim_topology::degree::caida_like`].
    pub fn caida_like(n: usize) -> TopologySpec {
        TopologySpec::Skewed {
            n,
            spec: bgpsim_topology::degree::caida_like(n),
        }
    }

    /// The paper's realistic multi-router topology over `num_ases` ASes.
    pub fn realistic(num_ases: usize) -> TopologySpec {
        TopologySpec::MultiAs(MultiAsConfig::realistic(num_ases))
    }

    /// A three-tier Internet-like hierarchy of about `n` nodes.
    pub fn hierarchical(n: usize) -> TopologySpec {
        TopologySpec::Hierarchical(HierarchicalParams::three_tier(n))
    }

    /// Generates one topology sample.
    ///
    /// # Panics
    ///
    /// Panics if generation fails repeatedly (pathological specs).
    pub fn generate(&self, rng: &mut impl Rng) -> Topology {
        match self {
            TopologySpec::Skewed { n, spec } => {
                topology_from_spec(*n, &DegreeSpec::Skewed(spec.clone()), rng)
                    .expect("skewed topology generation failed")
            }
            TopologySpec::FromDegrees { n, spec } => {
                topology_from_spec(*n, spec, rng).expect("topology generation failed")
            }
            TopologySpec::MultiAs(cfg) => {
                generate_multi_as(cfg, rng).expect("multi-AS topology generation failed")
            }
            TopologySpec::Hierarchical(params) => {
                hierarchical(params, rng).expect("hierarchical topology generation failed")
            }
        }
    }
}

/// One experiment point: topology family × scheme × failure × trials.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Topology family sampled fresh per trial.
    pub topology: TopologySpec,
    /// The scheme under test.
    pub scheme: Scheme,
    /// What fails.
    pub failure: FailureSpec,
    /// Number of seeded trials.
    pub trials: u32,
    /// Base seed; trial `i` derives all randomness from `(base_seed, i)`.
    pub base_seed: u64,
}

impl Experiment {
    /// Runs all trials sequentially.
    pub fn run(&self) -> Aggregate {
        let runs = (0..self.trials).map(|t| self.run_trial(t)).collect();
        Aggregate::new(runs)
    }

    /// Runs a single trial cold: fresh topology, fresh network, initial
    /// convergence from scratch. The reference the warm path is checked
    /// against.
    pub fn run_trial(&self, trial: u32) -> RunStats {
        self.run_trial_with_network(trial).0
    }

    /// Like [`run_trial`](Experiment::run_trial), but hands back the
    /// finished network alongside the stats so callers can inspect
    /// post-run instrumentation — notably
    /// [`Network::shard_phase_timings`] for the sharded event loop's
    /// per-phase wall-clock breakdown.
    pub fn run_trial_with_network(&self, trial: u32) -> (RunStats, Network) {
        let mut net = self.build_network(trial);
        let stats = net.run_failure_experiment(&self.failure);
        (stats, net)
    }

    /// Runs a single trial warm-started from `cache`: the converged
    /// pre-failure state is forked from a shared snapshot (built on first
    /// use), so only failure injection and re-convergence run per point.
    /// Produces bit-identical [`RunStats`] to [`run_trial`](Experiment::run_trial) —
    /// the converged state depends on the snapshot key alone, forking
    /// clones it exactly, and failure injection derives its randomness
    /// freshly from the simulation seed.
    pub fn run_trial_warm(&self, trial: u32, cache: &SnapshotCache) -> RunStats {
        let mut net = cache.fork_or_build(self.snapshot_key(trial), || {
            let mut net = self.build_network(trial);
            net.run_initial_convergence();
            net
        });
        net.inject_failure(&self.failure);
        net.run_to_quiescence()
    }

    /// Runs a single trial with re-convergence tracing: the network
    /// converges untraced, a memory sink (capacity `trace_capacity`
    /// events, [`DEFAULT_MEMORY_CAPACITY`](crate::trace::DEFAULT_MEMORY_CAPACITY)
    /// when `None`) is attached at failure injection, and the recorded
    /// stream comes back with the stats. Tracing is observation-only, so
    /// `stats` is bit-identical to [`run_trial`](Experiment::run_trial).
    pub fn run_trial_traced(&self, trial: u32, trace_capacity: Option<usize>) -> TracedTrial {
        let mut net = self.build_network(trial);
        net.run_initial_convergence();
        net.inject_failure(&self.failure);
        let capacity = trace_capacity.unwrap_or(crate::trace::DEFAULT_MEMORY_CAPACITY);
        net.set_trace_sink(crate::trace::TraceSink::memory(capacity));
        let stats = net.run_to_quiescence();
        let failure_time = net.failure_time().expect("failure was injected");
        let dropped = net
            .trace_sink()
            .memory_events()
            .map(|m| m.dropped())
            .unwrap_or(0);
        TracedTrial {
            stats,
            failure_time,
            dropped,
            events: net.take_trace_events(),
        }
    }

    /// Builds the trial's network (topology sampled, config applied) but
    /// runs nothing yet.
    fn build_network(&self, trial: u32) -> Network {
        let streams = RngStreams::new(self.base_seed);
        let mut topo_rng = streams.stream("topology", u64::from(trial));
        let topo = self.topology.generate(&mut topo_rng);
        let sim_seed: u64 = streams.stream("sim-seed", u64::from(trial)).gen();
        let mut cfg = SimConfig::from_scheme(&self.scheme, sim_seed);
        if let TopologySpec::Hierarchical(params) = &self.topology {
            // Hierarchical topologies carry ground-truth tiers for policy
            // relationships (no inference needed).
            cfg.policy_tiers = Some(params.tier_vector());
        }
        Network::new(topo, cfg)
    }

    /// The snapshot-cache key identifying this point's converged
    /// pre-failure state: everything about the trial *except* the failure.
    pub fn snapshot_key(&self, trial: u32) -> SnapshotKey {
        let prototype = serde_json::to_string(&(&self.topology, &self.scheme))
            .expect("topology/scheme specs serialize");
        SnapshotKey {
            prototype,
            base_seed: self.base_seed,
            trial,
        }
    }
}

/// A traced trial: end-of-run stats plus the structured trace of the
/// re-convergence (see [`Experiment::run_trial_traced`]).
#[derive(Clone, Debug)]
pub struct TracedTrial {
    /// The run's statistics, bit-identical to an untraced trial.
    pub stats: RunStats,
    /// When the failure took effect — the `t0` timelines measure from.
    pub failure_time: bgpsim_des::SimTime,
    /// Events evicted by the memory ring (0 = the trace is complete).
    pub dropped: u64,
    /// The recorded re-convergence events, in global order.
    pub events: Vec<crate::trace::TraceEvent>,
}

impl TracedTrial {
    /// The analysis pass over this trial's events.
    pub fn timeline(&self) -> crate::trace::Timeline {
        crate::trace::Timeline::from_events(&self.events)
    }
}

/// The default worker count [`run_all_parallel`] uses when `threads` is
/// `None`: available parallelism, falling back to 4.
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(4)
        .max(1)
}

/// Wall-clock timing of one trial inside a parallel batch run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialTiming {
    /// Index of the experiment point within the batch.
    pub point: usize,
    /// Trial number within the point.
    pub trial: u32,
    /// Wall-clock time the trial took on its worker thread, in seconds.
    pub wall_secs: f64,
}

/// What a parallel batch run reports besides the aggregates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParallelReport {
    /// Worker threads actually used (requested count capped by the number
    /// of tasks in the batch).
    pub threads: usize,
    /// Worker threads the caller asked for (the default-thread-count
    /// resolution when the caller passed `None`). Recording both sides
    /// keeps benchmark artifacts honest on machines with fewer cores than
    /// the bench requests.
    pub threads_requested: usize,
    /// What `std::thread::available_parallelism()` reported at run time —
    /// the hardware ceiling on real concurrency for this batch.
    pub parallelism_available: usize,
    /// Per-trial wall-clock timings, in `(point, trial)` order.
    pub timings: Vec<TrialTiming>,
    /// Warm-start snapshot-cache effectiveness (`None` for cold runs).
    pub warm: Option<WarmStats>,
}

/// Runs a batch of experiment points, fanning individual trials out over
/// `threads` workers (defaults to available parallelism). Results are in
/// the same order as `points`.
///
/// Trials are warm-started: points sharing a `(topology, scheme, seed,
/// trial)` key — a figure sweep's points differ only in failure size —
/// fork one shared converged prototype instead of re-converging from
/// cold. Results are bit-identical to cold runs (see [`crate::warm`]).
pub fn run_all_parallel(points: &[Experiment], threads: Option<usize>) -> Vec<Aggregate> {
    run_all_parallel_timed(points, threads).0
}

/// [`run_all_parallel`], additionally reporting the worker-thread count,
/// per-trial wall-clock timings and snapshot-cache counters (consumed by
/// the hot-path throughput harness, `BENCH_hotpath.json`).
pub fn run_all_parallel_timed(
    points: &[Experiment],
    threads: Option<usize>,
) -> (Vec<Aggregate>, ParallelReport) {
    run_all_parallel_inner(points, threads, true)
}

/// [`run_all_parallel_timed`] without the warm-start snapshot cache:
/// every trial re-converges from cold. Kept as the reference path for the
/// cold-vs-warm comparison in the `hotpath` bench.
pub fn run_all_parallel_timed_cold(
    points: &[Experiment],
    threads: Option<usize>,
) -> (Vec<Aggregate>, ParallelReport) {
    run_all_parallel_inner(points, threads, false)
}

fn run_all_parallel_inner(
    points: &[Experiment],
    threads: Option<usize>,
    warm: bool,
) -> (Vec<Aggregate>, ParallelReport) {
    let threads = threads.unwrap_or_else(default_thread_count).max(1);
    let cache = warm.then(SnapshotCache::new);
    if let Some(cache) = &cache {
        // Declare the batch's full demand up front: the cache then hands
        // the prototype itself to each key's last trial (no clone) and
        // evicts the entry, so converged networks are released as the
        // sweep progresses instead of staying pinned until the end.
        for p in points {
            for trial in 0..p.trials {
                cache.expect_forks(p.snapshot_key(trial), 1);
            }
        }
    }

    // Flatten to (point index, trial) tasks.
    let tasks: Vec<(usize, u32)> = points
        .iter()
        .enumerate()
        .flat_map(|(i, p)| (0..p.trials).map(move |t| (i, t)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    // One slot per trial: the run's stats plus its wall-clock seconds.
    type TrialSlots = std::sync::Mutex<Vec<Option<(RunStats, f64)>>>;
    let results: Vec<TrialSlots> = points
        .iter()
        .map(|p| std::sync::Mutex::new(vec![None; p.trials as usize]))
        .collect();

    let workers = threads.min(tasks.len().max(1));
    // Trial workers are plain scoped threads: there are few of them and
    // they live for the whole batch, so spawn cost is noise. The epoch
    // fan-out inside each trial's sharded pump is what runs on the
    // process-wide parked pool (`crate::pool::global`) — one pool,
    // reused across every epoch of every trial in the batch, so sweeps
    // never pay a per-trial thread-pool setup. Concurrent pumps open
    // concurrent scopes on that shared pool; its helping barrier keeps
    // them from starving each other even when workers < pumps.
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(point_idx, trial)) = tasks.get(i) else {
                    break;
                };
                let started = std::time::Instant::now();
                let stats = match &cache {
                    Some(cache) => points[point_idx].run_trial_warm(trial, cache),
                    None => points[point_idx].run_trial(trial),
                };
                let wall_secs = started.elapsed().as_secs_f64();
                results[point_idx].lock().expect("no poisoned trials")[trial as usize] =
                    Some((stats, wall_secs));
            });
        }
    })
    .expect("experiment worker panicked");

    let mut timings = Vec::with_capacity(tasks.len());
    let aggregates = results
        .into_iter()
        .enumerate()
        .map(|(point, m)| {
            let runs = m
                .into_inner()
                .expect("no poisoned trials")
                .into_iter()
                .enumerate()
                .map(|(trial, r)| {
                    let (stats, wall_secs) = r.expect("every trial ran");
                    timings.push(TrialTiming {
                        point,
                        trial: trial as u32,
                        wall_secs,
                    });
                    stats
                })
                .collect();
            Aggregate::new(runs)
        })
        .collect();
    (
        aggregates,
        ParallelReport {
            threads: workers,
            threads_requested: threads,
            parallelism_available: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            timings,
            warm: cache.map(|c| c.stats()),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment(seed: u64) -> Experiment {
        Experiment {
            topology: TopologySpec::seventy_thirty(20),
            scheme: Scheme::constant_mrai(0.5),
            failure: FailureSpec::CenterFraction(0.1),
            trials: 2,
            base_seed: seed,
        }
    }

    #[test]
    fn sequential_run_aggregates_trials() {
        let agg = tiny_experiment(1).run();
        assert_eq!(agg.trials(), 2);
        assert!(agg.mean_delay_secs() > 0.0);
        assert!(agg.mean_messages() > 0.0);
    }

    #[test]
    fn traced_trial_matches_untraced_and_explains_delay() {
        let exp = tiny_experiment(5);
        let traced = exp.run_trial_traced(0, None);
        assert_eq!(
            traced.stats,
            exp.run_trial(0),
            "tracing must not perturb the simulation"
        );
        assert_eq!(traced.dropped, 0);
        assert!(!traced.events.is_empty());
        let tl = traced.timeline();
        // The last per-destination settle the timeline reconstructs is the
        // last best-path change; the convergence delay additionally counts
        // trailing non-decision activity (final withdrawals draining), so
        // it bounds the settle time from above.
        let settle = tl.last_settle_since(traced.failure_time);
        assert!(settle <= traced.stats.convergence_delay);
        assert!(tl.sent > 0 && tl.received > 0 && tl.processed > 0);
    }

    #[test]
    fn trials_are_reproducible() {
        let a = tiny_experiment(2).run_trial(0);
        let b = tiny_experiment(2).run_trial(0);
        assert_eq!(a, b);
        let c = tiny_experiment(2).run_trial(1);
        assert_ne!(a, c, "different trials use different randomness");
    }

    #[test]
    fn parallel_matches_sequential() {
        // The parallel runner is warm-started, the sequential reference is
        // cold — this doubles as the warm == cold determinism lock.
        let points = vec![tiny_experiment(3), tiny_experiment(4)];
        let seq: Vec<Aggregate> = points.iter().map(Experiment::run).collect();
        let par = run_all_parallel(&points, Some(3));
        assert_eq!(seq, par);
    }

    #[test]
    fn warm_trial_is_bit_identical_to_cold() {
        let mut sweep = Vec::new();
        for fraction in [0.05, 0.1, 0.2] {
            let mut p = tiny_experiment(5);
            p.failure = FailureSpec::CenterFraction(fraction);
            sweep.push(p);
        }
        let cache = SnapshotCache::new();
        for p in &sweep {
            for trial in 0..p.trials {
                assert_eq!(p.run_trial_warm(trial, &cache), p.run_trial(trial));
            }
        }
        // All points share (topology, scheme, seed): one snapshot per trial.
        let stats = cache.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.forks, 6);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn snapshot_key_ignores_failure_only() {
        let a = tiny_experiment(6);
        let mut b = tiny_experiment(6);
        b.failure = FailureSpec::CenterFraction(0.2);
        assert_eq!(a.snapshot_key(0), b.snapshot_key(0));
        assert_ne!(a.snapshot_key(0), a.snapshot_key(1));
        let mut c = tiny_experiment(6);
        c.scheme = Scheme::batching(0.5);
        assert_ne!(a.snapshot_key(0), c.snapshot_key(0));
    }

    #[test]
    fn cold_parallel_reports_no_warm_stats() {
        let points = vec![tiny_experiment(8)];
        let (warm_agg, warm_report) = run_all_parallel_timed(&points, Some(2));
        let (cold_agg, cold_report) = run_all_parallel_timed_cold(&points, Some(2));
        assert_eq!(warm_agg, cold_agg);
        assert!(cold_report.warm.is_none());
        let stats = warm_report.warm.expect("warm runs report cache stats");
        assert_eq!(stats.forks, 2);
    }

    #[test]
    fn parallel_handles_empty_batch() {
        assert!(run_all_parallel(&[], Some(2)).is_empty());
    }

    #[test]
    fn topology_presets_generate() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        for spec in [
            TopologySpec::seventy_thirty(30),
            TopologySpec::fifty_fifty(30),
            TopologySpec::eighty_five_fifteen(40),
            TopologySpec::fifty_fifty_dense(30),
            TopologySpec::realistic(12),
            TopologySpec::hierarchical(40),
        ] {
            let topo = spec.generate(&mut rng);
            assert!(topo.is_connected());
        }
    }
}
