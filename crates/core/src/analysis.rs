//! Analytic convergence-delay models from the paper's related work (§2).
//!
//! The paper contrasts its simulations with the models of Labovitz et
//! al. \[5, 6\] and Pei et al. \[8\], which bound the convergence delay of a
//! *single* route withdrawal when routers are **not overloaded**. These
//! estimators are implemented here so experiments can report how far a
//! measured delay sits from the no-overload regime — the gap *is* the
//! processing-overload effect the paper's schemes attack. (No closed-form
//! model exists for arbitrary failures in arbitrary networks; §2 makes
//! exactly that point.)

use bgpsim_des::SimDuration;
use bgpsim_topology::metrics::distances_from;
use bgpsim_topology::Topology;

/// Labovitz et al. \[5\]: after a withdrawal in a **complete graph** of `n`
/// nodes, convergence takes at least `(n − 3) · MRAI` (and up to `O(n!)`
/// message orderings in the worst case).
///
/// ```
/// use bgpsim::analysis::labovitz_full_mesh_best_case;
/// use bgpsim_des::SimDuration;
///
/// let bound = labovitz_full_mesh_best_case(30, SimDuration::from_secs(30));
/// assert_eq!(bound, SimDuration::from_secs(27 * 30));
/// ```
pub fn labovitz_full_mesh_best_case(n: usize, mrai: SimDuration) -> SimDuration {
    mrai * (n.saturating_sub(3)) as u64
}

/// Labovitz et al. \[6\] / Pei et al. \[8\]-style upper estimate for a single
/// route's convergence when no router is overloaded: path hunting explores
/// progressively longer alternatives, each round gated by one MRAI plus
/// message latency, so
///
/// `delay ≲ L · (MRAI + 2·link_delay + processing)`
///
/// where `L` is the longest shortest-path distance in the (surviving)
/// topology. With overload the measured delay exceeds this — that excess
/// is what Figs 1/3 plot.
pub fn no_overload_upper_estimate(
    topo: &Topology,
    mrai: SimDuration,
    link_delay: SimDuration,
    mean_processing: SimDuration,
) -> SimDuration {
    let l = eccentricity_max(topo).max(1) as u64;
    (mrai + link_delay * 2 + mean_processing) * l
}

/// Largest shortest-path distance (graph diameter) over connected pairs.
fn eccentricity_max(topo: &Topology) -> usize {
    let mut max = 0usize;
    for src in topo.router_ids() {
        for d in distances_from(topo, src).into_iter().flatten() {
            max = max.max(d);
        }
    }
    max
}

/// The overload factor of a measured delay relative to the no-overload
/// estimate: values near (or below) 1 mean the MRAI regime dominated;
/// large values mean processing overload dominated — exactly the paper's
/// small-MRAI/large-failure corner.
pub fn overload_factor(measured: SimDuration, estimate: SimDuration) -> f64 {
    if estimate.is_zero() {
        return f64::INFINITY;
    }
    measured.as_secs_f64() / estimate.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, SimConfig};
    use crate::Scheme;
    use bgpsim_topology::degree::SkewedSpec;
    use bgpsim_topology::generators::skewed_topology;
    use bgpsim_topology::region::FailureSpec;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn labovitz_formula() {
        let mrai = SimDuration::from_secs(30);
        assert_eq!(
            labovitz_full_mesh_best_case(10, mrai),
            SimDuration::from_secs(210)
        );
        assert_eq!(labovitz_full_mesh_best_case(3, mrai), SimDuration::ZERO);
        assert_eq!(labovitz_full_mesh_best_case(0, mrai), SimDuration::ZERO);
    }

    #[test]
    fn estimate_scales_with_diameter_and_mrai() {
        let mut rng = SmallRng::seed_from_u64(4);
        let topo = skewed_topology(60, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
        let small = no_overload_upper_estimate(
            &topo,
            SimDuration::from_millis(500),
            SimDuration::from_millis(25),
            SimDuration::from_micros(15_500),
        );
        let large = no_overload_upper_estimate(
            &topo,
            SimDuration::from_secs(30),
            SimDuration::from_millis(25),
            SimDuration::from_micros(15_500),
        );
        assert!(large > small * 10);
    }

    #[test]
    fn overload_factor_reports_regimes() {
        let est = SimDuration::from_secs(10);
        assert!((overload_factor(SimDuration::from_secs(5), est) - 0.5).abs() < 1e-9);
        assert!(overload_factor(SimDuration::from_secs(100), est) > 9.0);
        assert!(overload_factor(SimDuration::from_secs(1), SimDuration::ZERO).is_infinite());
    }

    /// Empirical anchor for the model: a small failure at a generous MRAI
    /// (no overload) must stay within the no-overload estimate, while a
    /// large failure at a small MRAI must blow past it.
    #[test]
    fn measured_delays_bracket_the_estimate() {
        let make = |scheme: &Scheme, frac: f64, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(9);
            let topo = skewed_topology(60, &SkewedSpec::seventy_thirty(), &mut rng).unwrap();
            let estimate = no_overload_upper_estimate(
                &topo,
                match scheme.name.as_str() {
                    "MRAI=2.25" => SimDuration::from_millis(2250),
                    _ => SimDuration::from_millis(500),
                },
                SimDuration::from_millis(25),
                SimDuration::from_micros(15_500),
            );
            let mut net = Network::new(topo, SimConfig::from_scheme(scheme, seed));
            let stats = net.run_failure_experiment(&FailureSpec::CenterFraction(frac));
            (overload_factor(stats.convergence_delay, estimate), estimate)
        };
        let (calm, _) = make(&Scheme::constant_mrai(2.25), 0.01, 5);
        let (stormy, _) = make(&Scheme::constant_mrai(0.5), 0.20, 5);
        // The estimate is for a single withdrawal; a 1% regional failure
        // touches a handful of prefixes, so allow a small multiple.
        assert!(
            calm < 4.0,
            "no-overload run should sit near the estimate: {calm:.2}"
        );
        assert!(
            stormy > 6.0,
            "overloaded run must blow past the estimate: {stormy:.2}"
        );
    }
}
