//! Route-flap damping (RFC 2439).
//!
//! Damping penalizes unstable routes: every flap (withdrawal or replacement
//! of a previously advertised route) adds to a per-(peer, prefix) penalty
//! that decays exponentially; above the *suppress* threshold the route is
//! excluded from the decision process until the penalty decays below the
//! *reuse* threshold.
//!
//! Damping is the other deployed answer to update storms, and it interacts
//! with this paper's topic in a famous way: during post-failure path
//! hunting, *legitimate* alternate routes flap and get suppressed, so
//! damping can lengthen exactly the convergence it was meant to protect
//! against (Mao et al., SIGCOMM 2002, *Route Flap Damping Exacerbates
//! Internet Routing Convergence*). The `ext-damping` extension reproduces
//! that qualitative effect against this paper's schemes.

use bgpsim_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Damping parameters (RFC 2439 terminology).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DampingConfig {
    /// Penalty added per flap (RFC suggests 1000 per withdrawal).
    pub penalty_per_flap: f64,
    /// Penalty above which the route is suppressed.
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed route is released.
    pub reuse_threshold: f64,
    /// Exponential-decay half life.
    pub half_life: SimDuration,
    /// Upper bound on the suppression time.
    pub max_suppress: SimDuration,
}

impl DampingConfig {
    /// The RFC 2439 / vendor-default parameters (15-minute half life —
    /// glacial on this paper's timescale; see
    /// [`paper_scale`](Self::paper_scale)).
    pub fn rfc2439() -> DampingConfig {
        DampingConfig {
            penalty_per_flap: 1000.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(15 * 60),
            max_suppress: SimDuration::from_secs(60 * 60),
        }
    }

    /// The same thresholds with a 30 s half life and 2-minute cap, scaled
    /// to the convergence timescales of the paper's 120-node networks.
    pub fn paper_scale() -> DampingConfig {
        DampingConfig {
            half_life: SimDuration::from_secs(30),
            max_suppress: SimDuration::from_secs(120),
            ..DampingConfig::rfc2439()
        }
    }

    /// Validates the parameter relationships.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < reuse_threshold < suppress_threshold`,
    /// `penalty_per_flap > 0` and `half_life > 0`.
    pub fn validate(&self) {
        assert!(
            self.penalty_per_flap > 0.0,
            "penalty_per_flap must be positive"
        );
        assert!(
            0.0 < self.reuse_threshold && self.reuse_threshold < self.suppress_threshold,
            "need 0 < reuse ({}) < suppress ({})",
            self.reuse_threshold,
            self.suppress_threshold
        );
        assert!(!self.half_life.is_zero(), "half_life must be positive");
    }
}

/// Per-(peer, prefix) damping state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DampingState {
    penalty: f64,
    last_update: SimTime,
    suppressed: bool,
    gen: u64,
}

impl DampingState {
    /// Fresh, unpenalized state.
    pub fn new() -> DampingState {
        DampingState {
            penalty: 0.0,
            last_update: SimTime::ZERO,
            suppressed: false,
            gen: 0,
        }
    }

    /// The penalty decayed to `now`.
    pub fn penalty_at(&self, now: SimTime, cfg: &DampingConfig) -> f64 {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        self.penalty * 0.5_f64.powf(dt / cfg.half_life.as_secs_f64())
    }

    /// Whether the route is currently suppressed.
    pub fn is_suppressed(&self) -> bool {
        self.suppressed
    }

    /// Records one flap at `now`. Returns `true` if this flap *newly*
    /// suppressed the route (the caller should start a reuse timer).
    pub fn record_flap(&mut self, now: SimTime, cfg: &DampingConfig) -> bool {
        self.penalty = self.penalty_at(now, cfg) + cfg.penalty_per_flap;
        self.last_update = now;
        if !self.suppressed && self.penalty > cfg.suppress_threshold {
            self.suppressed = true;
            self.gen += 1;
            true
        } else {
            false
        }
    }

    /// How long from `now` until the penalty decays to the reuse threshold
    /// (capped at `max_suppress`). Zero if already below.
    ///
    /// When the penalty sits epsilon above the threshold the analytic
    /// delay can round to zero nanoseconds, which would re-arm the reuse
    /// timer at the same instant forever; the result is therefore floored
    /// at one millisecond whenever it is nonzero.
    pub fn reuse_delay(&self, now: SimTime, cfg: &DampingConfig) -> SimDuration {
        let p = self.penalty_at(now, cfg);
        if p <= cfg.reuse_threshold {
            return SimDuration::ZERO;
        }
        let dt = cfg.half_life.as_secs_f64() * (p / cfg.reuse_threshold).log2();
        SimDuration::from_secs_f64(dt)
            .max(SimDuration::from_millis(1))
            .min(cfg.max_suppress)
    }

    /// The generation stamp for the current suppression (stale reuse
    /// timers are ignored, as with MRAI timers).
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Rebases the suppression generation to an externally supplied value.
    ///
    /// [`record_flap`](Self::record_flap) bumps a *per-state* counter, but
    /// the state itself can be dropped (session teardown) and re-created
    /// while a reuse timer for the old suppression is still scheduled; a
    /// per-state counter would then restart and the stale timer could
    /// alias the new suppression. Callers that outlive the state (the
    /// router node) stamp each new suppression from their own monotonic
    /// counter instead.
    pub fn set_gen(&mut self, gen: u64) {
        self.gen = gen;
    }

    /// Attempts to release a suppressed route at `now` for suppression
    /// generation `gen`. Returns:
    ///
    /// * `Some(true)` — released (or force-released by the `max_suppress`
    ///   cap even if the penalty is still above the reuse threshold);
    /// * `Some(false)` — not yet, re-arm after
    ///   [`reuse_delay`](Self::reuse_delay);
    /// * `None` — stale generation; ignore.
    pub fn try_release(
        &mut self,
        now: SimTime,
        gen: u64,
        cfg: &DampingConfig,
        capped: bool,
    ) -> Option<bool> {
        if !self.suppressed || gen != self.gen {
            return None;
        }
        if capped || self.penalty_at(now, cfg) <= cfg.reuse_threshold {
            self.suppressed = false;
            self.penalty = self.penalty_at(now, cfg);
            self.last_update = now;
            Some(true)
        } else {
            Some(false)
        }
    }
}

impl Default for DampingState {
    fn default() -> DampingState {
        DampingState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DampingConfig {
        DampingConfig::paper_scale()
    }

    #[test]
    fn presets_validate() {
        DampingConfig::rfc2439().validate();
        DampingConfig::paper_scale().validate();
    }

    #[test]
    fn penalty_decays_with_half_life() {
        let mut s = DampingState::new();
        s.record_flap(SimTime::ZERO, &cfg());
        let p0 = s.penalty_at(SimTime::ZERO, &cfg());
        assert_eq!(p0, 1000.0);
        let p_half = s.penalty_at(SimTime::from_secs(30), &cfg());
        assert!((p_half - 500.0).abs() < 1e-6, "half life off: {p_half}");
        let p_two = s.penalty_at(SimTime::from_secs(60), &cfg());
        assert!((p_two - 250.0).abs() < 1e-6);
    }

    #[test]
    fn suppression_kicks_in_above_threshold() {
        let mut s = DampingState::new();
        assert!(!s.record_flap(SimTime::ZERO, &cfg()), "1000 < 2000");
        assert!(
            !s.record_flap(SimTime::from_secs(1), &cfg()),
            "≈1977 < 2000"
        );
        assert!(
            s.record_flap(SimTime::from_secs(2), &cfg()),
            "third flap suppresses"
        );
        assert!(s.is_suppressed());
        // Further flaps while suppressed do not re-trigger.
        assert!(!s.record_flap(SimTime::from_secs(3), &cfg()));
    }

    #[test]
    fn reuse_delay_and_release() {
        let c = cfg();
        let mut s = DampingState::new();
        for t in 0..3 {
            s.record_flap(SimTime::from_secs(t), &c);
        }
        assert!(s.is_suppressed());
        let gen = s.gen();
        let delay = s.reuse_delay(SimTime::from_secs(2), &c);
        assert!(delay > SimDuration::ZERO && delay <= c.max_suppress);
        // Too early: not released.
        assert_eq!(
            s.try_release(SimTime::from_secs(3), gen, &c, false),
            Some(false)
        );
        // After the computed delay the penalty is at/below reuse.
        let at = SimTime::from_secs(2) + delay + SimDuration::from_secs(1);
        assert_eq!(s.try_release(at, gen, &c, false), Some(true));
        assert!(!s.is_suppressed());
    }

    #[test]
    fn stale_generation_ignored() {
        let c = cfg();
        let mut s = DampingState::new();
        for t in 0..3 {
            s.record_flap(SimTime::from_secs(t), &c);
        }
        let gen = s.gen();
        assert_eq!(
            s.try_release(SimTime::from_secs(500), gen + 1, &c, false),
            None
        );
        assert!(s.is_suppressed());
    }

    #[test]
    fn cap_forces_release() {
        let c = cfg();
        let mut s = DampingState::new();
        for t in 0..20 {
            s.record_flap(SimTime::from_secs(t), &c);
        }
        assert!(s.is_suppressed());
        // Penalty is enormous; the cap releases anyway.
        assert_eq!(
            s.try_release(SimTime::from_secs(20), s.gen(), &c, true),
            Some(true)
        );
    }

    #[test]
    fn reuse_delay_never_rounds_to_zero() {
        // Penalty epsilon above the threshold: the analytic delay is below
        // a nanosecond; the floor must keep the timer making progress
        // (regression test for a same-instant re-arm livelock).
        let c = cfg();
        let mut s = DampingState::new();
        for t in 0..3 {
            s.record_flap(SimTime::from_secs(t), &c);
        }
        // Decay to just above the reuse threshold, then ask for the delay.
        let p_now = s.penalty_at(SimTime::from_secs(2), &c);
        let dt_to_reuse = c.half_life.as_secs_f64() * (p_now / (c.reuse_threshold + 1e-9)).log2();
        let just_above = SimTime::from_secs(2) + SimDuration::from_secs_f64(dt_to_reuse.max(0.0));
        let d = s.reuse_delay(just_above, &c);
        if s.penalty_at(just_above, &c) > c.reuse_threshold {
            assert!(
                d >= SimDuration::from_millis(1),
                "delay {d} would livelock the reuse timer"
            );
        }
    }

    #[test]
    #[should_panic(expected = "reuse")]
    fn validate_rejects_inverted_thresholds() {
        let c = DampingConfig {
            reuse_threshold: 3000.0,
            ..DampingConfig::rfc2439()
        };
        c.validate();
    }
}
