//! BGP UPDATE messages.
//!
//! Updates are modeled at per-destination granularity: one message carries
//! the new route (or a withdrawal) for exactly one prefix, matching the
//! per-update processing-cost model of the paper (§3.2: "the BGP update
//! processing delay ... uniformly distributed between 1 and 30
//! milliseconds") and making the batching scheme's per-destination queueing
//! (§4.4) exact.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::path::AsPath;

/// A routed destination. The paper's networks originate one prefix per AS,
/// so prefixes are dense indices (usually equal to the origin AS index).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Prefix(u32);

impl Prefix {
    /// Creates a prefix id from a dense index.
    pub const fn new(index: u32) -> Prefix {
        Prefix(index)
    }

    /// The dense index backing this prefix.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The content of an UPDATE for one prefix.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateAction {
    /// Announce a (new) route with the given AS path, replacing whatever the
    /// sender previously advertised for the prefix.
    Advertise(AsPath),
    /// Withdraw the sender's route for the prefix.
    Withdraw,
}

impl UpdateAction {
    /// Whether this is an advertisement.
    pub fn is_advertise(&self) -> bool {
        matches!(self, UpdateAction::Advertise(_))
    }
}

/// A BGP UPDATE message for a single prefix.
///
/// ```
/// use bgpsim_bgp::{AsPath, Prefix, UpdateAction, UpdateMsg};
///
/// let msg = UpdateMsg::withdraw(Prefix::new(3));
/// assert!(!msg.action.is_advertise());
/// let msg = UpdateMsg::advertise(Prefix::new(3), AsPath::local());
/// assert!(msg.action.is_advertise());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateMsg {
    /// The destination this update concerns.
    pub prefix: Prefix,
    /// Announce or withdraw.
    pub action: UpdateAction,
    /// Policy rank carried over iBGP sessions (the `LOCAL_PREF` idiom):
    /// tells interior routers whether the border router learned the route
    /// from a customer (0), peer (1) or provider (2). `None` on eBGP
    /// sessions and when policies are off.
    pub local_pref: Option<u8>,
}

impl UpdateMsg {
    /// Convenience constructor for an announcement.
    pub fn advertise(prefix: Prefix, path: AsPath) -> UpdateMsg {
        UpdateMsg {
            prefix,
            action: UpdateAction::Advertise(path),
            local_pref: None,
        }
    }

    /// An announcement carrying a policy rank (iBGP with policies on).
    pub fn advertise_with_pref(prefix: Prefix, path: AsPath, pref: u8) -> UpdateMsg {
        UpdateMsg {
            prefix,
            action: UpdateAction::Advertise(path),
            local_pref: Some(pref),
        }
    }

    /// Convenience constructor for a withdrawal.
    pub fn withdraw(prefix: Prefix) -> UpdateMsg {
        UpdateMsg {
            prefix,
            action: UpdateAction::Withdraw,
            local_pref: None,
        }
    }
}

impl fmt::Display for UpdateMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            UpdateAction::Advertise(path) => write!(f, "UPDATE {} via [{}]", self.prefix, path),
            UpdateAction::Withdraw => write!(f, "WITHDRAW {}", self.prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::AsId;

    #[test]
    fn constructors_and_display() {
        let a = UpdateMsg::advertise(Prefix::new(1), AsPath::from_hops([AsId::new(2)]));
        assert!(a.action.is_advertise());
        assert_eq!(a.to_string(), "UPDATE p1 via [AS2]");
        let w = UpdateMsg::withdraw(Prefix::new(1));
        assert!(!w.action.is_advertise());
        assert_eq!(w.to_string(), "WITHDRAW p1");
    }

    #[test]
    fn prefix_index_round_trip() {
        assert_eq!(Prefix::new(7).index(), 7);
        assert_eq!(Prefix::new(7).to_string(), "p7");
        assert!(Prefix::new(1) < Prefix::new(2));
    }
}
