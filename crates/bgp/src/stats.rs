//! Per-node counters.

use bgpsim_des::SimDuration;
use serde::{Deserialize, Serialize};

/// Counters a [`BgpNode`](crate::BgpNode) accumulates while running.
///
/// All counters are cumulative; [`reset`](NodeStats::reset) zeroes them,
/// which the experiment driver does after initial convergence so that only
/// post-failure activity is measured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// UPDATE messages received from peers.
    pub updates_received: u64,
    /// Work items actually processed (stale deletions excluded).
    pub updates_processed: u64,
    /// Advertisements sent.
    pub announcements_sent: u64,
    /// Withdrawals sent.
    pub withdrawals_sent: u64,
    /// Decision-process executions.
    pub decision_runs: u64,
    /// Decision runs that needed a full Adj-RIB-In rescan (the incoming
    /// change withdrew or worsened the currently-best route).
    pub full_rescans: u64,
    /// Decision runs resolved on the incremental fast path (the cached
    /// best route stayed valid as a comparison baseline).
    pub fast_decisions: u64,
    /// Times the best route for some prefix changed (Loc-RIB churn).
    pub best_changes: u64,
    /// Total processor busy time.
    pub busy_time: SimDuration,
    /// MRAI timer starts.
    pub mrai_starts: u64,
}

impl NodeStats {
    /// Total messages sent (announcements + withdrawals).
    pub fn messages_sent(&self) -> u64 {
        self.announcements_sent + self.withdrawals_sent
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = NodeStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut s = NodeStats {
            announcements_sent: 3,
            withdrawals_sent: 2,
            ..Default::default()
        };
        assert_eq!(s.messages_sent(), 5);
        s.reset();
        assert_eq!(s, NodeStats::default());
        assert_eq!(s.messages_sent(), 0);
    }
}
