//! Update-processing queue disciplines.
//!
//! The router engine is a single server: it takes one *batch* of work items
//! off the input queue, is busy for the sum of their per-item processing
//! delays, applies them, and repeats. How batches form is the discipline:
//!
//! * [`QueueDiscipline::Fifo`] — default BGP: one message at a time in
//!   arrival order.
//! * [`QueueDiscipline::Batched`] — the paper's scheme (§4.4): a logical
//!   queue per destination; the next batch is *every* queued update for the
//!   oldest-waiting destination, with stale updates (all but the newest
//!   from each neighbor) deleted unprocessed. The deletions are exactly the
//!   processing the scheme saves; processing all of a destination's updates
//!   before the MRAI expires is what suppresses invalid transient
//!   advertisements.
//! * [`QueueDiscipline::TcpBatch`] — what routers do today (§4.4's
//!   comparison point): drain up to one buffer's worth of messages from a
//!   single peer's connection and process them as one batch. Stale updates
//!   for the same destination *within the batch* collapse, but updates for
//!   the same destination from different peers or different buffers do not.

use std::collections::{BTreeMap, VecDeque};

use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

use crate::msg::{Prefix, UpdateMsg};

/// How the input queue forms processing batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum QueueDiscipline {
    /// One message at a time, arrival order (default BGP).
    #[default]
    Fifo,
    /// Per-destination batches with stale-update deletion (the paper's
    /// batching scheme, §4.4).
    Batched,
    /// Like [`Batched`](QueueDiscipline::Batched) but serving the
    /// destination with the **most** queued updates first instead of the
    /// oldest-waiting one — an extension in the spirit of the paper's
    /// future work ("the batching scheme can be improved further"):
    /// hot destinations are where stale deletion saves the most work.
    BatchedLargestFirst,
    /// Per-peer buffer batches of at most the given size (today's router
    /// behaviour, §4.4).
    TcpBatch {
        /// Maximum messages drained from one peer per batch.
        buffer: usize,
    },
}

/// One unit of work for the BGP engine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkItem {
    /// A received UPDATE from a peer.
    Update {
        /// The advertising peer.
        from: RouterId,
        /// The message.
        msg: UpdateMsg,
    },
    /// Local cleanup after a session loss: re-run the decision process for
    /// one prefix previously reachable via the dead peer. Costs processing
    /// time like a received withdrawal would.
    ImplicitWithdraw {
        /// The peer whose session died.
        peer: RouterId,
        /// The affected prefix.
        prefix: Prefix,
    },
}

impl WorkItem {
    /// The destination this work concerns.
    pub fn prefix(&self) -> Prefix {
        match self {
            WorkItem::Update { msg, .. } => msg.prefix,
            WorkItem::ImplicitWithdraw { prefix, .. } => *prefix,
        }
    }

    /// The peer this work stems from.
    pub fn peer(&self) -> RouterId {
        match self {
            WorkItem::Update { from, .. } => *from,
            WorkItem::ImplicitWithdraw { peer, .. } => *peer,
        }
    }
}

/// The router's input queue.
///
/// The FIFO and TCP disciplines keep one physical arrival queue. The
/// batched disciplines shard it per destination (a sub-queue per prefix
/// plus an arrival-order index), because their batch formation is
/// per-destination: draining a full-table queue through a single
/// `VecDeque` costs O(queue) *per batch* — O(prefixes²) per router for
/// an initial full-table exchange, the difference between minutes and
/// hours at 10^5 prefixes. Batch contents, batch order and the stale
/// counter are bit-identical to the single-queue formulation; only the
/// complexity changes. The queue tracks how many stale items the
/// batched discipline deleted (the paper's saved work).
#[derive(Clone, Debug)]
pub struct InputQueue {
    discipline: QueueDiscipline,
    /// Fifo / TcpBatch: the single arrival queue.
    items: VecDeque<WorkItem>,
    /// Batched disciplines: per-destination sub-queues, arrival order
    /// within each. A destination's sub-queue only ever empties all at
    /// once (a batch drains it whole), so an item with arrival stamp `s`
    /// is still queued iff `s >=` its sub-queue front's stamp.
    by_prefix: BTreeMap<Prefix, VecDeque<(u64, WorkItem)>>,
    /// Arrival-order index over `by_prefix` items: one `(stamp, prefix)`
    /// entry per push, stale entries discarded lazily when they reach
    /// the front.
    order: VecDeque<(u64, Prefix)>,
    /// Next arrival stamp.
    next_stamp: u64,
    /// Live items across `by_prefix`.
    live: usize,
    deleted_stale: u64,
    peak_len: usize,
}

impl InputQueue {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> InputQueue {
        InputQueue {
            discipline,
            items: VecDeque::new(),
            by_prefix: BTreeMap::new(),
            order: VecDeque::new(),
            next_stamp: 0,
            live: 0,
            deleted_stale: 0,
            peak_len: 0,
        }
    }

    /// The configured discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    fn is_batched(&self) -> bool {
        matches!(
            self.discipline,
            QueueDiscipline::Batched | QueueDiscipline::BatchedLargestFirst
        )
    }

    /// Appends a work item.
    pub fn push(&mut self, item: WorkItem) {
        if self.is_batched() {
            let stamp = self.next_stamp;
            self.next_stamp += 1;
            self.order.push_back((stamp, item.prefix()));
            self.by_prefix
                .entry(item.prefix())
                .or_default()
                .push_back((stamp, item));
            self.live += 1;
        } else {
            self.items.push_back(item);
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len() + self.live
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes committed to queued items (capacity, not just the live
    /// backlog) — a quiet post-storm queue can still pin its high-water
    /// allocation, and the memory benchmark charges for it.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.items.capacity() * std::mem::size_of::<WorkItem>();
        bytes += self.order.capacity() * std::mem::size_of::<(u64, Prefix)>();
        for q in self.by_prefix.values() {
            bytes += q.capacity() * std::mem::size_of::<(u64, WorkItem)>();
        }
        bytes
    }

    /// Largest queue length observed so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Stale items deleted unprocessed by the batched discipline so far.
    pub fn deleted_stale(&self) -> u64 {
        self.deleted_stale
    }

    /// Zeroes the counters (stale deletions; peak resets to the current
    /// length). Queued items are untouched.
    pub fn reset_counters(&mut self) {
        self.deleted_stale = 0;
        self.peak_len = self.len();
    }

    /// Takes the next processing batch, per the discipline. Returns an
    /// empty vector when the queue is empty.
    ///
    /// Every returned item costs one processing-delay draw; deleted stale
    /// items cost nothing and are counted in [`deleted_stale`].
    ///
    /// [`deleted_stale`]: InputQueue::deleted_stale
    pub fn pop_batch(&mut self) -> Vec<WorkItem> {
        match self.discipline {
            QueueDiscipline::Fifo => self.items.pop_front().into_iter().collect(),
            QueueDiscipline::Batched => {
                let Some(prefix) = self.oldest_waiting_prefix() else {
                    return Vec::new();
                };
                self.pop_destination_batch(prefix)
            }
            QueueDiscipline::BatchedLargestFirst => {
                let Some(prefix) = self.busiest_prefix() else {
                    return Vec::new();
                };
                self.pop_destination_batch(prefix)
            }
            QueueDiscipline::TcpBatch { buffer } => self.pop_peer_batch(buffer.max(1)),
        }
    }

    /// The destination of the oldest item still queued, discarding stale
    /// arrival-index entries along the way. Amortized O(1): every entry
    /// is discarded at most once.
    fn oldest_waiting_prefix(&mut self) -> Option<Prefix> {
        while let Some(&(stamp, prefix)) = self.order.front() {
            let live = self
                .by_prefix
                .get(&prefix)
                .and_then(VecDeque::front)
                .is_some_and(|&(s, _)| s <= stamp);
            if live {
                return Some(prefix);
            }
            self.order.pop_front();
        }
        None
    }

    /// The destination with the most queued items (ties → whichever has
    /// the oldest queued item, i.e. first in arrival order — sub-queues
    /// are arrival-ordered, so that is the min front stamp among the
    /// tied destinations).
    fn busiest_prefix(&self) -> Option<Prefix> {
        let max = self.by_prefix.values().map(VecDeque::len).max()?;
        self.by_prefix
            .iter()
            .filter(|(_, q)| q.len() == max)
            .min_by_key(|(_, q)| q.front().map(|&(s, _)| s))
            .map(|(p, _)| *p)
    }

    /// Batched: drain every item for the chosen destination, keep only the
    /// newest item per source peer, delete the rest.
    fn pop_destination_batch(&mut self, prefix: Prefix) -> Vec<WorkItem> {
        let drained = self.by_prefix.remove(&prefix).unwrap_or_default();
        self.live -= drained.len();
        let batch: Vec<WorkItem> = drained.into_iter().map(|(_, item)| item).collect();

        // Keep only the newest (last-arrived) item from each peer; older
        // ones are superseded and deleted without processing cost.
        let mut newest: BTreeMap<RouterId, usize> = BTreeMap::new();
        for (idx, item) in batch.iter().enumerate() {
            newest.insert(item.peer(), idx);
        }
        let before = batch.len();
        let mut kept: Vec<WorkItem> = Vec::with_capacity(newest.len());
        for (idx, item) in batch.into_iter().enumerate() {
            if newest.get(&item.peer()) == Some(&idx) {
                kept.push(item);
            }
        }
        self.deleted_stale += (before - kept.len()) as u64;
        kept
    }

    /// TcpBatch: drain up to `buffer` items from the head item's peer,
    /// preserving arrival order, collapsing same-destination duplicates
    /// (same peer, so later always supersedes earlier).
    fn pop_peer_batch(&mut self, buffer: usize) -> Vec<WorkItem> {
        let Some(head) = self.items.front() else {
            return Vec::new();
        };
        let peer = head.peer();
        let mut batch: Vec<WorkItem> = Vec::new();
        let mut rest: VecDeque<WorkItem> = VecDeque::with_capacity(self.items.len());
        let mut taken = 0usize;
        for item in self.items.drain(..) {
            if taken < buffer && item.peer() == peer {
                batch.push(item);
                taken += 1;
            } else {
                rest.push_back(item);
            }
        }
        self.items = rest;

        // Same peer ⇒ later message supersedes earlier for the same prefix.
        let mut newest: BTreeMap<Prefix, usize> = BTreeMap::new();
        for (idx, item) in batch.iter().enumerate() {
            newest.insert(item.prefix(), idx);
        }
        let before = batch.len();
        let mut kept: Vec<WorkItem> = Vec::with_capacity(newest.len());
        for (idx, item) in batch.into_iter().enumerate() {
            if newest.get(&item.prefix()) == Some(&idx) {
                kept.push(item);
            }
        }
        self.deleted_stale += (before - kept.len()) as u64;
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;
    use bgpsim_topology::AsId;

    fn upd(from: u32, prefix: u32, hop: u32) -> WorkItem {
        WorkItem::Update {
            from: RouterId::new(from),
            msg: UpdateMsg::advertise(Prefix::new(prefix), AsPath::from_hops([AsId::new(hop)])),
        }
    }

    fn wd(from: u32, prefix: u32) -> WorkItem {
        WorkItem::Update {
            from: RouterId::new(from),
            msg: UpdateMsg::withdraw(Prefix::new(prefix)),
        }
    }

    #[test]
    fn fifo_pops_one_at_a_time_in_order() {
        let mut q = InputQueue::new(QueueDiscipline::Fifo);
        q.push(upd(1, 0, 1));
        q.push(upd(2, 1, 2));
        assert_eq!(q.pop_batch(), vec![upd(1, 0, 1)]);
        assert_eq!(q.pop_batch(), vec![upd(2, 1, 2)]);
        assert!(q.pop_batch().is_empty());
        assert_eq!(q.deleted_stale(), 0);
    }

    #[test]
    fn batched_gathers_whole_destination() {
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        // The paper's §4.4 example: interleaved destinations X (0) and Y (1).
        q.push(upd(1, 0, 1)); // X from peer 1
        q.push(upd(2, 1, 1)); // Y from peer 2
        q.push(upd(3, 0, 2)); // X from peer 3
        q.push(upd(4, 1, 2)); // Y from peer 4
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2, "both X updates processed together");
        assert!(batch.iter().all(|i| i.prefix() == Prefix::new(0)));
        let batch = q.pop_batch();
        assert!(batch.iter().all(|i| i.prefix() == Prefix::new(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn batched_deletes_stale_same_peer_updates() {
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        q.push(upd(1, 0, 1)); // superseded
        q.push(upd(1, 0, 2)); // superseded
        q.push(wd(1, 0)); // newest from peer 1
        q.push(upd(2, 0, 9)); // newest (only) from peer 2
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], wd(1, 0));
        assert_eq!(batch[1], upd(2, 0, 9));
        assert_eq!(q.deleted_stale(), 2);
    }

    #[test]
    fn batched_preserves_destination_fifo_order() {
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        q.push(upd(1, 5, 1));
        q.push(upd(1, 3, 1));
        let first = q.pop_batch();
        assert_eq!(first[0].prefix(), Prefix::new(5), "head destination first");
    }

    #[test]
    fn implicit_withdraws_batch_like_updates() {
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        q.push(WorkItem::ImplicitWithdraw {
            peer: RouterId::new(1),
            prefix: Prefix::new(0),
        });
        q.push(upd(1, 0, 4));
        let batch = q.pop_batch();
        // Same peer: the later update supersedes the implicit withdraw.
        assert_eq!(batch, vec![upd(1, 0, 4)]);
        assert_eq!(q.deleted_stale(), 1);
    }

    #[test]
    fn tcp_batch_drains_single_peer_up_to_buffer() {
        let mut q = InputQueue::new(QueueDiscipline::TcpBatch { buffer: 2 });
        q.push(upd(1, 0, 1));
        q.push(upd(2, 1, 1));
        q.push(upd(1, 2, 1));
        q.push(upd(1, 3, 1));
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2, "buffer caps the batch");
        assert!(batch.iter().all(|i| i.peer() == RouterId::new(1)));
        assert_eq!(batch[0].prefix(), Prefix::new(0));
        assert_eq!(batch[1].prefix(), Prefix::new(2));
        // Next batch starts at the new head (peer 2).
        let batch = q.pop_batch();
        assert_eq!(batch[0].peer(), RouterId::new(2));
    }

    #[test]
    fn tcp_batch_collapses_same_prefix_within_batch() {
        let mut q = InputQueue::new(QueueDiscipline::TcpBatch { buffer: 8 });
        q.push(upd(1, 0, 1));
        q.push(upd(1, 0, 2));
        q.push(upd(1, 1, 1));
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], upd(1, 0, 2));
        assert_eq!(q.deleted_stale(), 1);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = InputQueue::new(QueueDiscipline::Fifo);
        for i in 0..5 {
            q.push(upd(1, i, 1));
        }
        q.pop_batch();
        q.push(upd(1, 9, 1));
        assert_eq!(q.peak_len(), 5);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn empty_pop_is_empty_for_all_disciplines() {
        for d in [
            QueueDiscipline::Fifo,
            QueueDiscipline::Batched,
            QueueDiscipline::BatchedLargestFirst,
            QueueDiscipline::TcpBatch { buffer: 4 },
        ] {
            assert!(InputQueue::new(d).pop_batch().is_empty());
        }
    }

    #[test]
    fn batched_oldest_waiting_survives_redrain_interleave() {
        // P1 arrives, then P2, then P1 is drained whole; a NEW P1 item
        // arrives afterwards. The oldest-waiting destination is now P2 —
        // a stale arrival-index entry for the drained P1 item must not
        // put P1 ahead of it.
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        q.push(upd(1, 1, 1)); // P1
        q.push(upd(1, 2, 1)); // P2
        assert_eq!(q.pop_batch(), vec![upd(1, 1, 1)]);
        q.push(upd(1, 1, 2)); // P1 again, younger than the queued P2
        assert_eq!(q.pop_batch(), vec![upd(1, 2, 1)], "P2 waited longest");
        assert_eq!(q.pop_batch(), vec![upd(1, 1, 2)]);
        assert!(q.is_empty());
        assert_eq!(q.deleted_stale(), 0);
    }

    #[test]
    fn batched_pop_cost_is_per_destination_not_per_queue() {
        // 10k destinations × 2 peers: draining them all must touch each
        // item O(1) times, not O(queue) per batch. (The quadratic
        // formulation took minutes here and hours at full-table scale —
        // this finishes instantly or the suite times out.)
        let n = 10_000u32;
        let mut q = InputQueue::new(QueueDiscipline::Batched);
        for p in 0..n {
            q.push(upd(1, p, 1));
            q.push(upd(2, p, 1));
        }
        assert_eq!(q.len(), 2 * n as usize);
        let mut batches = 0u32;
        while !q.is_empty() {
            let batch = q.pop_batch();
            assert_eq!(batch.len(), 2, "one batch per destination");
            assert_eq!(batch[0].prefix(), Prefix::new(batches));
            batches += 1;
        }
        assert_eq!(batches, n);
        assert_eq!(q.deleted_stale(), 0);
    }

    #[test]
    fn largest_first_serves_hottest_destination() {
        let mut q = InputQueue::new(QueueDiscipline::BatchedLargestFirst);
        q.push(upd(1, 0, 1)); // prefix 0: 1 item (arrived first)
        q.push(upd(1, 7, 1)); // prefix 7: 3 items from 3 peers
        q.push(upd(2, 7, 2));
        q.push(upd(3, 7, 3));
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 3, "hot destination first");
        assert!(batch.iter().all(|i| i.prefix() == Prefix::new(7)));
        let batch = q.pop_batch();
        assert_eq!(batch, vec![upd(1, 0, 1)]);
    }

    #[test]
    fn largest_first_breaks_ties_by_arrival() {
        let mut q = InputQueue::new(QueueDiscipline::BatchedLargestFirst);
        q.push(upd(1, 5, 1));
        q.push(upd(1, 3, 1));
        let batch = q.pop_batch();
        assert_eq!(
            batch[0].prefix(),
            Prefix::new(5),
            "tie goes to the oldest head"
        );
    }

    #[test]
    fn largest_first_still_deletes_stale() {
        let mut q = InputQueue::new(QueueDiscipline::BatchedLargestFirst);
        q.push(upd(1, 7, 1));
        q.push(upd(1, 7, 2));
        q.push(upd(1, 7, 3));
        let batch = q.pop_batch();
        assert_eq!(batch, vec![upd(1, 7, 3)]);
        assert_eq!(q.deleted_stale(), 2);
    }
}
