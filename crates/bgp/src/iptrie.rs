//! IPv4 prefixes and a longest-prefix-match binary trie.
//!
//! Everything else in the workspace keys routes by the dense slot index
//! [`Prefix`] — a `u32` into prefix-indexed `Vec` rows (the compact RIBs of
//! DESIGN.md §12). That representation is exactly right for storage and
//! wrong in kind for *naming*: real tables hold CIDR prefixes, forwarding
//! is longest-prefix match, and bursts of withdrawals tear down address
//! *blocks*, not indices. This module supplies the naming layer:
//!
//! * [`IpPrefix`] — a canonical IPv4 CIDR prefix (`10.0.0.0/8`).
//! * [`IpTrie`] — a binary (unibit) trie over prefixes with exact-match
//!   insert/remove, longest-prefix-match lookup, covering/covered queries,
//!   and sibling aggregation.
//! * [`PrefixTable`] — the bridge between the two worlds: it interns each
//!   announced `IpPrefix` into the trie and hands out **stable slot
//!   indices** in interning order. Slots are never reused or renumbered —
//!   withdrawing a prefix leaves its slot allocated — so every dense
//!   `Vec`-row structure (Adj-RIB-In rows, Loc-RIB, delta Adj-RIB-Out)
//!   keyed by [`Prefix`] stays valid for the lifetime of a run, and the
//!   decision process's candidate iteration order is untouched by trie
//!   membership churn. The flat allocator the default workloads use
//!   (`as_index * k + j`) is the degenerate case: interning blocks in AS
//!   order reproduces it exactly.
//!
//! The trie is deliberately a plain unibit trie (one bit per level, boxed
//! children): table *construction* and burst teardown are O(32) per
//! operation, and the simulator's hot paths never walk it — they use the
//! slot index. A multibit/LC trie would buy lookup speed the simulator
//! does not spend.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::msg::Prefix;

/// A canonical IPv4 CIDR prefix: `bits` with everything below
/// `32 - len` masked to zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpPrefix {
    bits: u32,
    len: u8,
}

impl IpPrefix {
    /// The all-addresses prefix `0.0.0.0/0`.
    pub const DEFAULT: IpPrefix = IpPrefix { bits: 0, len: 0 };

    /// Creates a prefix, masking any host bits (`10.0.0.7/8` becomes
    /// `10.0.0.0/8`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(bits: u32, len: u8) -> IpPrefix {
        assert!(len <= 32, "prefix length {len} > 32");
        IpPrefix {
            bits: bits & Self::mask(len),
            len,
        }
    }

    /// The network mask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Builds a prefix from dotted-quad parts.
    pub fn from_parts(a: u8, b: u8, c: u8, d: u8, len: u8) -> IpPrefix {
        IpPrefix::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    /// The (masked) network bits.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The prefix length. This is a mask width, not a container size —
    /// "empty" is meaningless here (a /0 is the default route, see
    /// [`is_default`](IpPrefix::is_default)).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.bits
    }

    /// Whether this prefix covers `other` (equal or strictly shorter and
    /// containing it). Every prefix covers itself.
    pub fn covers(self, other: IpPrefix) -> bool {
        self.len <= other.len && other.bits & Self::mask(self.len) == self.bits
    }

    /// The immediately covering prefix (`10.4.0.0/16` → `10.4.0.0/15`),
    /// or `None` at the default route.
    pub fn parent(self) -> Option<IpPrefix> {
        match self.len {
            0 => None,
            n => Some(IpPrefix::new(self.bits, n - 1)),
        }
    }

    /// The other half of this prefix's parent (`10.0.0.0/9` ↔
    /// `10.128.0.0/9`), or `None` at the default route.
    pub fn sibling(self) -> Option<IpPrefix> {
        match self.len {
            0 => None,
            n => Some(IpPrefix {
                bits: self.bits ^ (1u32 << (32 - n as u32)),
                len: n,
            }),
        }
    }

    /// Deaggregates into the two halves one bit longer
    /// (`10.0.0.0/8` → `10.0.0.0/9` + `10.128.0.0/9`), or `None` at /32.
    pub fn halves(self) -> Option<(IpPrefix, IpPrefix)> {
        if self.len >= 32 {
            return None;
        }
        let lo = IpPrefix {
            bits: self.bits,
            len: self.len + 1,
        };
        let hi = IpPrefix {
            bits: self.bits | (1u32 << (31 - self.len as u32)),
            len: self.len + 1,
        };
        Some((lo, hi))
    }

    /// The `i`-th bit of an address counted from the most significant
    /// (bit 0 selects the top-level trie branch).
    fn bit(addr: u32, i: u8) -> usize {
        ((addr >> (31 - i as u32)) & 1) as usize
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.bits.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}/{}", self.len)
    }
}

impl fmt::Debug for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IpPrefix({self})")
    }
}

/// Error from parsing an [`IpPrefix`] out of `a.b.c.d/len` text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for IpPrefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<IpPrefix, ParsePrefixError> {
        let err = || ParsePrefixError(s.to_string());
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        let mut octets = [0u8; 4];
        let mut parts = addr.split('.');
        for o in &mut octets {
            *o = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(IpPrefix::new(u32::from_be_bytes(octets), len))
    }
}

/// One unibit trie node. A node exists iff some stored prefix passes
/// through it; `value` is set iff a prefix *ends* here.
#[derive(Clone, Debug)]
struct TrieNode<T> {
    value: Option<T>,
    kids: [Option<Box<TrieNode<T>>>; 2],
}

impl<T> TrieNode<T> {
    fn empty() -> TrieNode<T> {
        TrieNode {
            value: None,
            kids: [None, None],
        }
    }

    fn is_leaf(&self) -> bool {
        self.kids[0].is_none() && self.kids[1].is_none()
    }
}

/// A binary longest-prefix-match trie mapping [`IpPrefix`]es to values.
#[derive(Clone, Debug)]
pub struct IpTrie<T> {
    root: TrieNode<T>,
    len: usize,
}

impl<T> Default for IpTrie<T> {
    fn default() -> IpTrie<T> {
        IpTrie::new()
    }
}

impl<T> IpTrie<T> {
    /// An empty trie.
    pub fn new() -> IpTrie<T> {
        IpTrie {
            root: TrieNode::empty(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: IpPrefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = IpPrefix::bit(prefix.bits(), i);
            node = node.kids[b].get_or_insert_with(|| Box::new(TrieNode::empty()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up the exact prefix.
    pub fn get(&self, prefix: IpPrefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            node = node.kids[IpPrefix::bit(prefix.bits(), i)].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Mutable exact lookup.
    pub fn get_mut(&mut self, prefix: IpPrefix) -> Option<&mut T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            node = node.kids[IpPrefix::bit(prefix.bits(), i)].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Removes the exact prefix, pruning now-empty interior nodes so the
    /// structure stays proportional to the live table.
    pub fn remove(&mut self, prefix: IpPrefix) -> Option<T> {
        fn rec<T>(node: &mut TrieNode<T>, bits: u32, len: u8, depth: u8) -> Option<T> {
            if depth == len {
                return node.value.take();
            }
            let b = IpPrefix::bit(bits, depth);
            let child = node.kids[b].as_deref_mut()?;
            let out = rec(child, bits, len, depth + 1);
            if out.is_some() && child.value.is_none() && child.is_leaf() {
                node.kids[b] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix.bits(), prefix.len(), 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Longest-prefix-match for a full 32-bit address: the most specific
    /// stored prefix containing `addr`.
    pub fn lookup(&self, addr: u32) -> Option<(IpPrefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(IpPrefix, &T)> =
            self.root.value.as_ref().map(|v| (IpPrefix::DEFAULT, v));
        for i in 0..32u8 {
            let Some(next) = node.kids[IpPrefix::bit(addr, i)].as_deref() else {
                break;
            };
            node = next;
            if let Some(v) = node.value.as_ref() {
                best = Some((IpPrefix::new(addr, i + 1), v));
            }
        }
        best
    }

    /// The most specific stored prefix covering `prefix` (including
    /// `prefix` itself) — LPM generalized from addresses to prefixes.
    pub fn lookup_covering(&self, prefix: IpPrefix) -> Option<(IpPrefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(IpPrefix, &T)> =
            self.root.value.as_ref().map(|v| (IpPrefix::DEFAULT, v));
        for i in 0..prefix.len() {
            let Some(next) = node.kids[IpPrefix::bit(prefix.bits(), i)].as_deref() else {
                break;
            };
            node = next;
            if let Some(v) = node.value.as_ref() {
                best = Some((IpPrefix::new(prefix.bits(), i + 1), v));
            }
        }
        best
    }

    /// All stored prefixes covered by `prefix` (including `prefix` itself
    /// when stored), in trie (address) order. This is the burst-teardown
    /// query: "every announced prefix inside the failed block".
    pub fn covered_by(&self, prefix: IpPrefix) -> Vec<(IpPrefix, &T)> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let Some(next) = node.kids[IpPrefix::bit(prefix.bits(), i)].as_deref() else {
                return Vec::new();
            };
            node = next;
        }
        let mut out = Vec::new();
        fn walk<'a, T>(
            node: &'a TrieNode<T>,
            bits: u32,
            depth: u8,
            out: &mut Vec<(IpPrefix, &'a T)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                out.push((IpPrefix::new(bits, depth), v));
            }
            for (b, kid) in node.kids.iter().enumerate() {
                if let Some(kid) = kid {
                    let bits = if b == 1 {
                        bits | (1u32 << (31 - depth as u32))
                    } else {
                        bits
                    };
                    walk(kid, bits, depth + 1, out);
                }
            }
        }
        walk(node, prefix.bits(), prefix.len(), &mut out);
        out
    }

    /// Iterates every stored `(prefix, value)` in address order.
    pub fn iter(&self) -> Vec<(IpPrefix, &T)> {
        self.covered_by(IpPrefix::DEFAULT)
    }
}

impl<T: PartialEq> IpTrie<T> {
    /// One aggregation sweep: wherever two sibling *leaf* prefixes carry
    /// equal values and their parent holds none, replace the pair with the
    /// parent (CIDR aggregation). Returns the number of merges; call until
    /// it returns 0 for a fixed point.
    pub fn aggregate_once(&mut self) -> usize
    where
        T: Clone,
    {
        fn rec<T: PartialEq + Clone>(node: &mut TrieNode<T>, merges: &mut usize) {
            for kid in node.kids.iter_mut().flatten() {
                rec(kid, merges);
            }
            let mergeable = match (&node.value, &node.kids[0], &node.kids[1]) {
                (None, Some(lo), Some(hi)) => {
                    lo.is_leaf() && hi.is_leaf() && lo.value.is_some() && lo.value == hi.value
                }
                _ => false,
            };
            if mergeable {
                let lo = node.kids[0].take().expect("matched above");
                node.kids[1] = None;
                node.value = lo.value;
                *merges += 1;
            }
        }
        let mut merges = 0;
        rec(&mut self.root, &mut merges);
        self.len -= merges;
        merges
    }
}

/// The bridge between CIDR prefixes and the dense slot indices every RIB
/// row structure is keyed by.
///
/// Slots are assigned in interning order and are **never reused or
/// renumbered**: removing a prefix from the announced set leaves its slot
/// allocated (the trie entry is dropped; the reverse map keeps the name).
/// That is the invariant the compact RIBs depend on — a `Prefix` handed
/// out once stays a valid row index for the lifetime of the table.
#[derive(Clone, Debug, Default)]
pub struct PrefixTable {
    trie: IpTrie<Prefix>,
    slots: Vec<IpPrefix>,
}

impl PrefixTable {
    /// An empty table.
    pub fn new() -> PrefixTable {
        PrefixTable::default()
    }

    /// Interns `prefix`, returning its stable slot. Idempotent: interning
    /// an already-known prefix returns the existing slot.
    pub fn intern(&mut self, prefix: IpPrefix) -> Prefix {
        if let Some(&slot) = self.trie.get(prefix) {
            return slot;
        }
        let slot = Prefix::new(self.slots.len() as u32);
        self.trie.insert(prefix, slot);
        self.slots.push(prefix);
        slot
    }

    /// The slot of an interned prefix.
    pub fn slot(&self, prefix: IpPrefix) -> Option<Prefix> {
        self.trie.get(prefix).copied()
    }

    /// The CIDR prefix behind a slot (slots outlive trie membership).
    pub fn ip_of(&self, slot: Prefix) -> Option<IpPrefix> {
        self.slots.get(slot.index()).copied()
    }

    /// Longest-prefix-match an address to a slot.
    pub fn lookup(&self, addr: u32) -> Option<Prefix> {
        self.trie.lookup(addr).map(|(_, &slot)| slot)
    }

    /// Every interned slot whose prefix falls inside `block` — the
    /// burst-withdrawal query.
    pub fn slots_within(&self, block: IpPrefix) -> Vec<Prefix> {
        self.trie
            .covered_by(block)
            .into_iter()
            .map(|(_, &slot)| slot)
            .collect()
    }

    /// Interns both halves of `prefix` (deaggregation), returning the two
    /// slots. `None` at /32.
    pub fn deaggregate(&mut self, prefix: IpPrefix) -> Option<[Prefix; 2]> {
        let (lo, hi) = prefix.halves()?;
        Some([self.intern(lo), self.intern(hi)])
    }

    /// Number of slots ever allocated (== the dense table size).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot was ever allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Read access to the underlying trie.
    pub fn trie(&self) -> &IpTrie<Prefix> {
        &self.trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().expect("test prefix")
    }

    #[test]
    fn display_parse_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.4.128/25", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
        // Host bits are masked to canonical form.
        assert_eq!(p("10.0.0.7/8").to_string(), "10.0.0.0/8");
        assert!("10.0.0.0".parse::<IpPrefix>().is_err());
        assert!("10.0.0.0/33".parse::<IpPrefix>().is_err());
        assert!("10.0.0/8".parse::<IpPrefix>().is_err());
        assert!("10.0.0.0.0/8".parse::<IpPrefix>().is_err());
    }

    #[test]
    fn covers_and_contains() {
        let eight = p("10.0.0.0/8");
        assert!(eight.contains(u32::from_be_bytes([10, 200, 3, 4])));
        assert!(!eight.contains(u32::from_be_bytes([11, 0, 0, 0])));
        assert!(eight.covers(p("10.4.0.0/16")));
        assert!(eight.covers(eight));
        assert!(!p("10.4.0.0/16").covers(eight));
        assert!(IpPrefix::DEFAULT.covers(eight));
    }

    #[test]
    fn parent_sibling_halves() {
        let lo = p("10.0.0.0/9");
        let hi = p("10.128.0.0/9");
        assert_eq!(p("10.0.0.0/8").halves(), Some((lo, hi)));
        assert_eq!(lo.sibling(), Some(hi));
        assert_eq!(hi.sibling(), Some(lo));
        assert_eq!(lo.parent(), Some(p("10.0.0.0/8")));
        assert_eq!(IpPrefix::DEFAULT.parent(), None);
        assert_eq!(p("1.2.3.4/32").halves(), None);
    }

    #[test]
    fn insert_get_remove() {
        let mut t: IpTrie<u32> = IpTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.4.0.0/16"), 2), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 3), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&3));
        assert_eq!(t.get(p("10.0.0.0/9")), None, "no aggregation on get");
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(3));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.4.0.0/16")), Some(&2));
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t: IpTrie<&str> = IpTrie::new();
        t.insert(IpPrefix::DEFAULT, "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.4.0.0/16"), "sixteen");
        let addr = u32::from_be_bytes([10, 4, 9, 9]);
        assert_eq!(t.lookup(addr), Some((p("10.4.0.0/16"), &"sixteen")));
        let addr = u32::from_be_bytes([10, 9, 9, 9]);
        assert_eq!(t.lookup(addr), Some((p("10.0.0.0/8"), &"eight")));
        let addr = u32::from_be_bytes([11, 0, 0, 1]);
        assert_eq!(t.lookup(addr), Some((IpPrefix::DEFAULT, &"default")));
        assert_eq!(
            t.lookup_covering(p("10.4.0.0/24")),
            Some((p("10.4.0.0/16"), &"sixteen"))
        );
        assert_eq!(
            t.lookup_covering(p("10.4.0.0/16")),
            Some((p("10.4.0.0/16"), &"sixteen")),
            "a stored prefix covers itself"
        );
    }

    #[test]
    fn covered_by_enumerates_the_block() {
        let mut t: IpTrie<u32> = IpTrie::new();
        for (i, s) in ["10.0.0.0/24", "10.0.1.0/24", "10.1.0.0/16", "11.0.0.0/8"]
            .iter()
            .enumerate()
        {
            t.insert(p(s), i as u32);
        }
        let inside: Vec<IpPrefix> = t
            .covered_by(p("10.0.0.0/8"))
            .into_iter()
            .map(|(q, _)| q)
            .collect();
        assert_eq!(
            inside,
            vec![p("10.0.0.0/24"), p("10.0.1.0/24"), p("10.1.0.0/16")]
        );
        assert!(t.covered_by(p("12.0.0.0/8")).is_empty());
    }

    #[test]
    fn aggregation_merges_equal_sibling_leaves() {
        let mut t: IpTrie<u32> = IpTrie::new();
        t.insert(p("10.0.0.0/9"), 7);
        t.insert(p("10.128.0.0/9"), 7);
        t.insert(p("11.0.0.0/9"), 7);
        t.insert(p("11.128.0.0/9"), 8); // different value: must not merge
        assert_eq!(t.aggregate_once(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&7));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.get(p("11.0.0.0/9")), Some(&7));
        assert_eq!(t.aggregate_once(), 0, "fixed point");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn aggregation_cascades_to_fixed_point() {
        let mut t: IpTrie<u32> = IpTrie::new();
        // Four /10s with one value collapse to one /8 over two sweeps.
        for s in [
            "10.0.0.0/10",
            "10.64.0.0/10",
            "10.128.0.0/10",
            "10.192.0.0/10",
        ] {
            t.insert(p(s), 1);
        }
        let mut total = 0;
        loop {
            let m = t.aggregate_once();
            if m == 0 {
                break;
            }
            total += m;
        }
        assert_eq!(total, 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
    }

    #[test]
    fn prefix_table_slots_are_stable_and_insertion_ordered() {
        let mut table = PrefixTable::new();
        let a = table.intern(p("10.0.0.0/24"));
        let b = table.intern(p("10.0.1.0/24"));
        assert_eq!((a.index(), b.index()), (0, 1), "interning order");
        assert_eq!(table.intern(p("10.0.0.0/24")), a, "idempotent");
        assert_eq!(table.len(), 2);
        assert_eq!(table.ip_of(a), Some(p("10.0.0.0/24")));
        assert_eq!(table.lookup(u32::from_be_bytes([10, 0, 1, 9])), Some(b));
        let halves = table.deaggregate(p("10.0.0.0/24")).expect("not a /32");
        assert_eq!((halves[0].index(), halves[1].index()), (2, 3));
        assert_eq!(table.ip_of(halves[1]), Some(p("10.0.0.128/25")));
        // LPM on an address inside the deaggregated half now prefers it.
        assert_eq!(
            table.lookup(u32::from_be_bytes([10, 0, 0, 200])),
            Some(halves[1])
        );
        let within: Vec<usize> = table
            .slots_within(p("10.0.0.0/23"))
            .into_iter()
            .map(Prefix::index)
            .collect();
        assert_eq!(within, vec![0, 2, 3, 1], "address order within the block");
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        /// The naive reference: linear scan for the longest stored prefix
        /// containing the address.
        fn lpm_linear(set: &[(IpPrefix, u32)], addr: u32) -> Option<(IpPrefix, u32)> {
            set.iter()
                .filter(|(q, _)| q.contains(addr))
                .max_by_key(|(q, _)| q.len())
                .copied()
        }

        fn arb_prefix() -> impl Strategy<Value = IpPrefix> {
            (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| IpPrefix::new(bits, len))
        }

        proptest! {
            #[test]
            fn trie_lpm_matches_linear_scan(
                entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 0..64),
                addrs in proptest::collection::vec(any::<u32>(), 1..32),
            ) {
                let mut t: IpTrie<u32> = IpTrie::new();
                // Last write wins in both models.
                let mut dedup: Vec<(IpPrefix, u32)> = Vec::new();
                for &(q, v) in &entries {
                    t.insert(q, v);
                    dedup.retain(|(r, _)| *r != q);
                    dedup.push((q, v));
                }
                prop_assert_eq!(t.len(), dedup.len());
                for &addr in &addrs {
                    let got = t.lookup(addr).map(|(q, &v)| (q, v));
                    let want = lpm_linear(&dedup, addr);
                    // Equal-length winners are unique (one prefix of a
                    // given length contains an address), so plain
                    // comparison is sound.
                    prop_assert_eq!(got, want, "addr {:#010x}", addr);
                }
            }

            #[test]
            fn trie_lpm_matches_linear_scan_after_removals(
                entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 1..48),
                remove_mask in proptest::collection::vec(any::<bool>(), 1..48),
                addrs in proptest::collection::vec(any::<u32>(), 1..16),
            ) {
                let mut t: IpTrie<u32> = IpTrie::new();
                let mut dedup: Vec<(IpPrefix, u32)> = Vec::new();
                for &(q, v) in &entries {
                    t.insert(q, v);
                    dedup.retain(|(r, _)| *r != q);
                    dedup.push((q, v));
                }
                for (i, &(q, _)) in entries.iter().enumerate() {
                    if *remove_mask.get(i).unwrap_or(&false) {
                        t.remove(q);
                        dedup.retain(|(r, _)| *r != q);
                    }
                }
                prop_assert_eq!(t.len(), dedup.len());
                for &addr in &addrs {
                    let got = t.lookup(addr).map(|(q, &v)| (q, v));
                    prop_assert_eq!(got, lpm_linear(&dedup, addr), "addr {:#010x}", addr);
                }
            }
        }
    }
}
